//! The Fenwick-tree Sum Table (FSTable) and the FTS sampling search.

use crate::lsb;
use platod2gl_mem::DeepSize;

/// A Fenwick-tree sum table over a sequence of non-negative `f64` weights.
///
/// Memory cost is exactly one `f64` per element — the same as storing the raw
/// weights or a CSTable — while supporting all three dynamic-update cases of
/// the paper's Table II in `O(log n)`:
///
/// | operation | method | cost |
/// |---|---|---|
/// | new insertion (append) | [`push`](Self::push) | `O(log n)` |
/// | in-place weight update | [`set`](Self::set) / [`add`](Self::add) | `O(log n)` |
/// | deletion (swap with last) | [`swap_delete`](Self::swap_delete) | `O(log n)` |
/// | weighted sample | [`sample_with`](Self::sample_with) | `O(log n)` |
///
/// Entry `i` stores `Σ_{j=g(i)+1}^{i} w_j` with `g(i) = i - LSB(i+1)`
/// (Eq. 4). Indices are 0-based as in the paper.
///
/// ```
/// use platod2gl_fenwick::FsTable;
///
/// // The paper's Fig. 5 example: weights {0.3, 0.4, 0.1}.
/// let mut t = FsTable::from_weights(&[0.3, 0.4, 0.1]);
/// assert_eq!(t.entry(1), 0.7); // soft prefix sum of w0..=w1
///
/// // All maintenance is O(log n):
/// t.push(0.2);           // new insertion (Alg. 4)
/// t.set(0, 1.0);         // in-place update (Alg. 3)
/// t.swap_delete(2);      // deletion by swap-with-last
/// assert!((t.total() - 1.6).abs() < 1e-9);
///
/// // FTS weighted sampling (Alg. 5): residual mass 1.3 lands past w0=1.0.
/// assert_ne!(t.sample_with(0.5), t.sample_with(1.3));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FsTable {
    tree: Vec<f64>,
}

impl FsTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self { tree: Vec::new() }
    }

    /// Create an empty table with room for `cap` weights.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            tree: Vec::with_capacity(cap),
        }
    }

    /// Build a table from raw weights in `O(n)`.
    ///
    /// Each parent entry absorbs its children in one forward pass, the
    /// standard linear-time binary-indexed-tree construction.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut tree = weights.to_vec();
        let n = tree.len();
        for i in 0..n {
            let parent = i + lsb(i + 1);
            if parent < n {
                tree[parent] += tree[i];
            }
        }
        Self { tree }
    }

    /// Number of weights stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the table holds no weights.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Raw soft-prefix-sum entry `F[i]` (Eq. 4), mostly useful for tests and
    /// for the FTS search.
    #[inline]
    pub fn entry(&self, i: usize) -> f64 {
        self.tree[i]
    }

    /// Sum of weights `w_0..=w_i` in `O(log n)`.
    ///
    /// Walks ancestors toward index 0, the classic Fenwick prefix query. The
    /// paper's `getAllSum` (Alg. 5) is `prefix_sum(n-1)`.
    pub fn prefix_sum(&self, i: usize) -> f64 {
        debug_assert!(i < self.len());
        let mut p = i + 1; // 1-based
        let mut s = 0.0;
        while p > 0 {
            s += self.tree[p - 1];
            p -= lsb(p);
        }
        s
    }

    /// Sum of all weights (`S_L` in the paper) in `O(log n)`.
    pub fn total(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }

    /// Recover the raw weight at `i` in `O(log n)`.
    pub fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len());
        if i == 0 {
            self.tree[0]
        } else {
            self.prefix_sum(i) - self.prefix_sum(i - 1)
        }
    }

    /// In-place update: add `delta` to `w_i` (Alg. 3), `O(log n)`.
    ///
    /// Walks the `O(log n)` ancestors of `i` whose covered range contains
    /// `i`, adding `delta` to each.
    pub fn add(&mut self, i: usize, delta: f64) {
        debug_assert!(i < self.len());
        let n = self.len();
        let mut i = i;
        while i < n {
            self.tree[i] += delta;
            i += lsb(i + 1);
        }
    }

    /// In-place update: set `w_i` to `weight` (Alg. 3 driven by a delta),
    /// `O(log n)`.
    pub fn set(&mut self, i: usize, weight: f64) {
        let old = self.get(i);
        self.add(i, weight - old);
    }

    /// Decay `w_i` by `factor`, clamped at a strictly positive `floor`
    /// (the temporal plane's recency decay, `O(log n)` like [`FsTable::set`]).
    ///
    /// Inverse-CDF draws assume every positive weight owns a non-empty slice
    /// of the cumulative range: a weight decayed to `0.0` (or, through
    /// accumulated floating-point error, below it) would alias its slot
    /// boundary onto a neighbor and quietly corrupt sampling. The clamp
    /// therefore never writes a value in `(0, floor)`:
    ///
    /// * `w_i > floor` → `max(w_i · factor, floor)` — decays, stops at the
    ///   floor, never underflows;
    /// * `w_i <= floor` (already floored, or a legitimately-zero weight from
    ///   the ingest sanitizer) → unchanged. Decay must not *raise* weights.
    ///
    /// Returns the new weight.
    pub fn decay(&mut self, i: usize, factor: f64, floor: f64) -> f64 {
        debug_assert!(floor > 0.0 && floor.is_finite(), "floor must be positive");
        debug_assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in [0, 1]"
        );
        let old = self.get(i);
        if old <= floor {
            return old;
        }
        let new = (old * factor).max(floor);
        self.add(i, new - old);
        new
    }

    /// Append a new weight at index `n` in `O(log n)` (Alg. 4).
    ///
    /// The new entry `F[n]` must cover the range `(g(n), n]`, which is the
    /// new weight plus the entries of its Fenwick children. In 1-based terms
    /// the children of `p = n + 1` sit at `p - 2^k` for every
    /// `k < trailing_zeros(p)` — exactly the indices the paper's Alg. 4
    /// enumerates with its `(x+1) & -(x+1) = 2^k` test.
    pub fn push(&mut self, weight: f64) {
        let p = self.tree.len() + 1; // 1-based index of the new entry
        let mut s = weight;
        for k in 0..p.trailing_zeros() {
            let child = p - (1usize << k); // 1-based child
            s += self.tree[child - 1];
        }
        self.tree.push(s);
    }

    /// Remove the last weight in `O(1)`.
    ///
    /// Sound because position `n-1` only ever contributes to entries at
    /// indices `>= n-1`, all of which are being truncated.
    pub fn pop(&mut self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let w = self.get(self.len() - 1);
        self.tree.pop();
        Some(w)
    }

    /// Delete the weight at `i` by swapping in the last weight, `O(log n)`
    /// (Sec. V-A2 "Deletion").
    ///
    /// Returns the deleted weight. The caller must apply the same swap to any
    /// parallel array (the samtree leaf applies it to its neighbor-ID list).
    pub fn swap_delete(&mut self, i: usize) -> f64 {
        debug_assert!(i < self.len());
        let last = self.len() - 1;
        if i == last {
            return self.pop().expect("non-empty");
        }
        let w_i = self.get(i);
        let w_last = self.pop().expect("non-empty");
        self.add(i, w_last - w_i);
        w_i
    }

    /// Multiply every weight by `factor` in `O(n)`.
    ///
    /// Every entry is a sum of weights, so scaling entries scales the
    /// weights exactly (linearity) — no rebuild required.
    pub fn scale(&mut self, factor: f64) {
        for e in &mut self.tree {
            *e *= factor;
        }
    }

    /// Recover all raw weights in `O(n)` (inverse of the linear build).
    pub fn weights(&self) -> Vec<f64> {
        let mut w = self.tree.clone();
        let n = w.len();
        for i in (0..n).rev() {
            let parent = i + lsb(i + 1);
            if parent < n {
                w[parent] -= w[i];
            }
        }
        w
    }

    /// Rebuild the table from its own recovered weights, clearing any
    /// floating-point drift accumulated by signed-delta updates.
    pub fn rebuild(&mut self) {
        let w = self.weights();
        *self = Self::from_weights(&w);
    }

    /// FTS: draw the index owning the residual mass `r ∈ [0, total())`
    /// (Alg. 5), `O(log n)`.
    ///
    /// Range-narrowing search over `[0, 2^m)` with `2^m >= n`: for an aligned
    /// dyadic range the midpoint entry `F[mid]` is exactly the sum of the
    /// left half (the sub-tree-sum property, Thm. 4), so one comparison
    /// either discards the right half or discards the left half while
    /// subtracting its mass from `r`.
    pub fn sample_with(&self, r: f64) -> usize {
        assert!(!self.is_empty(), "cannot sample from an empty FSTable");
        let n = self.len();
        let m = n.next_power_of_two();
        let mut r = r;
        let (mut left, mut right) = (0usize, m - 1);
        while left < right {
            let mid = left + (right - left) / 2;
            if mid >= n {
                right = mid;
                continue;
            }
            if self.tree[mid] > r {
                right = mid;
            } else {
                r -= self.tree[mid];
                left = mid + 1;
            }
        }
        left.min(n - 1)
    }

    /// Convenience: sample with a caller-supplied uniform draw in `[0, 1)`.
    ///
    /// Scales the unit draw by [`total`](Self::total); useful when the caller
    /// already has a uniform sample but not this table's mass.
    pub fn sample_unit(&self, unit: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&unit));
        self.sample_with(unit * self.total())
    }

    /// Bytes of heap memory per element: exactly one `f64`, matching the
    /// paper's claim that FSTable adds no space over storing the weights.
    pub const BYTES_PER_ELEMENT: usize = std::mem::size_of::<f64>();
}

impl DeepSize for FsTable {
    fn heap_bytes(&self) -> usize {
        self.tree.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < EPS, "{a} != {b}");
    }

    /// Reference prefix sums against which every test checks the table.
    fn naive_prefix(w: &[f64], i: usize) -> f64 {
        w[..=i].iter().sum()
    }

    #[test]
    fn decay_clamps_at_the_floor_and_never_underflows() {
        let floor = 1e-6;
        let mut t = FsTable::from_weights(&[2.0, floor * 1.5, floor, 0.0, 8.0]);
        // Above the floor: plain multiplicative decay.
        assert_close(t.decay(0, 0.5, floor), 1.0);
        // Decay that would cross the floor stops exactly at it — the
        // boundary case of the underflow hardening.
        assert_close(t.decay(1, 0.1, floor), floor);
        // At the floor already: unchanged, repeated decay cannot erode it.
        for _ in 0..100 {
            assert_close(t.decay(2, 0.0, floor), floor);
        }
        // A legitimately-zero weight (ingest sanitizer output) must not be
        // *raised* to the floor by decay.
        assert_close(t.decay(3, 0.5, floor), 0.0);
        // Aggressive repeated decay converges to the floor, never 0/negative.
        for _ in 0..200 {
            t.decay(4, 0.1, floor);
        }
        assert_close(t.get(4), floor);
        for i in 0..5 {
            assert!(t.get(i) >= 0.0, "slot {i} went negative");
        }
        // Prefix sums stay consistent with the decayed weights.
        let w = t.weights();
        for i in 0..5 {
            assert_close(t.prefix_sum(i), naive_prefix(&w, i));
        }
    }

    #[test]
    fn paper_example_three_weights() {
        // Fig. 5: A = {0.3, 0.4, 0.1} => F = [0.3, 0.7, 0.1].
        let t = FsTable::from_weights(&[0.3, 0.4, 0.1]);
        assert_close(t.entry(0), 0.3);
        assert_close(t.entry(1), 0.7);
        assert_close(t.entry(2), 0.1);
    }

    #[test]
    fn theorem4_power_of_two_entries_are_strict_prefix_sums() {
        // Thm. 4: F[2^k - 1] equals the strict prefix sum.
        let w: Vec<f64> = (1..=64).map(|x| x as f64).collect();
        let t = FsTable::from_weights(&w);
        for k in 0..=6 {
            let i = (1usize << k) - 1;
            assert_close(t.entry(i), naive_prefix(&w, i));
        }
    }

    #[test]
    fn prefix_sums_match_naive() {
        let w: Vec<f64> = (0..100).map(|x| (x % 7) as f64 + 0.5).collect();
        let t = FsTable::from_weights(&w);
        for i in 0..w.len() {
            assert_close(t.prefix_sum(i), naive_prefix(&w, i));
        }
    }

    #[test]
    fn push_builds_same_table_as_from_weights() {
        let w: Vec<f64> = (0..200).map(|x| ((x * 31) % 17) as f64 * 0.25).collect();
        let built = FsTable::from_weights(&w);
        let mut pushed = FsTable::new();
        for &x in &w {
            pushed.push(x);
        }
        assert_eq!(built.len(), pushed.len());
        for i in 0..w.len() {
            assert_close(built.entry(i), pushed.entry(i));
        }
    }

    #[test]
    fn get_recovers_raw_weights() {
        let w = [5.0, 1.0, 2.5, 0.0, 7.25, 3.0];
        let t = FsTable::from_weights(&w);
        for (i, &x) in w.iter().enumerate() {
            assert_close(t.get(i), x);
        }
    }

    #[test]
    fn weights_roundtrip() {
        let w: Vec<f64> = (0..97).map(|x| (x as f64).sin().abs()).collect();
        let t = FsTable::from_weights(&w);
        let back = t.weights();
        for (a, b) in w.iter().zip(&back) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn add_and_set_update_prefixes() {
        let mut w = vec![1.0; 33];
        let mut t = FsTable::from_weights(&w);
        t.add(10, 4.0);
        w[10] += 4.0;
        t.set(32, 0.25);
        w[32] = 0.25;
        t.set(0, 9.0);
        w[0] = 9.0;
        for i in 0..w.len() {
            assert_close(t.prefix_sum(i), naive_prefix(&w, i));
        }
    }

    #[test]
    fn pop_then_table_still_consistent() {
        let w: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        let mut t = FsTable::from_weights(&w);
        for k in (1..=20).rev() {
            let popped = t.pop().unwrap();
            assert_close(popped, k as f64);
            for i in 0..t.len() {
                assert_close(t.prefix_sum(i), naive_prefix(&w, i));
            }
        }
        assert!(t.pop().is_none());
    }

    #[test]
    fn swap_delete_mirrors_vec_swap_remove() {
        let mut w: Vec<f64> = (1..=16).map(|x| x as f64 * 0.5).collect();
        let mut t = FsTable::from_weights(&w);
        // Delete in a scattered order and compare against Vec::swap_remove.
        for &i in &[3usize, 0, 7, 7, 2, 0] {
            let deleted = t.swap_delete(i);
            let expected = w.swap_remove(i);
            assert_close(deleted, expected);
            assert_eq!(t.len(), w.len());
            for j in 0..w.len() {
                assert_close(t.prefix_sum(j), naive_prefix(&w, j));
            }
        }
    }

    #[test]
    fn swap_delete_last_element() {
        let mut t = FsTable::from_weights(&[1.0, 2.0, 3.0]);
        assert_close(t.swap_delete(2), 3.0);
        assert_eq!(t.len(), 2);
        assert_close(t.total(), 3.0);
    }

    #[test]
    fn total_of_empty_is_zero() {
        assert_close(FsTable::new().total(), 0.0);
    }

    #[test]
    fn scale_multiplies_all_weights() {
        let mut t = FsTable::from_weights(&[1.0, 2.0, 3.0]);
        t.scale(2.0);
        assert_close(t.get(0), 2.0);
        assert_close(t.get(2), 6.0);
        assert_close(t.total(), 12.0);
        t.scale(0.0);
        assert_close(t.total(), 0.0);
    }

    #[test]
    fn rebuild_removes_drift() {
        let mut t = FsTable::from_weights(&[0.1; 64]);
        for i in 0..64 {
            t.add(i, 1e-3);
            t.add(i, -1e-3);
        }
        t.rebuild();
        let w = t.weights();
        for x in w {
            assert_close(x, 0.1);
        }
    }

    #[test]
    fn sample_with_walks_cumulative_ranges() {
        // Weights 1,2,3,4 => cumulative boundaries 1,3,6,10.
        let t = FsTable::from_weights(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sample_with(0.0), 0);
        assert_eq!(t.sample_with(0.999), 0);
        assert_eq!(t.sample_with(1.0), 1);
        assert_eq!(t.sample_with(2.999), 1);
        assert_eq!(t.sample_with(3.0), 2);
        assert_eq!(t.sample_with(5.999), 2);
        assert_eq!(t.sample_with(6.0), 3);
        assert_eq!(t.sample_with(9.999), 3);
    }

    #[test]
    fn sample_with_non_power_of_two_lengths() {
        for n in 1..=40usize {
            let w: Vec<f64> = (0..n).map(|x| (x + 1) as f64).collect();
            let t = FsTable::from_weights(&w);
            // Probe just inside each element's cumulative range.
            let mut acc = 0.0;
            for (i, &x) in w.iter().enumerate() {
                assert_eq!(t.sample_with(acc), i, "n={n} i={i} low edge");
                assert_eq!(t.sample_with(acc + x - 1e-6), i, "n={n} i={i} high edge");
                acc += x;
            }
        }
    }

    #[test]
    fn sample_with_zero_weight_elements_are_skipped() {
        let t = FsTable::from_weights(&[0.0, 5.0, 0.0, 5.0]);
        assert_eq!(t.sample_with(0.0), 1);
        assert_eq!(t.sample_with(4.999), 1);
        assert_eq!(t.sample_with(5.0), 3);
    }

    #[test]
    fn sample_singleton() {
        let t = FsTable::from_weights(&[2.0]);
        assert_eq!(t.sample_with(0.0), 0);
        assert_eq!(t.sample_with(1.999), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_empty_panics() {
        FsTable::new().sample_with(0.0);
    }

    #[test]
    fn sample_unit_scales_by_total() {
        let t = FsTable::from_weights(&[1.0, 1.0, 2.0]);
        assert_eq!(t.sample_unit(0.0), 0);
        assert_eq!(t.sample_unit(0.26), 1);
        assert_eq!(t.sample_unit(0.51), 2);
        assert_eq!(t.sample_unit(0.99), 2);
    }

    #[test]
    fn deep_size_is_one_f64_per_capacity_slot() {
        use platod2gl_mem::DeepSize;
        let mut t = FsTable::with_capacity(10);
        t.push(1.0);
        assert_eq!(t.heap_bytes(), 10 * 8);
    }

    #[test]
    fn sampling_distribution_tracks_weights() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let w = [1.0, 2.0, 3.0, 4.0];
        let t = FsTable::from_weights(&w);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let draws = 40_000;
        for _ in 0..draws {
            let r: f64 = rng.random_range(0.0..t.total());
            counts[t.sample_with(r)] += 1;
        }
        let total_w: f64 = w.iter().sum();
        for i in 0..4 {
            let expected = draws as f64 * w[i] / total_w;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.1,
                "index {i}: got {got}, expected {expected}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-6;

    fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.0f64..100.0, 1..200)
    }

    proptest! {
        #[test]
        fn prefix_sums_always_match_naive(w in weights_strategy()) {
            let t = FsTable::from_weights(&w);
            let mut acc = 0.0;
            for (i, &x) in w.iter().enumerate() {
                acc += x;
                prop_assert!((t.prefix_sum(i) - acc).abs() < EPS);
            }
        }

        #[test]
        fn push_equals_bulk_build(w in weights_strategy()) {
            let bulk = FsTable::from_weights(&w);
            let mut inc = FsTable::new();
            for &x in &w {
                inc.push(x);
            }
            for i in 0..w.len() {
                prop_assert!((bulk.entry(i) - inc.entry(i)).abs() < EPS);
            }
        }

        #[test]
        fn random_op_sequence_matches_reference_vec(
            w in weights_strategy(),
            ops in proptest::collection::vec((0usize..3, 0usize..1000, 0.0f64..50.0), 0..100),
        ) {
            let mut reference = w.clone();
            let mut t = FsTable::from_weights(&w);
            for (kind, idx, weight) in ops {
                match kind {
                    0 => {
                        reference.push(weight);
                        t.push(weight);
                    }
                    1 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference[i] = weight;
                        t.set(i, weight);
                    }
                    2 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference.swap_remove(i);
                        t.swap_delete(i);
                    }
                    _ => {}
                }
                prop_assert_eq!(t.len(), reference.len());
            }
            let mut acc = 0.0;
            for (i, &x) in reference.iter().enumerate() {
                acc += x;
                prop_assert!((t.prefix_sum(i) - acc).abs() < 1e-4,
                    "prefix {} drifted: {} vs {}", i, t.prefix_sum(i), acc);
            }
        }

        #[test]
        fn sample_with_returns_index_owning_the_mass(w in weights_strategy(), unit in 0.0f64..1.0) {
            let t = FsTable::from_weights(&w);
            let total = t.total();
            prop_assume!(total > 0.0);
            let r = unit * total;
            let idx = t.sample_with(r);
            prop_assert!(idx < w.len());
            // r must fall inside [prefix(idx-1), prefix(idx)) up to float slop.
            let hi = t.prefix_sum(idx);
            let lo = if idx == 0 { 0.0 } else { t.prefix_sum(idx - 1) };
            prop_assert!(r < hi + EPS, "r={} not below hi={}", r, hi);
            prop_assert!(r >= lo - EPS, "r={} not above lo={}", r, lo);
        }

        #[test]
        fn theorem4_holds_for_all_sizes(w in weights_strategy()) {
            let t = FsTable::from_weights(&w);
            let mut k = 1usize;
            while k <= w.len() {
                let i = k - 1;
                let strict: f64 = w[..=i].iter().sum();
                prop_assert!((t.entry(i) - strict).abs() < EPS);
                k <<= 1;
            }
        }
    }
}
