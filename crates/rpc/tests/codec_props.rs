//! Property tests for the frame codec: every frame type round-trips
//! through encode → frame → read → decode for arbitrary payload contents,
//! frame sizes agree with the `server::wire` size model the in-process
//! traffic accounting uses, and malformed bytes (truncation, corruption,
//! forged length prefixes) are rejected without panics or unbounded
//! allocation.

use platod2gl_graph::{Edge, EdgeType, ShardHealth, TimeWindow, UpdateOp, VertexId};
use platod2gl_obs::TraceContext;
use platod2gl_rpc::codec::{
    append_timing_echo, decode_error_reply, decode_heal_reply, decode_heal_request,
    decode_health_reply, decode_sample_batch, decode_sample_reply, decode_update_batch,
    decode_update_reply, encode_error_reply, encode_frame, encode_frame_v1, encode_frame_v2,
    encode_heal_reply, encode_heal_request, encode_health_reply, encode_reply_frame,
    encode_sample_batch, encode_sample_reply, encode_update_batch, encode_update_reply, frame_len,
    parse_frame, read_frame, read_frame_ex, take_timing_echo, ErrorReply, FrameHeader, FrameKind,
    HealthReply, SampleBatch, UpdateBatch, UpdateReply, MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2,
};
use platod2gl_server::wire;
use platod2gl_server::{DegradedPolicy, SampleRequest, SampleResponse, SlotSource};
use proptest::collection::vec;
use proptest::prelude::*;

/// One seeded sample request with arbitrary vertex, relation, fanout,
/// degraded policy, optional trace id, and optional time window.
fn arb_request() -> impl Strategy<Value = (SampleRequest, u64)> {
    (
        (any::<u64>(), 0u16..16, 0usize..64),
        (any::<bool>(), any::<bool>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((v, et, fanout), (self_loop, traced, trace, seed), (windowed, a, b))| {
                let mut req = SampleRequest::new(VertexId(v), EdgeType(et), fanout);
                if self_loop {
                    req = req.on_degraded(DegradedPolicy::SelfLoop);
                }
                if traced {
                    req = req.with_trace_id(trace);
                }
                if windowed {
                    req = req.in_window(TimeWindow::new(a.min(b), a.max(b)));
                }
                (req, seed)
            },
        )
}

/// A sample response with arbitrary neighbors, per-slot provenance,
/// degraded flag, and shard.
fn arb_response() -> impl Strategy<Value = SampleResponse> {
    (
        vec((any::<u64>(), any::<bool>()), 0..24),
        any::<bool>(),
        0usize..1024,
    )
        .prop_map(|(slots, degraded, shard)| {
            let neighbors = slots.iter().map(|&(v, _)| VertexId(v)).collect();
            let sources = slots
                .iter()
                .map(|&(_, sampled)| {
                    if sampled {
                        SlotSource::Sampled
                    } else {
                        SlotSource::SelfLoop
                    }
                })
                .collect();
            SampleResponse {
                neighbors,
                sources,
                degraded,
                shard,
            }
        })
}

/// Any of the three update-op kinds. Weights round-trip exactly: the wire
/// ships the f64 bit pattern.
fn arb_op() -> impl Strategy<Value = UpdateOp> {
    (
        (0u8..3, any::<u64>()),
        (any::<u64>(), 0u16..8, 0.0f64..1e6, any::<u64>()),
    )
        .prop_map(|((kind, src), (dst, et, weight, ts))| {
            let edge = Edge {
                src: VertexId(src),
                dst: VertexId(dst),
                etype: EdgeType(et),
                weight,
                ts,
            };
            match kind {
                0 => UpdateOp::Insert(edge),
                1 => UpdateOp::Delete {
                    src: VertexId(src),
                    dst: VertexId(dst),
                    etype: EdgeType(et),
                },
                _ => UpdateOp::UpdateWeight(edge),
            }
        })
}

/// An optional cross-process trace context, as a caller would attach it.
fn arb_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    (any::<bool>(), any::<u64>(), any::<u64>()).prop_map(|(some, trace_id, parent_span)| {
        some.then_some(TraceContext {
            trace_id,
            parent_span,
        })
    })
}

fn arb_health() -> impl Strategy<Value = ShardHealth> {
    (0u8..3).prop_map(|tag| match tag {
        0 => ShardHealth::Healthy,
        1 => ShardHealth::Degraded,
        _ => ShardHealth::Failed,
    })
}

/// Frame-level round trip: encode the payload, frame it, read the frame
/// back, and return the decoded payload bytes (asserting the kind).
fn frame_roundtrip(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let framed = encode_frame(kind, payload);
    let (got_kind, got_payload) = read_frame(&mut framed.as_slice()).expect("valid frame");
    assert_eq!(got_kind, kind);
    got_payload
}

proptest! {
    #[test]
    fn sample_batches_roundtrip(
        deadline_ms in any::<u32>(),
        ctx in arb_ctx(),
        requests in vec(arb_request(), 0..40),
    ) {
        let batch = SampleBatch { deadline_ms, ctx, requests };
        let framed = encode_frame(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        // The optional time-window trailer is emitted only when at least
        // one request is windowed; the size model splits the same way.
        let windowed = batch.requests.iter().any(|(r, _)| r.window.is_some());
        let window_bytes = if windowed {
            wire::time_window_block_bytes(batch.requests.len())
        } else {
            0
        };
        prop_assert_eq!(
            framed.len() as u64,
            wire::sample_request_frame_bytes(batch.requests.len()) + window_bytes
        );
        let payload = frame_roundtrip(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        let back = decode_sample_batch(&payload).expect("decode");
        prop_assert_eq!(back, batch);
    }

    /// A batch with no windowed request encodes byte-identical to the
    /// pre-temporal layout: no trailer block, so pre-temporal decoders (and
    /// the unchanged size model) keep working for every non-temporal client.
    #[test]
    fn unwindowed_batches_keep_the_pre_temporal_layout(
        deadline_ms in any::<u32>(),
        ctx in arb_ctx(),
        requests in vec(arb_request(), 0..24),
    ) {
        let requests: Vec<_> = requests
            .into_iter()
            .map(|(mut r, s)| { r.window = None; (r, s) })
            .collect();
        let n = requests.len();
        let batch = SampleBatch { deadline_ms, ctx, requests };
        let framed = encode_frame(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        prop_assert_eq!(framed.len() as u64, wire::sample_request_frame_bytes(n));
        let payload = frame_roundtrip(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        let back = decode_sample_batch(&payload).expect("decode");
        prop_assert!(back.requests.iter().all(|(r, _)| r.window.is_none()));
        prop_assert_eq!(back, batch);
    }

    /// Corrupting the window trailer — wrong tag, forged presence flag, or
    /// truncation anywhere inside the block — is rejected by the payload
    /// decoder, never a panic or a silently dropped window.
    #[test]
    fn corrupted_window_trailers_are_rejected(
        requests in vec(arb_request(), 1..16),
        which in 0u8..3,
        at_seed in any::<u64>(),
    ) {
        let mut requests = requests;
        // Force at least one window so the trailer is present.
        requests[0].0.window = Some(TimeWindow::new(10, 20));
        let n = requests.len();
        let batch = SampleBatch { deadline_ms: 0, ctx: None, requests };
        let payload = encode_sample_batch(&batch);
        let block_len = wire::time_window_block_bytes(n) as usize;
        let block_at = payload.len() - block_len;
        let mut bad = payload.clone();
        match which {
            0 => bad[block_at] = 9,                       // wrong block tag
            1 => bad[block_at + 1] = 2,                   // forged presence flag
            _ => {
                // Truncate inside the block (always at least the final byte).
                let keep = block_at + 1 + (at_seed as usize) % (block_len - 1);
                bad.truncate(keep);
            }
        }
        prop_assert!(decode_sample_batch(&bad).is_err());
        // And the intact payload still decodes, so the corruption (not the
        // window itself) is what was rejected.
        prop_assert_eq!(decode_sample_batch(&payload).expect("decode"), batch);
    }

    #[test]
    fn sample_replies_roundtrip(
        responses in vec(arb_response(), 0..32),
        queue_us in any::<u32>(),
        service_us in any::<u32>(),
    ) {
        // The size model counts the v2 timing-echo trailer, so append one
        // before framing — exactly as the server reply path does.
        let mut payload = encode_sample_reply(&responses);
        append_timing_echo(&mut payload, queue_us, service_us);
        let framed = encode_frame(FrameKind::SampleReply, &payload);
        prop_assert_eq!(
            framed.len() as u64,
            wire::sample_response_frame_bytes(responses.iter().map(|r| r.neighbors.len()))
        );
        let mut body = frame_roundtrip(FrameKind::SampleReply, &payload);
        let echo = take_timing_echo(PROTOCOL_V2, &mut body).expect("echo");
        prop_assert_eq!((echo.queue_us, echo.service_us), (queue_us, service_us));
        let back = decode_sample_reply(&body).expect("decode");
        prop_assert_eq!(back, responses);
    }

    #[test]
    fn update_batches_roundtrip(
        deadline_ms in any::<u32>(),
        ctx in arb_ctx(),
        ops in vec(arb_op(), 0..48),
    ) {
        let batch = UpdateBatch { deadline_ms, ctx, ops };
        let framed = encode_frame(FrameKind::UpdateBatch, &encode_update_batch(&batch));
        prop_assert_eq!(framed.len() as u64, wire::update_frame_bytes(batch.ops.len()));
        let payload = frame_roundtrip(FrameKind::UpdateBatch, &encode_update_batch(&batch));
        let back = decode_update_batch(&payload).expect("decode");
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn update_replies_roundtrip(applied in any::<u64>(), queued in any::<u64>()) {
        let reply = UpdateReply { applied_ops: applied, queued_ops: queued };
        let mut payload = encode_update_reply(&reply);
        append_timing_echo(&mut payload, 1, 2);
        let framed = encode_frame(FrameKind::UpdateReply, &payload);
        prop_assert_eq!(framed.len() as u64, wire::UPDATE_REPLY_FRAME_BYTES);
        let mut body = frame_roundtrip(FrameKind::UpdateReply, &payload);
        take_timing_echo(PROTOCOL_V2, &mut body).expect("echo");
        prop_assert_eq!(decode_update_reply(&body).expect("decode"), reply);
    }

    #[test]
    fn health_replies_roundtrip(
        graph_version in any::<u64>(),
        healths in vec(arb_health(), 0..64),
    ) {
        let reply = HealthReply { graph_version, healths };
        let payload = frame_roundtrip(FrameKind::HealthReply, &encode_health_reply(&reply));
        prop_assert_eq!(decode_health_reply(&payload).expect("decode"), reply);
    }

    #[test]
    fn heal_frames_roundtrip(shard in any::<u32>(), drained in any::<u64>()) {
        let payload = frame_roundtrip(FrameKind::HealRequest, &encode_heal_request(shard));
        prop_assert_eq!(decode_heal_request(&payload), Ok(shard));
        let payload = frame_roundtrip(FrameKind::HealReply, &encode_heal_reply(drained));
        prop_assert_eq!(decode_heal_reply(&payload), Ok(drained));
    }

    #[test]
    fn error_replies_roundtrip(
        code in any::<u8>(),
        shard in any::<u32>(),
        message_bytes in vec(32u8..127, 0..80),
    ) {
        let reply = ErrorReply {
            code,
            shard,
            message: String::from_utf8(message_bytes).expect("ascii"),
        };
        let payload = frame_roundtrip(FrameKind::ErrorReply, &encode_error_reply(&reply));
        prop_assert_eq!(decode_error_reply(&payload).expect("decode"), reply);
    }

    /// Arbitrary bytes fed to the frame reader never panic: they are
    /// either a (vanishingly unlikely) valid frame or a structured error.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in vec(any::<u8>(), 0..256)) {
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// Truncating a valid frame anywhere makes it invalid, never a panic.
    #[test]
    fn truncated_frames_are_rejected(
        requests in vec(arb_request(), 1..8),
        cut_seed in any::<u64>(),
    ) {
        let batch = SampleBatch { deadline_ms: 0, ctx: None, requests };
        let framed = encode_frame(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        let cut = (cut_seed as usize) % framed.len();
        prop_assert!(read_frame(&mut &framed[..cut]).is_err());
    }

    /// Flipping any bit past the length prefix is caught (CRC, version, or
    /// kind check) — no corrupt frame decodes successfully.
    #[test]
    fn corrupted_frames_are_rejected(
        ops in vec(arb_op(), 0..16),
        at_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let batch = UpdateBatch {
            deadline_ms: 5,
            ctx: Some(TraceContext { trace_id: 7, parent_span: 3 }),
            ops,
        };
        let mut framed = encode_frame(FrameKind::UpdateBatch, &encode_update_batch(&batch));
        let at = 4 + (at_seed as usize) % (framed.len() - 4);
        framed[at] ^= 1 << bit;
        prop_assert!(read_frame(&mut framed.as_slice()).is_err());
    }

    /// A forged length prefix beyond the cap is rejected before the body
    /// buffer is allocated, whatever follows it.
    #[test]
    fn forged_length_prefixes_never_allocate(
        len in (MAX_FRAME_BYTES as u32 + 1)..u32::MAX,
        tail in vec(any::<u8>(), 0..32),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    /// Counts inside a CRC-valid payload are validated against the bytes
    /// actually present: a forged count cannot drive an oversized
    /// allocation or a panic.
    #[test]
    fn forged_payload_counts_are_rejected(count in 100u32..u32::MAX) {
        // A sample reply claiming `count` responses but carrying none.
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, count);
        let framed = encode_frame(FrameKind::SampleReply, &payload);
        let (_, body) = read_frame(&mut framed.as_slice()).expect("frame itself is valid");
        prop_assert!(decode_sample_reply(&body).is_err());
    }

    /// v2 frames carry an arbitrary correlation id through encode → stream
    /// read → header intact, for any payload.
    #[test]
    fn v2_frames_roundtrip_with_req_id(
        req_id in any::<u64>(),
        payload in vec(any::<u8>(), 0..256),
    ) {
        let framed = encode_frame_v2(FrameKind::SampleBatch, req_id, &payload);
        let (header, body) = read_frame_ex(&mut framed.as_slice()).expect("valid v2 frame");
        prop_assert_eq!(header.version, PROTOCOL_V2);
        prop_assert_eq!(header.kind, FrameKind::SampleBatch);
        prop_assert_eq!(header.req_id, req_id);
        prop_assert_eq!(body, payload);
    }

    /// v1 frames (no id on the wire) parse to `req_id == 0` and are still
    /// fully accepted by the same reader — old clients keep working.
    #[test]
    fn v1_frames_still_parse_with_zero_req_id(payload in vec(any::<u8>(), 0..256)) {
        let framed = encode_frame_v1(FrameKind::UpdateBatch, &payload);
        let (header, body) = read_frame_ex(&mut framed.as_slice()).expect("valid v1 frame");
        prop_assert_eq!(header.version, PROTOCOL_V1);
        prop_assert_eq!(header.req_id, 0);
        prop_assert_eq!(body, payload);
    }

    /// `encode_reply_frame` mirrors the request's version AND id: a v1
    /// request gets a v1 reply, a v2 request gets its own id echoed back.
    #[test]
    fn reply_frames_mirror_request_version_and_id(
        v2 in any::<bool>(),
        req_id in any::<u64>(),
        payload in vec(any::<u8>(), 0..128),
    ) {
        let req = FrameHeader {
            version: if v2 { PROTOCOL_V2 } else { PROTOCOL_V1 },
            kind: FrameKind::SampleBatch,
            req_id: if v2 { req_id } else { 0 },
        };
        let framed = encode_reply_frame(&req, FrameKind::SampleReply, &payload);
        let (header, body) = read_frame_ex(&mut framed.as_slice()).expect("valid reply");
        prop_assert_eq!(header.version, req.version);
        prop_assert_eq!(header.kind, FrameKind::SampleReply);
        prop_assert_eq!(header.req_id, req.req_id);
        prop_assert_eq!(body, payload);
    }

    /// The `frame_len` peek agrees with the encoded length for both
    /// versions, reports `None` on every strict prefix, and `parse_frame`
    /// on the exact slice matches the stream reader byte for byte.
    #[test]
    fn frame_len_peek_agrees_with_parse(
        v2 in any::<bool>(),
        req_id in any::<u64>(),
        payload in vec(any::<u8>(), 0..200),
        cut_seed in any::<u64>(),
    ) {
        let framed = if v2 {
            encode_frame_v2(FrameKind::HealthProbe, req_id, &payload)
        } else {
            encode_frame_v1(FrameKind::HealthProbe, &payload)
        };
        prop_assert_eq!(frame_len(&framed).expect("peek"), Some(framed.len()));
        let cut = (cut_seed as usize) % framed.len();
        // A prefix either cannot name its length yet (under 4 bytes) or
        // names the full length — never a different one.
        match frame_len(&framed[..cut]).expect("peek on prefix") {
            None => prop_assert!(cut < 4),
            Some(flen) => prop_assert_eq!(flen, framed.len()),
        }
        let (header, body) = parse_frame(&framed).expect("parse");
        let (stream_header, stream_body) =
            read_frame_ex(&mut framed.as_slice()).expect("stream read");
        prop_assert_eq!(header, stream_header);
        prop_assert_eq!(body, stream_body.as_slice());
    }

    /// Bit-flips anywhere past the length prefix of a v2 frame are caught
    /// (CRC, version, or kind check) exactly as for v1.
    #[test]
    fn corrupted_v2_frames_are_rejected(
        req_id in any::<u64>(),
        ops in vec(arb_op(), 0..16),
        at_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let batch = UpdateBatch {
            deadline_ms: 5,
            ctx: Some(TraceContext { trace_id: 7, parent_span: 3 }),
            ops,
        };
        let mut framed =
            encode_frame_v2(FrameKind::UpdateBatch, req_id, &encode_update_batch(&batch));
        let at = 4 + (at_seed as usize) % (framed.len() - 4);
        framed[at] ^= 1 << bit;
        prop_assert!(read_frame_ex(&mut framed.as_slice()).is_err());
    }

    /// The pre-allocation length cap holds for the peek path too: a forged
    /// oversized length prefix errors out of `frame_len` before any buffer
    /// is sized from it.
    #[test]
    fn forged_lengths_are_rejected_at_the_peek(
        len in (MAX_FRAME_BYTES as u32 + 1)..u32::MAX,
        tail in vec(any::<u8>(), 0..16),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(frame_len(&bytes).is_err());
    }
}
