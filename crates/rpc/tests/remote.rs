//! End-to-end tests over real sockets: a `GraphServiceServer` hosting a
//! live `Cluster` on an ephemeral port, driven by `RemoteCluster` (and,
//! for protocol-edge cases, a raw `TcpStream`).
//!
//! The contracts under test are the ones the trainer relies on:
//! bit-identical sampling local vs. remote under a shared seed, update
//! batches and heals round-tripping, server-side faults surfacing as
//! degraded responses (not client errors), deadlines degrading
//! late-in-batch requests, and transport loss mapping to per-request
//! degraded fallbacks.

use platod2gl_graph::{Edge, EdgeType, Error, GraphStore, ShardHealth, UpdateOp, VertexId};
use platod2gl_rpc::codec::{
    decode_error_reply, decode_sample_reply, encode_sample_batch, error_code, read_frame,
    write_frame, FrameError, FrameKind, SampleBatch,
};
use platod2gl_rpc::{GraphServiceServer, RemoteCluster, RemoteClusterConfig};
use platod2gl_server::{
    route_for, Cluster, ClusterConfig, DegradedPolicy, GraphService, SampleRequest, SlotSource,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;

/// A 3-shard cluster with a dense ring so every vertex has neighbors, and
/// a zero slow-op threshold so every request is capturable.
fn loaded_cluster() -> Arc<Cluster> {
    let config = ClusterConfig::builder()
        .num_shards(3)
        .slow_op_threshold(Duration::ZERO)
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..90u64 {
        for k in 1..=4u64 {
            cluster.insert_edge(Edge::new(VertexId(v), VertexId((v + k * 13) % 90), 1.0));
        }
    }
    cluster
}

fn serve(cluster: &Arc<Cluster>) -> (GraphServiceServer, RemoteCluster) {
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(cluster)).expect("bind");
    let client = RemoteCluster::connect(
        server.local_addr(),
        RemoteClusterConfig::default()
            .max_retries(1)
            .retry_backoff(Duration::from_millis(2)),
    )
    .expect("connect");
    (server, client)
}

/// Vertices owned by `shard` under the shared routing hash.
fn vertices_on_shard(shard: usize, num_shards: usize) -> Vec<VertexId> {
    (0..90u64)
        .map(VertexId)
        .filter(|&v| route_for(v, num_shards) == shard)
        .collect()
}

#[test]
fn remote_sampling_is_bit_identical_to_local() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);

    let reqs: Vec<SampleRequest> = (0..40u64)
        .map(|v| SampleRequest::new(VertexId(v), ET, 8))
        .collect();
    // Same seed on both sides: the remote path must consume exactly one
    // u64 per request (shipped on the wire), like the local path.
    let local = cluster.sample_many(&reqs, &mut StdRng::seed_from_u64(0xD2D2));
    let over_wire = remote.sample_many(&reqs, &mut StdRng::seed_from_u64(0xD2D2));
    assert_eq!(local, over_wire, "wire transport must not perturb draws");
    assert!(over_wire.iter().all(|r| !r.degraded));

    // And the batch is insensitive to client-side chunking: a max_batch
    // smaller than the request count pipelines multiple frames.
    let chunked = RemoteCluster::connect(
        server.local_addr(),
        RemoteClusterConfig::default().max_batch(7),
    )
    .expect("connect");
    let pipelined = chunked.sample_many(&reqs, &mut StdRng::seed_from_u64(0xD2D2));
    assert_eq!(local, pipelined, "chunking must not change results");

    server.shutdown();
}

#[test]
fn updates_and_heal_round_trip_over_the_wire() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);
    assert_eq!(remote.num_shards(), 3);

    let before = cluster.num_edges();
    let ops: Vec<UpdateOp> = (0..20u64)
        .map(|i| UpdateOp::Insert(Edge::new(VertexId(200 + i), VertexId(300 + i), 0.5)))
        .collect();
    let report = remote.apply_updates(&ops).expect("apply over wire");
    assert_eq!(report.applied_ops, 20);
    assert_eq!(report.queued_ops, 0);
    assert_eq!(cluster.num_edges(), before + 20);

    // Fail a shard: its ops queue server-side instead of applying, and
    // the remote heal drains them.
    let shard = 1;
    cluster.faults().fail_shard(shard);
    let queued_ops: Vec<UpdateOp> = vertices_on_shard(shard, 3)
        .iter()
        .take(5)
        .map(|&v| UpdateOp::Insert(Edge::new(v, VertexId(777), 1.0)))
        .collect();
    let report = remote
        .apply_updates(&queued_ops)
        .expect("queued, not error");
    assert_eq!(report.queued_ops, 5);
    assert_eq!(remote.shard_healths()[shard], ShardHealth::Failed);

    let drained = remote.heal(shard);
    assert_eq!(drained, 5, "heal must drain the queued ops");
    assert_eq!(remote.shard_healths()[shard], ShardHealth::Healthy);

    // Healing an out-of-range shard is a no-op, not a server fault.
    assert_eq!(remote.heal(99), 0);
    server.shutdown();
}

#[test]
fn worker_panic_maps_to_shard_panicked_error() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);

    let shard = 2;
    cluster.faults().panic_next_batch(shard);
    let ops: Vec<UpdateOp> = vertices_on_shard(shard, 3)
        .iter()
        .take(3)
        .map(|&v| UpdateOp::Insert(Edge::new(v, VertexId(888), 1.0)))
        .collect();
    match remote.apply_updates(&ops) {
        Err(Error::ShardPanicked { shard: s, .. }) => assert_eq!(s, shard),
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn server_side_shard_fault_degrades_sampling_without_client_errors() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);

    let shard = 0;
    cluster.faults().fail_shard(shard);
    let reqs: Vec<SampleRequest> = vertices_on_shard(shard, 3)
        .iter()
        .take(6)
        .map(|&v| {
            SampleRequest::new(v, ET, 4)
                .on_degraded(DegradedPolicy::SelfLoop)
                .with_trace_id(0xFA01)
        })
        .collect();
    let responses = remote.sample_many(&reqs, &mut StdRng::seed_from_u64(1));
    for (req, resp) in reqs.iter().zip(&responses) {
        assert!(resp.degraded, "failed shard must degrade, not error");
        assert_eq!(resp.shard, shard);
        // The degraded policy travelled the wire: router-side self-loop
        // padding, full fanout, provenance marked.
        assert_eq!(resp.neighbors, vec![req.vertex; 4]);
        assert_eq!(resp.sources, vec![SlotSource::SelfLoop; 4]);
    }

    // The trace id crossed the wire into the server's slow-op log — the
    // same ring `GET /debug/slow` serves.
    let captures = cluster.obs().slow_log().recent();
    assert!(
        captures.iter().any(|c| c.trace_id == Some(0xFA01)),
        "client trace id must reach the server's slow-op log"
    );
    server.shutdown();
}

#[test]
fn transport_loss_degrades_sampling_and_errors_updates() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);
    server.shutdown(); // the server goes away *after* connect

    let reqs = [
        SampleRequest::new(VertexId(3), ET, 5).on_degraded(DegradedPolicy::SelfLoop),
        SampleRequest::new(VertexId(4), ET, 5),
    ];
    let responses = remote.sample_many(&reqs, &mut StdRng::seed_from_u64(9));
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(|r| r.degraded));
    assert_eq!(responses[0].neighbors, vec![VertexId(3); 5]);
    assert!(responses[1].neighbors.is_empty());
    // The predicted owner is the shared routing hash, so provenance stays
    // meaningful even without a server.
    assert_eq!(responses[0].shard, route_for(VertexId(3), 3));

    let snap = remote.registry().snapshot();
    assert_eq!(snap.counter("rpc.client.degraded_fallbacks"), Some(2));
    assert!(snap.counter("rpc.client.retries").unwrap_or(0) >= 1);

    // Updates must NOT silently degrade — dropped writes are data loss.
    let err = remote.apply_updates(&[UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 1.0))]);
    assert!(matches!(err, Err(Error::Io(_))));

    // Version/health probes fall back to the last observed state.
    assert_eq!(remote.graph_version(), cluster.graph_version());
    assert_eq!(remote.shard_healths().len(), 3);
}

#[test]
fn deadline_lapse_degrades_remaining_requests_server_side() {
    let cluster = loaded_cluster();
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");

    // Make every shard slow, then ship a batch whose deadline only the
    // first request can beat: the server must answer the rest degraded
    // without touching the (slow) shards.
    for shard in 0..3 {
        cluster
            .faults()
            .slow_shard(shard, Duration::from_millis(25));
    }
    let requests: Vec<(SampleRequest, u64)> = (0..4u64)
        .map(|v| {
            (
                SampleRequest::new(VertexId(v), ET, 3).on_degraded(DegradedPolicy::SelfLoop),
                v + 1,
            )
        })
        .collect();
    let batch = SampleBatch {
        deadline_ms: 1,
        ctx: None,
        requests,
    };
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(
        &mut stream,
        FrameKind::SampleBatch,
        &encode_sample_batch(&batch),
    )
    .expect("send");
    stream.flush().expect("flush");
    let (kind, payload) = read_frame(&mut stream).expect("reply");
    assert_eq!(kind, FrameKind::SampleReply);
    let responses = decode_sample_reply(&payload).expect("decode");
    assert_eq!(responses.len(), 4);
    assert!(
        !responses[0].degraded,
        "first request starts inside the deadline"
    );
    for resp in &responses[1..] {
        assert!(resp.degraded, "post-deadline requests must degrade");
        assert_eq!(resp.sources, vec![SlotSource::SelfLoop; 3]);
    }
    assert_eq!(
        cluster
            .obs()
            .snapshot()
            .counter("rpc.server.deadline_expired"),
        Some(3)
    );
    server.shutdown();
}

#[test]
fn malformed_frames_get_an_error_reply_then_close() {
    let cluster = loaded_cluster();
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // A plausible length prefix followed by garbage: CRC cannot match.
    let mut junk = 10u32.to_le_bytes().to_vec();
    junk.extend_from_slice(&[0xAB; 10]);
    stream.write_all(&junk).expect("send junk");
    stream.flush().expect("flush");

    let (kind, payload) = read_frame(&mut stream).expect("error reply");
    assert_eq!(kind, FrameKind::ErrorReply);
    let err = decode_error_reply(&payload).expect("decode");
    assert_eq!(err.code, error_code::BAD_REQUEST);

    // The server does not trust the stream past a framing error: closed.
    match read_frame(&mut stream) {
        Err(FrameError::Io(_)) => {}
        other => panic!("expected the connection to close, got {other:?}"),
    }

    // The server itself is unharmed: a fresh connection still works.
    let remote = RemoteCluster::connect(server.local_addr(), RemoteClusterConfig::default())
        .expect("connect after bad peer");
    assert_eq!(remote.num_shards(), 3);
    server.shutdown();
}

#[test]
fn health_probe_tracks_graph_version_across_updates() {
    let cluster = loaded_cluster();
    let (server, remote) = serve(&cluster);

    let v0 = remote.graph_version();
    assert_eq!(v0, cluster.graph_version());
    remote
        .apply_updates(&[UpdateOp::Insert(Edge::new(VertexId(5), VertexId(6), 2.0))])
        .expect("apply");
    assert!(remote.graph_version() > v0, "version advances after writes");
    server.shutdown();
}
