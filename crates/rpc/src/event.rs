//! The readiness-driven event-loop backend of [`GraphServiceServer`].
//!
//! One loop thread owns every connection. A [`Poller`] (epoll on Linux,
//! scanning fallback elsewhere — see [`crate::poll`]) reports readiness;
//! connections are non-blocking with per-connection read and write
//! buffers, so no thread ever parks on a socket. Frames are decoded
//! zero-copy: [`parse_frame`] borrows the payload straight out of the
//! connection's read buffer, and with `workers = 0` (the default) the
//! request is dispatched inline on that borrowed slice — no payload copy
//! between socket and handler.
//!
//! With `workers > 0`, CRC-valid frames are copied onto a work queue and
//! dispatch runs on a small worker pool; completions come back through a
//! completion queue plus a [`Waker`] poke, and replies are written in
//! whatever order handlers finish. Protocol v2 clients correlate replies
//! by `req_id`, so out-of-order completion is fine for them; v1 frames
//! have no id, so their replies are held back in a per-connection
//! sequence buffer and flushed strictly in request order — an old client
//! on a new server observes exactly the PR-5 contract.
//!
//! Write-path frames (`TxnApply`/`UpdateBatch` and their replica twins)
//! never run on the loop thread *or* the bounded pool: a fleet node's
//! handler for them issues nested RPCs (relay to owners, replicate to
//! followers), and a handler that blocks on a peer whose own loop is
//! blocked on us is a distributed deadlock. They are offloaded to
//! short-lived threads — unbounded, like the legacy thread-per-connection
//! core, but scoped to the write path where request rates are batch-sized
//! — and their replies come back through the same completion queue.
//!
//! Event-loop health is published as gauges on the service's registry:
//! `rpc.server.ready_queue_depth` (events per poll batch),
//! `rpc.server.in_flight_requests` (dispatched, reply not yet queued),
//! `rpc.server.accept_backlog` (accepts drained in the latest burst —
//! how far behind the listener the loop is running), and
//! `rpc.server.open_connections`.
//!
//! [`GraphServiceServer`]: crate::GraphServiceServer

use crate::codec::{
    append_timing_echo, encode_error_reply, encode_reply_frame, error_code, frame_len, parse_frame,
    ErrorReply, FrameError, FrameHeader, FrameKind, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::dispatch::{dispatch, ServerMetrics};
use crate::poll::{PollEvent, Poller, Waker};
use crate::server::ServerConfig;
use crate::stats::{ConnInfo, RpcServerStats};
use platod2gl_obs::Histogram;
use platod2gl_server::GraphService;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the listening socket. (The poller reserves `u64::MAX`
/// for its internal waker; connection tokens pack a 32-bit slab index and
/// a 32-bit generation, so neither sentinel can collide.)
const LISTENER_TOKEN: u64 = u64::MAX - 1;
/// Idle wait ceiling; wakes (shutdown, worker completions) cut it short.
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);
/// Read granularity: bytes appended to a connection's read buffer per
/// `read` call while draining a readable socket.
const READ_CHUNK: usize = 64 * 1024;

fn make_token(idx: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Spawn the loop thread; returns its handle and a waker that interrupts
/// the poller (used by shutdown).
pub(crate) fn spawn<S>(
    listener: TcpListener,
    service: Arc<S>,
    stop: Arc<AtomicBool>,
    stats: Arc<RpcServerStats>,
    cfg: ServerConfig,
) -> io::Result<(JoinHandle<()>, Waker)>
where
    S: GraphService + Send + Sync + 'static,
{
    let poller = Poller::new(cfg.poller)?;
    stats.set_backend(poller.backend_name());
    let waker = poller.waker();
    let loop_waker = waker.clone();
    let handle = std::thread::Builder::new()
        .name("platod2gl-rpc-loop".to_string())
        .spawn(move || run(listener, service, stop, stats, cfg, poller, loop_waker))?;
    Ok((handle, waker))
}

/// One non-blocking connection owned by the loop.
struct Conn {
    stream: TcpStream,
    gen: u32,
    conn_id: u64,
    info: Arc<ConnInfo>,
    /// Accumulated unread bytes; frames are parsed zero-copy out of the
    /// front and drained once handled.
    rbuf: Vec<u8>,
    /// Bytes the socket would not take yet; `wpos` marks how far the
    /// front has already been written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Whether the poller currently watches this socket for writability.
    want_write: bool,
    /// Version of the last good frame, so even an error reply to a
    /// garbled frame is encoded in a layout the peer can parse.
    peer_version: u8,
    /// v1 ordering state (worker mode): next sequence to assign to an
    /// incoming v1 frame / next sequence allowed to flush, plus replies
    /// that finished early.
    v1_next_assign: u64,
    v1_next_flush: u64,
    v1_hold: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Stop reading, flush what is queued, then close (fatal frame error).
    closing: bool,
    /// Close now; the peer is gone or the stream is broken.
    dead: bool,
    /// When the write buffer first pushed back (None while draining
    /// freely); resolved into `rpc.server.write_stall_ns` once it empties.
    stalled_since: Option<Instant>,
    /// The write-stall histogram, pre-resolved per connection.
    write_stall: Arc<Histogram>,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// A unit of deferred dispatch (worker mode): the frame header plus an
/// owned copy of the payload.
struct WorkItem {
    token: u64,
    v1_seq: Option<u64>,
    header: FrameHeader,
    payload: Vec<u8>,
    started: Instant,
}

/// A finished dispatch: the fully encoded reply frame, ready to queue.
struct Completion {
    token: u64,
    v1_seq: Option<u64>,
    version: u8,
    bytes: Vec<u8>,
    /// The payload failed record-level decoding — send the (error) reply,
    /// then close.
    close_after: bool,
}

/// The loop's completion inbox, shared by pool workers and offload
/// threads: finished dispatches land here, a waker poke gets the loop to
/// drain them.
struct Completions {
    done: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, completion: Completion) {
        lock(&self.done).push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *lock(&self.done))
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<WorkItem>>,
    cv: Condvar,
    stop: AtomicBool,
}

/// The optional dispatch worker pool (`cfg.workers > 0`).
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn start<S>(
        n: usize,
        service: &Arc<S>,
        metrics: &Arc<ServerMetrics>,
        completions: &Arc<Completions>,
    ) -> Option<Self>
    where
        S: GraphService + Send + Sync + 'static,
    {
        if n == 0 {
            return None;
        }
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..n)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(service);
                let metrics = Arc::clone(metrics);
                let completions = Arc::clone(completions);
                std::thread::Builder::new()
                    .name(format!("platod2gl-rpc-worker-{i}"))
                    .spawn(move || worker_body(&shared, &*service, &metrics, &completions))
                    .ok()
            })
            .collect();
        Some(Self { shared, handles })
    }

    fn submit(&self, item: WorkItem) {
        lock(&self.shared.queue).push_back(item);
        self.shared.cv.notify_one();
    }

    fn stop_and_join(self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_body<S: GraphService + ?Sized>(
    shared: &PoolShared,
    service: &S,
    metrics: &ServerMetrics,
    completions: &Completions,
) {
    loop {
        let item = {
            let mut queue = lock(&shared.queue);
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(item) = queue.pop_front() {
                    break item;
                }
                // Timed wait so a missed notify can never park a worker
                // past shutdown.
                let (guard, _) = shared
                    .cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        completions.push(run_item(service, metrics, &item));
    }
}

/// Saturate a duration into the u32 microseconds the timing echo carries.
fn echo_us(d: Duration) -> u32 {
    d.as_micros().min(u128::from(u32::MAX)) as u32
}

/// Encode a reply frame, appending the timing echo to v2 replies (v1
/// clients see byte-identical frames).
fn reply_with_echo(
    header: &FrameHeader,
    kind: FrameKind,
    mut reply: Vec<u8>,
    queued: Duration,
    service_time: Duration,
) -> Vec<u8> {
    if header.version == PROTOCOL_V2 {
        append_timing_echo(&mut reply, echo_us(queued), echo_us(service_time));
    }
    encode_reply_frame(header, kind, &reply)
}

/// Dispatch one deferred item to its finished completion.
fn run_item<S: GraphService + ?Sized>(
    service: &S,
    metrics: &ServerMetrics,
    item: &WorkItem,
) -> Completion {
    // Everything between frame receipt and this moment — the pool queue
    // or the offload-thread spawn — is queue wait.
    let queued = item.started.elapsed();
    let svc_started = Instant::now();
    match dispatch(
        service,
        metrics,
        item.header.kind,
        &item.payload,
        item.started,
    ) {
        Ok((kind, reply)) => {
            let service_time = svc_started.elapsed();
            metrics.queue_wait.record(queued);
            metrics.service_time.record(service_time);
            Completion {
                token: item.token,
                v1_seq: item.v1_seq,
                version: item.header.version,
                bytes: reply_with_echo(&item.header, kind, reply, queued, service_time),
                close_after: false,
            }
        }
        Err(e) => {
            metrics.errors.inc();
            Completion {
                token: item.token,
                v1_seq: item.v1_seq,
                version: item.header.version,
                bytes: error_frame(item.header.version, &e),
                close_after: true,
            }
        }
    }
}

/// Frame kinds whose handlers may issue nested RPCs (fleet relay and
/// replication) and therefore must never occupy the loop thread or a
/// bounded pool slot — see the module docs on distributed deadlock.
fn must_offload(kind: FrameKind) -> bool {
    matches!(
        kind,
        FrameKind::TxnApply
            | FrameKind::ReplicaTxn
            | FrameKind::UpdateBatch
            | FrameKind::ReplicaBatch
    )
}

/// Run a re-entrant dispatch on its own short-lived thread. If the spawn
/// itself fails (fd/thread exhaustion) the item runs inline — possibly
/// stalling the loop, but never losing the request.
fn spawn_offload<S>(
    service: &Arc<S>,
    metrics: &Arc<ServerMetrics>,
    completions: &Arc<Completions>,
    item: WorkItem,
) where
    S: GraphService + Send + Sync + 'static,
{
    // The item sits in a shared slot so a failed spawn can take it back
    // and still produce a completion.
    let slot = Arc::new(Mutex::new(Some(item)));
    let thread_slot = Arc::clone(&slot);
    let thread_service = Arc::clone(service);
    let thread_metrics = Arc::clone(metrics);
    let thread_completions = Arc::clone(completions);
    let spawned = std::thread::Builder::new()
        .name("platod2gl-rpc-offload".to_string())
        .spawn(move || {
            if let Some(item) = lock(&thread_slot).take() {
                thread_completions.push(run_item(&*thread_service, &thread_metrics, &item));
            }
        });
    if spawned.is_err() {
        if let Some(item) = lock(&slot).take() {
            completions.push(run_item(&**service, metrics, &item));
        }
    }
}

/// A best-effort error reply encoded in the peer's own protocol version.
fn error_frame(peer_version: u8, e: &FrameError) -> Vec<u8> {
    let header = FrameHeader {
        version: peer_version,
        kind: FrameKind::ErrorReply,
        req_id: 0,
    };
    let reply = ErrorReply {
        code: error_code::BAD_REQUEST,
        shard: 0,
        message: e.to_string(),
    };
    let mut payload = encode_error_reply(&reply);
    // Even error replies honor the v2 framing contract: every v2 reply
    // carries the echo trailer (zeros here — no meaningful breakdown).
    if peer_version == PROTOCOL_V2 {
        append_timing_echo(&mut payload, 0, 0);
    }
    encode_reply_frame(&header, FrameKind::ErrorReply, &payload)
}

#[allow(clippy::too_many_lines)]
fn run<S>(
    listener: TcpListener,
    service: Arc<S>,
    stop: Arc<AtomicBool>,
    stats: Arc<RpcServerStats>,
    cfg: ServerConfig,
    mut poller: Poller,
    waker: Waker,
) where
    S: GraphService + Send + Sync + 'static,
{
    let metrics = Arc::new(ServerMetrics::new(Arc::clone(service.registry())));
    let registry = Arc::clone(&metrics.registry);
    let connections = registry.counter("rpc.server.connections");
    let g_ready = registry.gauge("rpc.server.ready_queue_depth");
    let g_in_flight = registry.gauge("rpc.server.in_flight_requests");
    let g_backlog = registry.gauge("rpc.server.accept_backlog");
    let g_open = registry.gauge("rpc.server.open_connections");

    if poller.register(&listener, LISTENER_TOKEN, false).is_err() {
        return;
    }
    let completions = Arc::new(Completions {
        done: Mutex::new(Vec::new()),
        waker,
    });
    let pool = WorkerPool::start(cfg.workers, &service, &metrics, &completions);

    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u32> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut open = 0usize;
    let mut in_flight = 0i64;
    let mut events: Vec<PollEvent> = Vec::new();

    while !stop.load(Ordering::Acquire) {
        let wait_started = Instant::now();
        let _ = poller.wait(&mut events, WAIT_TIMEOUT);
        metrics.poll_wait.record(wait_started.elapsed());
        g_ready.set(events.len() as i64);

        // Completions first (pool workers and write-path offload threads):
        // they free in-flight slots and may queue writes that this batch's
        // writable events then flush.
        for done in completions.drain() {
            let (idx, gen) = split_token(done.token);
            let touched = match slots.get_mut(idx).and_then(Option::as_mut) {
                Some(conn) if conn.gen == gen => {
                    in_flight -= 1;
                    conn.info.in_flight.fetch_sub(1, Ordering::Relaxed);
                    apply_completion(conn, done);
                    true
                }
                _ => false, // connection already closed; drop the reply
            };
            if touched {
                settle(
                    &mut poller,
                    &stats,
                    &g_open,
                    idx,
                    &mut slots,
                    &mut free,
                    &mut open,
                    &mut in_flight,
                );
            }
        }
        g_in_flight.set(in_flight);

        for &ev in &events {
            if ev.token == LISTENER_TOKEN {
                let burst = accept_burst(
                    &listener,
                    &mut poller,
                    &stats,
                    &connections,
                    &metrics.write_stall,
                    cfg.max_connections,
                    &mut slots,
                    &mut gens,
                    &mut free,
                    &mut open,
                );
                g_backlog.set(burst);
                g_open.set(open as i64);
                continue;
            }
            let (idx, gen) = split_token(ev.token);
            let touched = match slots.get_mut(idx).and_then(Option::as_mut) {
                // Stale tokens from an already-recycled slot are spurious
                // wakes — the generation check filters them.
                Some(conn) if conn.gen == gen => {
                    if ev.readable && !conn.closing && !conn.dead {
                        handle_readable(
                            conn,
                            &service,
                            &metrics,
                            &completions,
                            pool.as_ref(),
                            ev.token,
                            &mut in_flight,
                        );
                    }
                    if ev.writable && !conn.dead {
                        flush_writes(conn);
                    }
                    true
                }
                _ => false,
            };
            if touched {
                settle(
                    &mut poller,
                    &stats,
                    &g_open,
                    idx,
                    &mut slots,
                    &mut free,
                    &mut open,
                    &mut in_flight,
                );
            }
        }
        g_in_flight.set(in_flight);
    }

    if let Some(pool) = pool {
        pool.stop_and_join();
    }
    // Connections drop (and close) with the slab.
}

/// Post-touch bookkeeping shared by every path that mutates a connection:
/// sync poller write interest, then close if the connection is finished.
#[allow(clippy::too_many_arguments)]
fn settle(
    poller: &mut Poller,
    stats: &RpcServerStats,
    g_open: &platod2gl_obs::Gauge,
    idx: usize,
    slots: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    open: &mut usize,
    in_flight: &mut i64,
) {
    let Some(mut conn) = slots.get_mut(idx).and_then(Option::take) else {
        return;
    };
    let token = make_token(idx, conn.gen);
    let finished = conn.dead
        || (conn.closing
            && !conn.pending_write()
            && conn.info.in_flight.load(Ordering::Relaxed) == 0);
    if finished {
        let _ = poller.deregister(&conn.stream, token);
        stats.close(conn.conn_id);
        // Dispatches still in flight for this connection will be dropped
        // at completion (stale generation); settle their gauge debt now.
        *in_flight -= conn.info.in_flight.load(Ordering::Relaxed) as i64;
        free.push(idx);
        *open -= 1;
        g_open.set(*open as i64);
        return; // the connection drops (and closes) here
    }
    let want = conn.pending_write();
    if want != conn.want_write && poller.rearm(&conn.stream, token, want).is_ok() {
        conn.want_write = want;
    }
    slots[idx] = Some(conn);
}

/// Drain the listener until `WouldBlock`; returns how many connections
/// the burst accepted (the accept-backlog gauge).
#[allow(clippy::too_many_arguments)]
fn accept_burst(
    listener: &TcpListener,
    poller: &mut Poller,
    stats: &RpcServerStats,
    connections: &platod2gl_obs::Counter,
    write_stall: &Arc<Histogram>,
    max_connections: usize,
    slots: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u32>,
    free: &mut Vec<usize>,
    open: &mut usize,
) -> i64 {
    let mut burst = 0i64;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                burst += 1;
                if *open >= max_connections {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue; // stream drops, peer sees a reset
                }
                if stream.set_nonblocking(true).is_err() {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let idx = free.pop().unwrap_or_else(|| {
                    slots.push(None);
                    gens.push(0);
                    slots.len() - 1
                });
                gens[idx] = gens[idx].wrapping_add(1);
                let token = make_token(idx, gens[idx]);
                if poller.register(&stream, token, false).is_err() {
                    free.push(idx);
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                connections.inc();
                let info = ConnInfo::new(peer.to_string());
                let conn_id = stats.open(Arc::clone(&info));
                slots[idx] = Some(Conn {
                    stream,
                    gen: gens[idx],
                    conn_id,
                    info,
                    rbuf: Vec::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    want_write: false,
                    peer_version: PROTOCOL_V2,
                    v1_next_assign: 0,
                    v1_next_flush: 0,
                    v1_hold: BTreeMap::new(),
                    closing: false,
                    dead: false,
                    stalled_since: None,
                    write_stall: Arc::clone(write_stall),
                });
                *open += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    burst
}

/// What one parsed frame asks the loop to do (computed while the payload
/// still borrows the read buffer, applied after the borrow ends).
enum Step {
    /// Inline dispatch finished: route this completion (it still honors
    /// the v1 hold-back, so inline replies cannot overtake deferred ones).
    Done(Completion),
    /// Deferred (pool or offload thread): nothing to write yet.
    Submitted,
    /// Fatal framing/decoding error: error reply queued by caller, close.
    Fail(FrameError),
}

/// Drain a readable socket into the connection's buffer, then parse and
/// serve every complete frame sitting in it.
#[allow(clippy::too_many_arguments)]
fn handle_readable<S>(
    conn: &mut Conn,
    service: &Arc<S>,
    metrics: &Arc<ServerMetrics>,
    completions: &Arc<Completions>,
    pool: Option<&WorkerPool>,
    token: u64,
    in_flight: &mut i64,
) where
    S: GraphService + Send + Sync + 'static,
{
    // Phase 1: pull everything the socket has.
    loop {
        let start = conn.rbuf.len();
        conn.rbuf.resize(start + READ_CHUNK, 0);
        match conn.stream.read(&mut conn.rbuf[start..]) {
            Ok(0) => {
                conn.rbuf.truncate(start);
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.truncate(start + n);
                if n < READ_CHUNK {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.rbuf.truncate(start);
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                conn.rbuf.truncate(start);
            }
            Err(_) => {
                conn.rbuf.truncate(start);
                conn.dead = true;
                break;
            }
        }
    }

    // Phase 2: serve complete frames. A half-received frame stays
    // buffered for the next readable event; EOF with a partial frame is
    // simply an abandoned connection.
    while !conn.closing {
        let flen = match frame_len(&conn.rbuf) {
            Ok(None) => break,
            Ok(Some(flen)) => {
                if conn.rbuf.len() < flen {
                    break;
                }
                flen
            }
            Err(e) => {
                fail_conn(conn, metrics, e);
                return;
            }
        };
        let started = Instant::now();
        let step = match parse_frame(&conn.rbuf[..flen]) {
            Ok((header, payload)) => {
                conn.peer_version = header.version;
                // Every v1 frame takes a sequence number regardless of how
                // it is dispatched, so inline and deferred replies share
                // one ordering domain.
                let v1_seq = (header.version == PROTOCOL_V1).then(|| {
                    let seq = conn.v1_next_assign;
                    conn.v1_next_assign += 1;
                    seq
                });
                if must_offload(header.kind) {
                    spawn_offload(
                        service,
                        metrics,
                        completions,
                        WorkItem {
                            token,
                            v1_seq,
                            header,
                            payload: payload.to_vec(),
                            started,
                        },
                    );
                    Step::Submitted
                } else {
                    match pool {
                        // Inline dispatch — the zero-copy path: `payload`
                        // borrows rbuf all the way into the handler.
                        None => {
                            let queued = started.elapsed();
                            let svc_started = Instant::now();
                            match dispatch(&**service, metrics, header.kind, payload, started) {
                                Ok((kind, reply)) => {
                                    let service_time = svc_started.elapsed();
                                    metrics.queue_wait.record(queued);
                                    metrics.service_time.record(service_time);
                                    Step::Done(Completion {
                                        token,
                                        v1_seq,
                                        version: header.version,
                                        bytes: reply_with_echo(
                                            &header,
                                            kind,
                                            reply,
                                            queued,
                                            service_time,
                                        ),
                                        close_after: false,
                                    })
                                }
                                Err(e) => Step::Fail(e),
                            }
                        }
                        Some(pool) => {
                            pool.submit(WorkItem {
                                token,
                                v1_seq,
                                header,
                                payload: payload.to_vec(),
                                started,
                            });
                            Step::Submitted
                        }
                    }
                }
            }
            Err(e) => Step::Fail(e),
        };
        conn.rbuf.drain(..flen);
        match step {
            Step::Done(done) => apply_completion(conn, done),
            Step::Submitted => {
                conn.info.in_flight.fetch_add(1, Ordering::Relaxed);
                *in_flight += 1;
            }
            Step::Fail(e) => {
                fail_conn(conn, metrics, e);
                return;
            }
        }
        if conn.dead {
            return;
        }
    }
}

/// Queue a fatal-error reply and mark the connection closing.
fn fail_conn(conn: &mut Conn, metrics: &ServerMetrics, e: FrameError) {
    metrics.errors.inc();
    let bytes = error_frame(conn.peer_version, &e);
    queue_write(conn, &bytes);
    conn.closing = true;
}

/// A worker completion arrives: v2 replies go straight out (possibly out
/// of order — the client re-stitches by id), v1 replies are held until
/// every earlier v1 request has flushed.
fn apply_completion(conn: &mut Conn, done: Completion) {
    conn.info.served(done.version);
    match done.v1_seq {
        None => {
            queue_write(conn, &done.bytes);
            if done.close_after {
                conn.closing = true;
            }
        }
        Some(seq) => {
            conn.v1_hold.insert(seq, (done.bytes, done.close_after));
            while let Some((bytes, close_after)) = conn.v1_hold.remove(&conn.v1_next_flush) {
                queue_write(conn, &bytes);
                if close_after {
                    conn.closing = true;
                }
                conn.v1_next_flush += 1;
            }
        }
    }
}

/// Append reply bytes and push as much of the buffer as the socket takes.
fn queue_write(conn: &mut Conn, bytes: &[u8]) {
    conn.wbuf.extend_from_slice(bytes);
    flush_writes(conn);
}

/// Write buffered bytes until the socket pushes back.
fn flush_writes(conn: &mut Conn) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        // Drained: resolve any stall window that was open.
        if let Some(since) = conn.stalled_since.take() {
            conn.write_stall.record(since.elapsed());
        }
        conn.wbuf.clear();
        conn.wpos = 0;
    } else {
        // The socket pushed back with bytes still queued: a stall window
        // opens (or continues).
        if conn.stalled_since.is_none() {
            conn.stalled_since = Some(Instant::now());
        }
        if conn.wpos > READ_CHUNK {
            // Keep the pending tail from pinning an ever-growing buffer.
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
    }
}
