//! # Real network RPC plane
//!
//! PlatoD2GL's deployed architecture (Sec. VII) is trainers issuing
//! sampling and update RPCs to graph servers that own hash-partitioned
//! shards. This crate is that wire boundary, dependency-free (std
//! `TcpListener`/`TcpStream`, same zero-dep discipline as
//! `platod2gl-admin`), in three layers:
//!
//! * [`codec`] — length-prefixed, CRC32C-framed binary messages. Record
//!   layouts and sizes come from [`platod2gl_server::wire`], the same
//!   functions the in-process cluster's traffic accounting uses, so
//!   simulated and real `net.*` byte counts agree by construction.
//! * [`GraphServiceServer`] — hosts a shared
//!   [`GraphService`](platod2gl_server::GraphService) (an `Arc<Cluster>` +
//!   its registry) and serves concurrent connections with per-batch
//!   deadlines. Requests feed the cluster's span tracer and slow-op log —
//!   client trace ids show up in the server's `GET /debug/slow`.
//! * [`RemoteCluster`] — the client. Implements `GraphService`, so
//!   `KHopSampler` and `TrainingPipeline` run against a remote server
//!   unmodified; pools connections, pipelines coalesced sample batches,
//!   and maps transport failure onto per-request
//!   [`DegradedPolicy`](platod2gl_server::DegradedPolicy) fallbacks
//!   instead of erroring the batch.
//!
//! ## Determinism across the wire
//!
//! A trainer with a fixed RNG seed produces bit-identical mini-batches
//! against a local `Cluster` and a `RemoteCluster`: the client draws
//! exactly one `u64` per request and ships it; the server derives the
//! sampling stream from that seed exactly as the in-process path does.

mod client;
pub mod codec;
mod server;

pub use client::{RemoteCluster, RemoteClusterConfig};
pub use server::GraphServiceServer;
