//! # Real network RPC plane
//!
//! PlatoD2GL's deployed architecture (Sec. VII) is trainers issuing
//! sampling and update RPCs to graph servers that own hash-partitioned
//! shards. This crate is that wire boundary, dependency-free (std
//! `TcpListener`/`TcpStream`, same zero-dep discipline as
//! `platod2gl-admin`), in three layers:
//!
//! * [`codec`] — length-prefixed, CRC32C-framed binary messages, protocol
//!   v2 (frames carry a `req_id` correlation id; v1 frames without one
//!   are still accepted and answered in kind). Record layouts and sizes
//!   come from [`platod2gl_server::wire`], the same functions the
//!   in-process cluster's traffic accounting uses, so simulated and real
//!   `net.*` byte counts agree by construction.
//! * [`GraphServiceServer`] — hosts a shared
//!   [`GraphService`](platod2gl_server::GraphService) (an `Arc<Cluster>` +
//!   its registry) on one of two cores selected by [`ServerConfig`]: the
//!   default readiness-driven event loop (epoll-backed, non-blocking
//!   connections, zero-copy frame decode, out-of-order v2 replies) or the
//!   legacy thread-per-connection loop. Requests feed the cluster's span
//!   tracer and slow-op log — client trace ids show up in the server's
//!   `GET /debug/slow` — and the live connection table is exposed via
//!   [`GraphServiceServer::introspect`] for `GET /debug/rpc`.
//! * [`RemoteCluster`] — the client. Implements `GraphService`, so
//!   `KHopSampler` and `TrainingPipeline` run against a remote server
//!   unmodified; pools connections (with idle-timeout reaping), or — in
//!   [`ConnectionMode::Multiplexed`] — pipelines many in-flight requests
//!   over a few shared sockets and re-stitches replies by `req_id`; maps
//!   transport failure onto per-request
//!   [`DegradedPolicy`](platod2gl_server::DegradedPolicy) fallbacks
//!   instead of erroring the batch.
//!
//! ## Determinism across the wire
//!
//! A trainer with a fixed RNG seed produces bit-identical mini-batches
//! against a local `Cluster` and a `RemoteCluster`: the client draws
//! exactly one `u64` per request and ships it; the server derives the
//! sampling stream from that seed exactly as the in-process path does.
//! Neither the serving core nor the connection mode enters that contract
//! — seeds are pre-drawn before any I/O, and replies are re-stitched to
//! request order before decoding.

mod client;
pub mod codec;
mod dispatch;
mod event;
pub mod poll;
mod server;
mod stats;

pub use client::{
    ClientConfig, ClientConfigBuilder, ConnectionMode, RemoteCluster, RemoteClusterConfig,
};
pub use poll::PollerKind;
pub use server::{Backend, GraphServiceServer, ServerConfig, ServerConfigBuilder};
pub use stats::ServerIntrospect;
