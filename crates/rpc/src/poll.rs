//! Readiness polling for the event-loop server.
//!
//! [`Poller`] is a minimal readiness-notification abstraction over two
//! backends:
//!
//! * **epoll** (Linux): level-triggered `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` via direct FFI — the workspace builds with no external
//!   crates, and the symbols live in the C runtime every Rust binary
//!   already links. A `UnixStream` pair doubles as the cross-thread
//!   [`Waker`]: worker threads write one byte, the loop drains it.
//! * **scan** (portable fallback): no OS readiness at all. `wait` sleeps
//!   a short tick and reports *every* registered token as ready; the
//!   event loop's non-blocking reads/writes then no-op on `WouldBlock`.
//!   Correct everywhere `TcpStream::set_nonblocking` works, at O(n) scan
//!   cost per tick — the documented price of the fallback.
//!
//! Tokens are caller-chosen `u64`s (the event loop uses slab indices).
//! Registration is level-triggered: a readable event repeats until the
//! socket is drained, a writable event until the interest is dropped via
//! [`Poller::rearm`] — which is what makes the loop's "drain until
//! `WouldBlock`" discipline sound on both backends.

use std::io;
#[cfg(target_os = "linux")]
use std::os::fd::RawFd;
use std::time::Duration;

/// Which backend [`Poller::new`] should build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PollerKind {
    /// epoll where the platform has it, scan elsewhere.
    #[default]
    Auto,
    /// Force the portable scanning fallback (used by tests to cover the
    /// non-epoll path on any host).
    Scan,
}

/// One readiness event: the registered token plus edge directions.
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or closed/errored — a read will tell).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// Wakes a [`Poller::wait`] call from another thread.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    tx: Option<std::sync::Arc<std::os::unix::net::UnixStream>>,
    #[cfg(not(unix))]
    tx: Option<()>,
}

impl Waker {
    fn noop() -> Self {
        Self { tx: None }
    }

    /// Interrupt the poller's wait. Best-effort: a full wake pipe means a
    /// wake is already pending, which is all a waker promises.
    pub fn wake(&self) {
        #[cfg(unix)]
        if let Some(tx) = &self.tx {
            use std::io::Write;
            let _ = (&**tx).write(&[1u8]);
        }
    }
}

/// A readiness poller over one of the two backends.
pub enum Poller {
    /// Linux epoll.
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// Portable scanning fallback.
    Scan(ScanPoller),
}

impl Poller {
    /// Build a poller of the requested kind.
    pub fn new(kind: PollerKind) -> io::Result<Self> {
        match kind {
            PollerKind::Scan => Ok(Poller::Scan(ScanPoller::default())),
            PollerKind::Auto => {
                #[cfg(target_os = "linux")]
                {
                    Ok(Poller::Epoll(EpollPoller::new()?))
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Ok(Poller::Scan(ScanPoller::default()))
                }
            }
        }
    }

    /// The backend actually in use (surfaced by `/debug/rpc`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Scan(_) => "scan",
        }
    }

    /// A handle other threads can use to interrupt [`Poller::wait`]. On
    /// the scan backend this is a no-op — the short tick bounds latency.
    pub fn waker(&self) -> Waker {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.waker(),
            Poller::Scan(_) => Waker::noop(),
        }
    }

    /// Register `source` under `token`, readable always, writable iff
    /// `writable`.
    pub fn register(
        &mut self,
        source: &impl PollSource,
        token: u64,
        writable: bool,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, source.raw_fd(), token, writable),
            Poller::Scan(p) => {
                p.tokens.push(token);
                Ok(())
            }
        }
    }

    /// Change the write interest of an already-registered source.
    pub fn rearm(
        &mut self,
        source: &impl PollSource,
        token: u64,
        writable: bool,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, source.raw_fd(), token, writable),
            Poller::Scan(_) => Ok(()),
        }
    }

    /// Remove a source. The token may still surface from a concurrent
    /// `wait` batch; callers treat stale tokens as spurious wakes.
    pub fn deregister(&mut self, source: &impl PollSource, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_DEL, source.raw_fd(), token, false),
            Poller::Scan(p) => {
                p.tokens.retain(|&t| t != token);
                Ok(())
            }
        }
    }

    /// Block until readiness, a wake, or `timeout`; fills `events`
    /// (cleared first). Returning with no events is a valid outcome
    /// (timeout or wake).
    pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Scan(p) => {
                // No readiness source: tick, then report everything ready
                // and let non-blocking I/O sort out reality.
                std::thread::sleep(timeout.min(ScanPoller::TICK));
                events.extend(p.tokens.iter().map(|&token| PollEvent {
                    token,
                    readable: true,
                    writable: true,
                }));
                Ok(())
            }
        }
    }
}

/// Anything with a pollable OS handle. On non-unix hosts the trait is
/// vacuous (the scan backend never looks at the handle).
pub trait PollSource {
    /// The raw fd to register.
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> RawFd;
}

#[cfg(target_os = "linux")]
impl<T: std::os::fd::AsRawFd> PollSource for T {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(not(target_os = "linux"))]
impl<T> PollSource for T {}

/// The portable fallback: a plain token list (see module docs).
#[derive(Default)]
pub struct ScanPoller {
    tokens: Vec<u64>,
}

impl ScanPoller {
    /// Scan tick: latency ceiling and CPU floor of the fallback.
    const TICK: Duration = Duration::from_millis(2);
}

#[cfg(target_os = "linux")]
mod sys {
    //! Hand-rolled epoll FFI. The workspace vendors no `libc` crate, but
    //! these symbols come from the C runtime std already links against.
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors the kernel's `struct epoll_event`, which is packed on
    /// x86-64 only (12 bytes there, 16 elsewhere).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The Linux epoll backend.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: i32,
    /// Wake pipe: `wake_tx` is cloned into [`Waker`]s, `wake_rx` is
    /// registered under [`EpollPoller::WAKER_TOKEN`] and drained in wait.
    wake_rx: std::os::unix::net::UnixStream,
    wake_tx: std::sync::Arc<std::os::unix::net::UnixStream>,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Reserved token of the internal wake pipe — never surfaced.
    const WAKER_TOKEN: u64 = u64::MAX;

    fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let (wake_tx, wake_rx) = match std::os::unix::net::UnixStream::pair() {
            Ok(pair) => pair,
            Err(e) => {
                unsafe { sys::close(epfd) };
                return Err(e);
            }
        };
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let mut poller = Self {
            epfd,
            wake_rx,
            wake_tx: std::sync::Arc::new(wake_tx),
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        };
        let fd = {
            use std::os::fd::AsRawFd;
            poller.wake_rx.as_raw_fd()
        };
        poller.ctl(sys::EPOLL_CTL_ADD, fd, Self::WAKER_TOKEN, false)?;
        Ok(poller)
    }

    fn waker(&self) -> Waker {
        Waker {
            tx: Some(std::sync::Arc::clone(&self.wake_tx)),
        }
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        let mut woken = false;
        for i in 0..n {
            // Copy out of the (possibly packed) kernel struct before
            // touching fields.
            let ev = self.buf[i];
            let (mask, token) = (ev.events, ev.data);
            if token == Self::WAKER_TOKEN {
                woken = true;
                continue;
            }
            events.push(PollEvent {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        if woken {
            // Drain every pending wake byte so the next wait blocks.
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        if n == self.buf.len() && self.buf.len() < 4096 {
            // Saturated batch: grow so one wait can report more fds.
            self.buf
                .resize(self.buf.len() * 2, sys::EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Both backends must surface readability of a socket with buffered
    /// bytes, and the epoll waker must interrupt a long wait.
    #[test]
    fn pollers_report_readable_sockets() {
        for kind in [PollerKind::Auto, PollerKind::Scan] {
            let mut poller = Poller::new(kind).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("c");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblocking");
            poller.register(&server, 7, false).expect("register");

            client.write_all(b"ping").expect("write");
            client.flush().expect("flush");

            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            let seen = loop {
                poller
                    .wait(&mut events, Duration::from_millis(50))
                    .expect("wait");
                if events.iter().any(|e| e.token == 7 && e.readable) {
                    break true;
                }
                if std::time::Instant::now() > deadline {
                    break false;
                }
            };
            assert!(seen, "backend {:?} missed readability", kind);
            poller.deregister(&server, 7).expect("deregister");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn waker_interrupts_an_idle_wait() {
        let mut poller = Poller::new(PollerKind::Auto).expect("poller");
        assert_eq!(poller.backend_name(), "epoll");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let started = std::time::Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_secs(10))
            .expect("wait");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wake must cut the 10s timeout short"
        );
        assert!(events.is_empty());
        handle.join().expect("join");
    }
}
