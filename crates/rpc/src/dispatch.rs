//! Backend-agnostic request dispatch.
//!
//! Both server backends — the legacy thread-per-connection loop and the
//! readiness-driven event loop — funnel every decoded frame through
//! [`dispatch`]: one CRC-valid `(kind, payload)` in, one encoded reply
//! `(kind, payload)` out. Nothing in here touches a socket, which is the
//! point: the [`GraphService`] surface no longer assumes one blocking
//! reply per read. A backend may answer inline (threaded, event loop with
//! `workers = 0`) or hand frames to a worker pool and write completions
//! out of order under their request ids (event loop with `workers > 0`).
//!
//! Telemetry flows through the *service's* registry, exactly as before:
//! `rpc.server.*` counters, the request-latency histogram, and slow
//! update batches recorded with the client's trace id so `GET /debug/slow`
//! works across the wire.

use crate::codec::{
    decode_heal_request, decode_map_install, decode_migrate_ctl, decode_partition_fetch,
    decode_partition_stats, decode_sample_batch, decode_span_export, decode_tail_fetch,
    decode_txn_apply, decode_update_batch, encode_error_reply, encode_heal_reply,
    encode_health_reply, encode_map_reply, encode_migrate_ctl_reply, encode_obs_export_reply,
    encode_partition_chunk, encode_partition_stats_reply, encode_sample_reply,
    encode_span_export_reply, encode_tail_reply, encode_txn_reply, encode_update_reply, error_code,
    migrate_action, ErrorReply, FrameError, FrameKind, HealthReply, MapReply, PartitionChunkReply,
    TailReply, TxnReply, UpdateReply,
};
use platod2gl_graph::{Error, GraphTxn, TxnError};
use platod2gl_obs::{Counter, Histogram, Registry, SlowOpRecord, SpanGuard, TraceContext};
use platod2gl_server::{route_for, DegradedPolicy, GraphService, SampleResponse, SlotSource};
use rand::RngCore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Feeds the wire-shipped seed to [`GraphService::sample_one`], which by
/// contract draws exactly one `u64` — the same derivation the in-process
/// path performs, so remote draws are bit-identical to local ones.
pub(crate) struct SeedRng(pub u64);

impl RngCore for SeedRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = self.0;
        // A second draw would break the determinism contract; feeding a
        // derived value keeps it *defined* rather than a repeat.
        self.0 = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        s
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Pre-resolved `rpc.server.*` handles, shared by every connection (and
/// every dispatch worker) of one server.
pub(crate) struct ServerMetrics {
    pub registry: Arc<Registry>,
    pub frames: Arc<Counter>,
    pub sample_requests: Arc<Counter>,
    pub update_ops: Arc<Counter>,
    pub txn_ops: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub deadline_expired: Arc<Counter>,
    pub request_lat: Arc<Histogram>,
    // Latency anatomy: where a request's server-resident time actually
    // goes. `poll_wait` is loop idle/readiness time (event backend only);
    // `queue_wait` is frame receipt → handler start; `service_time` is the
    // handler itself; `write_stall` is reply bytes parked behind a
    // pushed-back socket. queue + service are echoed to v2 clients.
    pub poll_wait: Arc<Histogram>,
    pub queue_wait: Arc<Histogram>,
    pub service_time: Arc<Histogram>,
    pub write_stall: Arc<Histogram>,
}

impl ServerMetrics {
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            frames: registry.counter("rpc.server.frames"),
            sample_requests: registry.counter("rpc.server.sample_requests"),
            update_ops: registry.counter("rpc.server.update_ops"),
            txn_ops: registry.counter("rpc.server.txn_ops"),
            errors: registry.counter("rpc.server.errors"),
            deadline_expired: registry.counter("rpc.server.deadline_expired"),
            request_lat: registry.histogram("rpc.server.request_ns"),
            poll_wait: registry.histogram("rpc.server.poll_wait_ns"),
            queue_wait: registry.histogram("rpc.server.queue_wait_ns"),
            service_time: registry.histogram("rpc.server.service_ns"),
            write_stall: registry.histogram("rpc.server.write_stall_ns"),
            registry,
        }
    }
}

/// Map a store error to the `ErrorReply` the update/replica paths ship.
fn store_error_reply(e: &Error) -> ErrorReply {
    let shard = match e {
        Error::ShardPanicked { shard, .. } | Error::ShardUnavailable { shard } => *shard as u32,
        _ => 0,
    };
    ErrorReply {
        code: error_code::SHARD_PANICKED,
        shard,
        message: e.to_string(),
    }
}

fn bad_request_reply(message: String) -> (FrameKind, Vec<u8>) {
    let reply = ErrorReply {
        code: error_code::BAD_REQUEST,
        shard: 0,
        message,
    };
    (FrameKind::ErrorReply, encode_error_reply(&reply))
}

/// Open the server-side root span for one request: a *remote* root linked
/// to the caller's span when the frame carried trace context, a plain
/// local root otherwise. The span sits on the handling thread's ambient
/// stack for the duration of the arm, so any nested work — including a
/// fleet node's fan-out to replicas through its own `RemoteCluster` —
/// inherits the trace and stitches into one cross-process tree.
fn request_span<'r>(
    registry: &'r Registry,
    name: &'static str,
    ctx: Option<TraceContext>,
) -> SpanGuard<'r> {
    match ctx {
        Some(c) => registry.span_remote(name, c.trace_id, c.parent_span),
        None => registry.span(name),
    }
}

/// Client-policy degraded response, used when the server refuses a request
/// (deadline lapsed) without consulting the shard.
pub(crate) fn degraded_response(
    vertex: platod2gl_graph::VertexId,
    fanout: usize,
    policy: DegradedPolicy,
    shard: usize,
) -> SampleResponse {
    let (neighbors, sources) = match policy {
        DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
        DegradedPolicy::SelfLoop => (vec![vertex; fanout], vec![SlotSource::SelfLoop; fanout]),
    };
    SampleResponse {
        neighbors,
        sources,
        degraded: true,
        shard,
    }
}

/// Serve one CRC-valid frame: decode the payload, run it against the
/// service, encode the reply. `started` is the frame's receipt time —
/// batch deadlines are measured from it. `Err` means the payload failed
/// record-level decoding; the connection cannot be trusted past that and
/// the caller closes it.
pub(crate) fn dispatch<S: GraphService + ?Sized>(
    service: &S,
    m: &ServerMetrics,
    kind: FrameKind,
    payload: &[u8],
    started: Instant,
) -> Result<(FrameKind, Vec<u8>), FrameError> {
    m.frames.inc();
    // Data-plane kinds open their root span *after* decoding (the frame
    // carries the trace context); everything else gets a plain local span.
    let _ctl_span = match kind {
        FrameKind::SampleBatch
        | FrameKind::UpdateBatch
        | FrameKind::ReplicaBatch
        | FrameKind::TxnApply
        | FrameKind::ReplicaTxn => None,
        _ => Some(m.registry.span("rpc.server.request")),
    };
    let reply = match kind {
        FrameKind::SampleBatch => {
            let batch = decode_sample_batch(payload)?;
            let _span = request_span(&m.registry, "rpc.server.sample", batch.ctx);
            m.sample_requests.add(batch.requests.len() as u64);
            let deadline = Duration::from_millis(u64::from(batch.deadline_ms));
            let mut responses = Vec::with_capacity(batch.requests.len());
            for (req, seed) in &batch.requests {
                if batch.deadline_ms > 0 && started.elapsed() >= deadline {
                    m.deadline_expired.inc();
                    responses.push(degraded_response(
                        req.vertex,
                        req.fanout,
                        req.on_degraded,
                        route_for(req.vertex, service.num_shards()),
                    ));
                    continue;
                }
                responses.push(service.sample_one(req, &mut SeedRng(*seed)));
            }
            (FrameKind::SampleReply, encode_sample_reply(&responses))
        }
        FrameKind::UpdateBatch | FrameKind::ReplicaBatch => {
            let batch = decode_update_batch(payload)?;
            let _span = request_span(&m.registry, "rpc.server.update", batch.ctx);
            m.update_ops.add(batch.ops.len() as u64);
            // The replica channel applies through the replication entry
            // point, which never re-forwards (loop prevention).
            let outcome = if kind == FrameKind::ReplicaBatch {
                service.apply_replica_updates(&batch.ops)
            } else {
                service.apply_updates(&batch.ops)
            };
            let reply = match outcome {
                Ok(report) => {
                    let reply = UpdateReply {
                        applied_ops: report.applied_ops as u64,
                        queued_ops: report.queued_ops as u64,
                    };
                    (FrameKind::UpdateReply, encode_update_reply(&reply))
                }
                Err(e) => {
                    m.errors.inc();
                    (
                        FrameKind::ErrorReply,
                        encode_error_reply(&store_error_reply(&e)),
                    )
                }
            };
            let elapsed = started.elapsed();
            let slow = m.registry.slow_log();
            if slow.is_slow(elapsed) {
                slow.record(SlowOpRecord {
                    op: "rpc.update_batch",
                    trace_id: batch.trace_id(),
                    detail: format!("ops={}", batch.ops.len()),
                    duration_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                    spans: Vec::new(),
                });
            }
            reply
        }
        FrameKind::TxnApply | FrameKind::ReplicaTxn => {
            let apply = decode_txn_apply(payload)?;
            let _span = request_span(&m.registry, "rpc.server.txn", apply.ctx);
            m.txn_ops.add(apply.ops.len() as u64);
            let mut txn = GraphTxn::new(apply.txn_id);
            for op in apply.ops {
                txn.push(op);
            }
            // Every outcome — commit, rejection, store error — is a
            // well-formed TxnReply, so the client can always tell a served
            // verdict from a transport failure (only the latter is
            // retried, with the same txn id).
            let outcome = if kind == FrameKind::ReplicaTxn {
                service.apply_replica_txn(&txn)
            } else {
                service.apply_txn(&txn)
            };
            let reply = match outcome {
                Ok(receipt) => TxnReply::Committed(receipt),
                Err(TxnError::Rejected { txn_id, violations }) => {
                    m.errors.inc();
                    TxnReply::Rejected { txn_id, violations }
                }
                Err(TxnError::Store(e)) => {
                    m.errors.inc();
                    let err = store_error_reply(&e);
                    TxnReply::StoreError {
                        shard: err.shard,
                        code: err.code,
                        message: err.message,
                    }
                }
            };
            (FrameKind::TxnReply, encode_txn_reply(&reply))
        }
        FrameKind::HealthProbe => {
            let reply = HealthReply {
                graph_version: service.graph_version(),
                healths: service.shard_healths(),
            };
            (FrameKind::HealthReply, encode_health_reply(&reply))
        }
        FrameKind::HealRequest => {
            let shard = decode_heal_request(payload)? as usize;
            let drained = if shard < service.num_shards() {
                service.heal(shard) as u64
            } else {
                0
            };
            (FrameKind::HealReply, encode_heal_reply(drained))
        }
        FrameKind::MapFetch => {
            let reply = match service.fleet_map_bytes() {
                Some((epoch, bytes)) => MapReply {
                    epoch,
                    bytes: Some(bytes),
                },
                None => MapReply {
                    epoch: 0,
                    bytes: None,
                },
            };
            (FrameKind::MapReply, encode_map_reply(&reply))
        }
        FrameKind::MapInstall => {
            let (epoch, bytes) = decode_map_install(payload)?;
            match service.install_fleet_map(epoch, &bytes) {
                Ok(effective) => {
                    let mut buf = Vec::with_capacity(8);
                    platod2gl_server::wire::put_u64(&mut buf, effective);
                    (FrameKind::MapInstallReply, buf)
                }
                Err(e) => {
                    m.errors.inc();
                    bad_request_reply(e.to_string())
                }
            }
        }
        FrameKind::PartitionFetch => {
            let fetch = decode_partition_fetch(payload)?;
            match service.export_partition(
                fetch.partition,
                fetch.num_partitions,
                fetch.cursor,
                fetch.max_edges as usize,
            ) {
                Ok(chunk) => {
                    let reply = PartitionChunkReply {
                        done: chunk.done,
                        cursor: chunk.cursor,
                        edges: chunk.edges,
                        snapshot: chunk.snapshot,
                    };
                    (
                        FrameKind::PartitionChunkReply,
                        encode_partition_chunk(&reply),
                    )
                }
                Err(e) => {
                    m.errors.inc();
                    bad_request_reply(e.to_string())
                }
            }
        }
        FrameKind::MigrateCtl => {
            let (action, partition, num_partitions) = decode_migrate_ctl(payload)?;
            let outcome = if action == migrate_action::BEGIN {
                service.begin_migration(partition, num_partitions)
            } else {
                service.end_migration(partition)
            };
            match outcome {
                Ok(value) => (FrameKind::MigrateCtlReply, encode_migrate_ctl_reply(value)),
                Err(e) => {
                    m.errors.inc();
                    bad_request_reply(e.to_string())
                }
            }
        }
        FrameKind::TailFetch => {
            let (partition, from_seq) = decode_tail_fetch(payload)?;
            match service.migration_tail(partition, from_seq) {
                Ok((ops, next_seq)) => {
                    let reply = TailReply { next_seq, ops };
                    (FrameKind::TailReply, encode_tail_reply(&reply))
                }
                Err(e) => {
                    m.errors.inc();
                    bad_request_reply(e.to_string())
                }
            }
        }
        FrameKind::PartitionStats => {
            let num_partitions = decode_partition_stats(payload)?;
            let counts = service.partition_key_counts(num_partitions);
            (
                FrameKind::PartitionStatsReply,
                encode_partition_stats_reply(&counts),
            )
        }
        // Introspection reads served straight from the server's registry:
        // the admin plane pulls per-trace span subtrees and full metric
        // exports from every fleet member through these.
        FrameKind::SpanExport => {
            let trace_id = decode_span_export(payload)?;
            (
                FrameKind::SpanExportReply,
                encode_span_export_reply(&m.registry.trace_spans(trace_id)),
            )
        }
        FrameKind::ObsExport => (
            FrameKind::ObsExportReply,
            encode_obs_export_reply(&m.registry.export()),
        ),
        // Reply kinds arriving at a server are a protocol violation (the
        // connection stays open — the reply names the offense).
        kind => {
            m.errors.inc();
            bad_request_reply(format!("unexpected client frame {kind:?}"))
        }
    };
    m.request_lat.record(started.elapsed());
    Ok(reply)
}
