//! The remote graph-service client.
//!
//! [`RemoteCluster`] speaks the frame protocol to a
//! [`GraphServiceServer`](crate::GraphServiceServer) and implements
//! [`GraphService`] — the same surface as the in-process `Cluster` — so
//! `KHopSampler` and `TrainingPipeline` run against a remote graph server
//! unmodified.
//!
//! ## Connection modes
//!
//! [`ConnectionMode::Pooled`] (the default) is strictly
//! request/reply-per-stream: each call checks a stream out of the pool,
//! runs its round trip(s), and checks it back in on success (a failed
//! stream is dropped, never re-pooled; a stream idle past
//! [`ClientConfig::idle_timeout`] is reaped at the next checkout and
//! counted in `rpc.client.pool_evictions`). Concurrent callers — the
//! pipeline's prefetch workers — each get their own stream.
//!
//! [`ConnectionMode::Multiplexed`] shares a handful of sockets
//! ([`ClientConfig::mux_connections`]) among all callers: every request
//! carries a fresh `req_id`, a per-channel reader thread demultiplexes
//! replies back to their waiters by id, and up to
//! [`ClientConfig::max_in_flight`] requests ride one socket concurrently.
//! Many in-flight requests over few file descriptors is exactly the shape
//! the event-loop server is built for.
//!
//! Either way, [`RemoteCluster::sample_many`] coalesces a frontier into
//! chunks of [`ClientConfig::max_batch`] requests and *pipelines* them:
//! all chunk frames are written before any reply is read, and replies are
//! re-stitched into request order by correlation id — so a hub-heavy
//! frontier costs one round trip of latency, not one per chunk, and a
//! server answering out of order (event loop with workers) changes
//! nothing observable.
//!
//! ## Failure mapping
//!
//! Transport failures retry with exponential backoff
//! ([`ClientConfig::max_retries`], [`ClientConfig::retry_backoff`]) on a
//! fresh connection. Sampling is safe to retry because the per-request
//! RNG seeds are drawn *before* any I/O; update batches are safe because
//! every op kind is idempotent. When the budget is exhausted, the
//! sampling path does **not** error: each affected request degrades
//! according to its own [`DegradedPolicy`] — exactly what the in-process
//! router does for a dead shard — so a trainer rides out a server restart
//! with degraded batches instead of a crash. Update batches, whose loss
//! would silently drop writes, surface `Error::Io` after the last retry.

use crate::codec::{
    decode_error_reply, decode_heal_reply, decode_health_reply, decode_map_reply,
    decode_migrate_ctl_reply, decode_obs_export_reply, decode_partition_chunk,
    decode_partition_stats_reply, decode_sample_reply, decode_span_export_reply, decode_tail_reply,
    decode_txn_reply, decode_update_reply, encode_frame_v2, encode_heal_request,
    encode_map_install, encode_migrate_ctl, encode_partition_fetch, encode_partition_stats,
    encode_sample_batch, encode_span_export, encode_tail_fetch, encode_txn_apply,
    encode_update_batch, error_code, frame_len, migrate_action, parse_frame, read_frame_ex,
    take_timing_echo, write_frame_v2, FrameError, FrameKind, MapReply, PartitionFetch, SampleBatch,
    TxnApply, TxnReply, UpdateBatch, PROTOCOL_V2,
};
use platod2gl_graph::{Error, GraphTxn, ShardHealth, TxnError, TxnReceipt, UpdateOp};
use platod2gl_obs::{
    current_trace_context, Counter, ExportedSpan, Histogram, Registry, RegistryExport,
};
use platod2gl_server::{
    route_for, BatchReport, DegradedPolicy, GraphService, PartitionChunk, SampleRequest,
    SampleResponse, SlotSource,
};
use rand::RngCore;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How a [`RemoteCluster`] maps calls onto sockets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnectionMode {
    /// One exchange at a time per pooled stream (the default).
    #[default]
    Pooled,
    /// Few shared sockets, many correlated in-flight requests each.
    Multiplexed,
}

/// Client shape: timeouts, retry budget, pool/mux and coalescing sizes.
/// Build via [`ClientConfig::builder`] for validation; the chained setters
/// remain for terse call sites.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-round-trip socket timeout; also shipped to the server as the
    /// batch's `deadline_ms` budget.
    pub request_timeout: Duration,
    /// Transport retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Idle connections kept in the pool (extras are dropped on check-in).
    pub pool_size: usize,
    /// Sample requests per pipelined frame.
    pub max_batch: usize,
    /// Connection mode (pooled vs multiplexed).
    pub mode: ConnectionMode,
    /// Multiplexed mode: sockets shared by all callers.
    pub mux_connections: usize,
    /// Multiplexed mode: in-flight request ceiling per socket. A full
    /// channel pushes back (the caller retries after backoff) instead of
    /// queueing unboundedly.
    pub max_in_flight: usize,
    /// Pooled streams idle longer than this are reaped at checkout
    /// (`rpc.client.pool_evictions` counts them) instead of being handed
    /// to a request that would stall on a half-dead socket.
    pub idle_timeout: Duration,
}

/// The pre-PR-8 name of [`ClientConfig`], kept so existing call sites and
/// the fleet crate compile unchanged.
pub type RemoteClusterConfig = ClientConfig;

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(2),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            pool_size: 4,
            max_batch: 256,
            mode: ConnectionMode::Pooled,
            mux_connections: 2,
            max_in_flight: 1024,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl ClientConfig {
    /// Start building a validated config.
    pub fn builder() -> ClientConfigBuilder {
        ClientConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Per-round-trip socket timeout (and server-side deadline budget).
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.request_timeout = t;
        self
    }

    /// Transport retries after the first attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Backoff before the first retry; doubles per attempt.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.retry_backoff = d;
        self
    }

    /// Sample requests per pipelined frame.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Connection mode.
    pub fn mode(mut self, mode: ConnectionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Multiplexed mode: sockets shared by all callers.
    pub fn mux_connections(mut self, n: usize) -> Self {
        self.mux_connections = n.max(1);
        self
    }

    /// Idle reap threshold for pooled streams.
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }
}

/// Builder for [`ClientConfig`] — the validated construction path.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfigBuilder {
    cfg: ClientConfig,
}

impl ClientConfigBuilder {
    /// Per-round-trip socket timeout (and server-side deadline budget).
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.cfg.request_timeout = t;
        self
    }

    /// TCP connect timeout.
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.cfg.connect_timeout = t;
        self
    }

    /// Transport retries after the first attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = n;
        self
    }

    /// Backoff before the first retry; doubles per attempt.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.cfg.retry_backoff = d;
        self
    }

    /// Idle connections kept in the pool.
    pub fn pool_size(mut self, n: usize) -> Self {
        self.cfg.pool_size = n;
        self
    }

    /// Sample requests per pipelined frame.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// Connection mode.
    pub fn mode(mut self, mode: ConnectionMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Multiplexed mode: sockets shared by all callers.
    pub fn mux_connections(mut self, n: usize) -> Self {
        self.cfg.mux_connections = n;
        self
    }

    /// Multiplexed mode: in-flight ceiling per socket.
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.cfg.max_in_flight = n;
        self
    }

    /// Idle reap threshold for pooled streams.
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.cfg.idle_timeout = d;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ClientConfig, Error> {
        let c = &self.cfg;
        if c.max_batch == 0 {
            return Err(Error::invalid_config("client max_batch must be at least 1"));
        }
        if c.request_timeout.is_zero() || c.connect_timeout.is_zero() {
            return Err(Error::invalid_config("client timeouts must be non-zero"));
        }
        if c.mux_connections == 0 {
            return Err(Error::invalid_config(
                "client mux_connections must be at least 1",
            ));
        }
        if c.max_in_flight == 0 {
            return Err(Error::invalid_config(
                "client max_in_flight must be at least 1",
            ));
        }
        if c.idle_timeout.is_zero() {
            return Err(Error::invalid_config(
                "client idle_timeout must be non-zero",
            ));
        }
        Ok(self.cfg)
    }
}

struct ClientMetrics {
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    transport_errors: Arc<Counter>,
    degraded_fallbacks: Arc<Counter>,
    reconnects: Arc<Counter>,
    pool_evictions: Arc<Counter>,
    rtt: Arc<Histogram>,
    /// Server-reported queue + service time from the v2 reply timing
    /// echo. `rtt_ns - server_time_ns` for the same request is the
    /// network + client-side share of the round trip, so a slow batch can
    /// be attributed without a server-side lookup.
    server_time: Arc<Histogram>,
}

impl ClientMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        Self {
            requests: registry.counter("rpc.client.requests"),
            retries: registry.counter("rpc.client.retries"),
            transport_errors: registry.counter("rpc.client.transport_errors"),
            degraded_fallbacks: registry.counter("rpc.client.degraded_fallbacks"),
            reconnects: registry.counter("rpc.client.reconnects"),
            pool_evictions: registry.counter("rpc.client.pool_evictions"),
            rtt: registry.histogram("rpc.client.rtt_ns"),
            server_time: registry.histogram("rpc.client.server_time_ns"),
        }
    }
}

// ---------------------------------------------------------------------
// Multiplexed channels.
// ---------------------------------------------------------------------

/// What a mux waiter receives: the reply frame, or why it will never come.
type MuxReply = Result<(FrameKind, Vec<u8>), String>;

/// One shared socket: writers serialize frame writes under a mutex, a
/// dedicated reader thread parses replies and routes each to its waiter
/// by `req_id`.
struct MuxChannel {
    writer: Mutex<TcpStream>,
    pending: Arc<Mutex<HashMap<u64, mpsc::SyncSender<MuxReply>>>>,
    alive: Arc<AtomicBool>,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MuxChannel {
    fn dial(addr: &SocketAddr, cfg: &ClientConfig) -> io::Result<Arc<Self>> {
        let stream = TcpStream::connect_timeout(addr, cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(cfg.request_timeout))?;
        let read_side = stream.try_clone()?;
        // Short poll so the reader notices `alive` dropping at shutdown;
        // partial frames survive timeouts because the reader buffers
        // bytes itself instead of using blocking exact reads.
        read_side.set_read_timeout(Some(Duration::from_millis(50)))?;
        let pending: Arc<Mutex<HashMap<u64, mpsc::SyncSender<MuxReply>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let channel = Arc::new(Self {
            writer: Mutex::new(stream),
            pending: Arc::clone(&pending),
            alive: Arc::clone(&alive),
            reader: Mutex::new(None),
        });
        let handle = std::thread::Builder::new()
            .name("platod2gl-rpc-mux".to_string())
            .spawn(move || mux_reader(read_side, &pending, &alive))?;
        *lock(&channel.reader) = Some(handle);
        Ok(channel)
    }

    /// Register a waiter and write the request frame. Fails fast when the
    /// channel is dead or at its in-flight ceiling.
    fn submit(
        &self,
        req_id: u64,
        kind: FrameKind,
        payload: &[u8],
        max_in_flight: usize,
    ) -> Result<mpsc::Receiver<MuxReply>, FrameError> {
        if !self.alive.load(Ordering::Acquire) {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "mux channel closed",
            )));
        }
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut pending = lock(&self.pending);
            if pending.len() >= max_in_flight {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "mux channel at max in-flight",
                )));
            }
            pending.insert(req_id, tx);
        }
        let frame = encode_frame_v2(kind, req_id, payload);
        let wrote = {
            let mut writer = lock(&self.writer);
            writer.write_all(&frame).and_then(|()| writer.flush())
        };
        if let Err(e) = wrote {
            lock(&self.pending).remove(&req_id);
            self.fail("write failed");
            return Err(FrameError::Io(e));
        }
        Ok(rx)
    }

    fn cancel(&self, req_id: u64) {
        lock(&self.pending).remove(&req_id);
    }

    /// Mark the channel dead and wake every waiter with the reason.
    fn fail(&self, why: &str) {
        self.alive.store(false, Ordering::Release);
        for (_, tx) in lock(&self.pending).drain() {
            let _ = tx.try_send(Err(why.to_string()));
        }
    }

    fn shutdown(&self) {
        self.alive.store(false, Ordering::Release);
        let _ = lock(&self.writer).shutdown(std::net::Shutdown::Both);
        if let Some(handle) = lock(&self.reader).take() {
            let _ = handle.join();
        }
    }
}

/// Reader-thread body: buffer bytes, parse frames, deliver by `req_id`.
/// A reply whose id has no waiter (timed out and cancelled) is dropped.
fn mux_reader(
    mut stream: TcpStream,
    pending: &Mutex<HashMap<u64, mpsc::SyncSender<MuxReply>>>,
    alive: &AtomicBool,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let fail = |why: &str| {
        alive.store(false, Ordering::Release);
        for (_, tx) in lock(pending).drain() {
            let _ = tx.try_send(Err(why.to_string()));
        }
    };
    while alive.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => {
                fail("server closed the connection");
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    let flen = match frame_len(&buf) {
                        Ok(None) => break,
                        Ok(Some(flen)) => {
                            if buf.len() < flen {
                                break;
                            }
                            flen
                        }
                        Err(e) => {
                            fail(&e.to_string());
                            return;
                        }
                    };
                    match parse_frame(&buf[..flen]) {
                        Ok((header, payload)) => {
                            if let Some(tx) = lock(pending).remove(&header.req_id) {
                                let _ = tx.try_send(Ok((header.kind, payload.to_vec())));
                            }
                        }
                        Err(e) => {
                            fail(&e.to_string());
                            return;
                        }
                    }
                    buf.drain(..flen);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                fail(&e.to_string());
                return;
            }
        }
    }
}

/// A remote graph service reached over TCP, usable anywhere a `Cluster`
/// is (it implements [`GraphService`]).
pub struct RemoteCluster {
    addr: SocketAddr,
    cfg: ClientConfig,
    registry: Arc<Registry>,
    /// Pooled streams with their check-in instant (idle-reap bookkeeping).
    pool: Mutex<Vec<(TcpStream, Instant)>>,
    /// Multiplexed channels (empty in pooled mode).
    mux: Mutex<Vec<Arc<MuxChannel>>>,
    mux_rr: AtomicUsize,
    next_req_id: AtomicU64,
    num_shards: usize,
    last_version: AtomicU64,
    last_healths: Mutex<Vec<ShardHealth>>,
    m: ClientMetrics,
}

impl RemoteCluster {
    /// Connect to a graph server and learn its topology (shard count,
    /// graph version) via an initial health probe. The client owns its own
    /// registry: client-side `rpc.client.*` and `pipeline.*` telemetry
    /// land here, while server-side spans/slow-ops stay in the server's.
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, Error> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let registry = Arc::new(Registry::new());
        let m = ClientMetrics::new(&registry);
        let mut client = Self {
            addr,
            cfg,
            registry,
            pool: Mutex::new(Vec::new()),
            mux: Mutex::new(Vec::new()),
            mux_rr: AtomicUsize::new(0),
            next_req_id: AtomicU64::new(1),
            num_shards: 0,
            last_version: AtomicU64::new(0),
            last_healths: Mutex::new(Vec::new()),
            m,
        };
        let health = client.probe().map_err(|e| {
            Error::Io(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                e.to_string(),
            ))
        })?;
        client.num_shards = health.healths.len();
        Ok(client)
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn next_req_id(&self) -> u64 {
        self.next_req_id.fetch_add(1, Ordering::Relaxed)
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true)?;
        self.m.reconnects.inc();
        Ok(stream)
    }

    /// Check a stream out of the pool (the flag says it was pooled) or
    /// dial a fresh one. Streams idle past `idle_timeout` are reaped
    /// first — handing one to a request just trades a cheap reconnect now
    /// for a stalled read later.
    fn checkout(&self) -> io::Result<(TcpStream, bool)> {
        let now = Instant::now();
        let (pooled, reaped) = {
            let mut pool = self.lock_pool();
            let before = pool.len();
            pool.retain(|(_, parked)| now.duration_since(*parked) < self.cfg.idle_timeout);
            let reaped = (before - pool.len()) as u64;
            (pool.pop(), reaped)
        };
        if reaped > 0 {
            self.m.pool_evictions.add(reaped);
        }
        match pooled {
            Some((stream, _)) => Ok((stream, true)),
            None => self.dial().map(|stream| (stream, false)),
        }
    }

    /// Park a stream in the pool — test hook for the eviction paths (a
    /// server restart leaves dead pooled streams; a long pause leaves
    /// stale ones).
    #[cfg(test)]
    fn inject_pooled(&self, stream: TcpStream) {
        self.lock_pool().push((stream, Instant::now()));
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.lock_pool();
        if pool.len() < self.cfg.pool_size {
            pool.push((stream, Instant::now()));
        }
    }

    fn lock_pool(&self) -> MutexGuard<'_, Vec<(TcpStream, Instant)>> {
        lock(&self.pool)
    }

    fn deadline_ms(&self) -> u32 {
        self.cfg
            .request_timeout
            .as_millis()
            .min(u128::from(u32::MAX)) as u32
    }

    /// One request/reply exchange with retry + backoff. The closure runs
    /// the whole exchange on a checked-out stream; any [`FrameError::Io`]
    /// drops the stream, sleeps the (doubling) backoff, and retries on a
    /// fresh connection. Protocol-level errors are not retried — a peer
    /// speaking a different protocol will not improve on attempt two.
    /// Stale pooled connections (the server restarted since check-in) are
    /// a special case: the dead stream is evicted and the exchange redialed
    /// immediately, **without** spending a retry or sleeping a backoff —
    /// otherwise one restart burns the whole retry budget on streams that
    /// were doomed before the request existed. The eviction loop is bounded
    /// by the pool size: failed streams are never re-pooled, so each
    /// eviction shrinks the pool until checkout dials fresh.
    fn with_retries<T>(
        &self,
        mut exchange: impl FnMut(&mut TcpStream) -> Result<T, FrameError>,
    ) -> Result<T, FrameError> {
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0;
        loop {
            let (outcome, pooled) = match self.checkout() {
                Ok((mut s, pooled)) => {
                    let run: Result<T, FrameError> = (|| {
                        let started = Instant::now();
                        let out = exchange(&mut s)?;
                        self.m.rtt.record(started.elapsed());
                        Ok(out)
                    })();
                    if run.is_ok() {
                        self.checkin(s);
                    }
                    (run, pooled)
                }
                Err(e) => (Err(FrameError::Io(e)), false),
            };
            match outcome {
                Ok(out) => return Ok(out),
                Err(FrameError::Io(_)) if pooled => {
                    self.m.transport_errors.inc();
                    self.m.pool_evictions.inc();
                }
                Err(FrameError::Io(e)) if attempt < self.cfg.max_retries => {
                    self.m.transport_errors.inc();
                    self.m.retries.inc();
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                    let _ = e;
                }
                Err(e) => {
                    if matches!(e, FrameError::Io(_)) {
                        self.m.transport_errors.inc();
                    }
                    return Err(e);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Multiplexed transport.
    // ------------------------------------------------------------------

    /// Pick (or dial) a live mux channel, round-robin across the
    /// configured socket count.
    fn mux_channel(&self) -> Result<Arc<MuxChannel>, FrameError> {
        let mut channels = lock(&self.mux);
        channels.retain(|c| c.alive.load(Ordering::Acquire));
        if channels.len() < self.cfg.mux_connections {
            let channel = MuxChannel::dial(&self.addr, &self.cfg).map_err(FrameError::Io)?;
            self.m.reconnects.inc();
            channels.push(Arc::clone(&channel));
            return Ok(channel);
        }
        let i = self.mux_rr.fetch_add(1, Ordering::Relaxed) % channels.len();
        Ok(Arc::clone(&channels[i]))
    }

    /// Wait for one correlated reply. A timeout kills the channel: its
    /// stream ordering is unknowable once a reply has been abandoned.
    fn mux_await(
        &self,
        channel: &MuxChannel,
        req_id: u64,
        rx: &mpsc::Receiver<MuxReply>,
    ) -> Result<(FrameKind, Vec<u8>), FrameError> {
        match rx.recv_timeout(self.cfg.request_timeout) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(why)) => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                why,
            ))),
            Err(_) => {
                channel.cancel(req_id);
                channel.fail("request timed out");
                Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "mux reply timed out",
                )))
            }
        }
    }

    fn mux_call_once(
        &self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), FrameError> {
        let channel = self.mux_channel()?;
        let req_id = self.next_req_id();
        let started = Instant::now();
        let rx = channel.submit(req_id, kind, payload, self.cfg.max_in_flight)?;
        let (kind, mut payload) = self.mux_await(&channel, req_id, &rx)?;
        // Mux channels are always v2, so every reply carries the echo.
        let echo = take_timing_echo(PROTOCOL_V2, &mut payload)?;
        self.m.rtt.record(started.elapsed());
        self.m.server_time.record(echo.server_time());
        Ok((kind, payload))
    }

    /// The generic one-shot exchange, mode-dispatched: returns the reply
    /// frame for the caller to interpret. Transport errors are retried
    /// with backoff in both modes.
    fn roundtrip(
        &self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), FrameError> {
        match self.cfg.mode {
            ConnectionMode::Pooled => self.with_retries(|stream| {
                let req_id = self.next_req_id();
                write_frame_v2(stream, kind, req_id, payload)?;
                stream.flush()?;
                let (header, mut reply) = read_frame_ex(stream)?;
                // A v2 server echoes the id; a mismatch means the stream
                // carries someone else's reply and cannot be trusted.
                if header.version == PROTOCOL_V2 && header.req_id != req_id {
                    return Err(FrameError::UnexpectedReply {
                        expected: "matching correlation id",
                        got: header.kind,
                    });
                }
                let echo = take_timing_echo(header.version, &mut reply)?;
                self.m.server_time.record(echo.server_time());
                Ok((header.kind, reply))
            }),
            ConnectionMode::Multiplexed => {
                let mut backoff = self.cfg.retry_backoff;
                let mut attempt = 0;
                loop {
                    match self.mux_call_once(kind, payload) {
                        Ok(reply) => return Ok(reply),
                        Err(FrameError::Io(_)) if attempt < self.cfg.max_retries => {
                            self.m.transport_errors.inc();
                            self.m.retries.inc();
                            attempt += 1;
                            std::thread::sleep(backoff);
                            backoff = backoff.saturating_mul(2);
                        }
                        Err(e) => {
                            if matches!(e, FrameError::Io(_)) {
                                self.m.transport_errors.inc();
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Health probe: graph version plus per-shard healths. Successful
    /// probes refresh the client's cached view.
    pub fn probe(&self) -> Result<crate::codec::HealthReply, FrameError> {
        let (kind, payload) = self.roundtrip(FrameKind::HealthProbe, &[])?;
        expect_kind(kind, FrameKind::HealthReply, "health")?;
        let reply = decode_health_reply(&payload)?;
        self.last_version
            .store(reply.graph_version, Ordering::Release);
        *self.lock_healths() = reply.healths.clone();
        Ok(reply)
    }

    fn lock_healths(&self) -> MutexGuard<'_, Vec<ShardHealth>> {
        lock(&self.last_healths)
    }

    /// Client-side degraded fallback for one request, used when transport
    /// to the server is gone: same shape the in-process router produces
    /// for a dead shard, with the shard predicted by the shared
    /// [`route_for`] hash.
    fn transport_degraded(&self, req: &SampleRequest) -> SampleResponse {
        self.m.degraded_fallbacks.inc();
        let (neighbors, sources) = match req.on_degraded {
            DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
            DegradedPolicy::SelfLoop => (
                vec![req.vertex; req.fanout],
                vec![SlotSource::SelfLoop; req.fanout],
            ),
        };
        SampleResponse {
            neighbors,
            sources,
            degraded: true,
            shard: route_for(req.vertex, self.num_shards.max(1)),
        }
    }

    /// Pipelined exchange of pre-seeded sample chunks: write every chunk
    /// frame, then read the replies and re-stitch them into request order
    /// by correlation id (an event-loop server with workers may answer
    /// out of order).
    fn pipelined_sample(
        &self,
        chunks: &[&[(SampleRequest, u64)]],
    ) -> Result<Vec<SampleResponse>, FrameError> {
        let deadline_ms = self.deadline_ms();
        let encoded: Vec<Vec<u8>> = chunks
            .iter()
            .map(|chunk| {
                encode_sample_batch(&SampleBatch {
                    deadline_ms,
                    ctx: current_trace_context(),
                    requests: chunk.to_vec(),
                })
            })
            .collect();
        match self.cfg.mode {
            ConnectionMode::Pooled => self.with_retries(|stream| {
                let ids: Vec<u64> = chunks.iter().map(|_| self.next_req_id()).collect();
                for (payload, &id) in encoded.iter().zip(&ids) {
                    write_frame_v2(stream, FrameKind::SampleBatch, id, payload)?;
                }
                stream.flush()?;
                let mut by_id: HashMap<u64, (FrameKind, Vec<u8>)> =
                    HashMap::with_capacity(chunks.len());
                for _ in chunks {
                    let (header, mut payload) = read_frame_ex(stream)?;
                    let echo = take_timing_echo(header.version, &mut payload)?;
                    self.m.server_time.record(echo.server_time());
                    by_id.insert(header.req_id, (header.kind, payload));
                }
                stitch_sample_replies(chunks, &ids, |id| by_id.remove(&id))
            }),
            ConnectionMode::Multiplexed => {
                let mut backoff = self.cfg.retry_backoff;
                let mut attempt = 0;
                loop {
                    match self.mux_pipelined_once(chunks, &encoded) {
                        Ok(out) => return Ok(out),
                        Err(FrameError::Io(_)) if attempt < self.cfg.max_retries => {
                            self.m.transport_errors.inc();
                            self.m.retries.inc();
                            attempt += 1;
                            std::thread::sleep(backoff);
                            backoff = backoff.saturating_mul(2);
                        }
                        Err(e) => {
                            if matches!(e, FrameError::Io(_)) {
                                self.m.transport_errors.inc();
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// One multiplexed pipelined attempt: submit every chunk on one
    /// channel (all frames in flight at once), then collect the replies.
    fn mux_pipelined_once(
        &self,
        chunks: &[&[(SampleRequest, u64)]],
        encoded: &[Vec<u8>],
    ) -> Result<Vec<SampleResponse>, FrameError> {
        let channel = self.mux_channel()?;
        let started = Instant::now();
        let mut waiters = Vec::with_capacity(chunks.len());
        for payload in encoded {
            let req_id = self.next_req_id();
            let rx = channel.submit(
                req_id,
                FrameKind::SampleBatch,
                payload,
                self.cfg.max_in_flight,
            )?;
            waiters.push((req_id, rx));
        }
        let mut by_id: HashMap<u64, (FrameKind, Vec<u8>)> = HashMap::with_capacity(waiters.len());
        for (req_id, rx) in &waiters {
            let (kind, mut payload) = self.mux_await(&channel, *req_id, rx)?;
            let echo = take_timing_echo(PROTOCOL_V2, &mut payload)?;
            self.m.server_time.record(echo.server_time());
            by_id.insert(*req_id, (kind, payload));
        }
        self.m.rtt.record(started.elapsed());
        let ids: Vec<u64> = waiters.iter().map(|(id, _)| *id).collect();
        stitch_sample_replies(chunks, &ids, |id| by_id.remove(&id))
    }

    /// Sample a batch whose per-request seeds were already drawn. This is
    /// the building block fleet routing needs: the fleet client draws one
    /// seed per request in frontier order (the determinism contract), then
    /// partitions the *seeded* requests by owning server — each server sees
    /// only its slice, with the seeds the single-server run would have used.
    ///
    /// `Err` means transport to this server is gone past the retry budget
    /// (the caller decides whether to degrade or try a replica); `Ok`
    /// responses are positionally parallel to `seeded`.
    pub fn sample_with_seeds(
        &self,
        seeded: &[(SampleRequest, u64)],
    ) -> Result<Vec<SampleResponse>, Error> {
        if seeded.is_empty() {
            return Ok(Vec::new());
        }
        self.m.requests.add(seeded.len() as u64);
        let chunks: Vec<&[(SampleRequest, u64)]> = seeded.chunks(self.cfg.max_batch).collect();
        self.pipelined_sample(&chunks).map_err(fleet_err)
    }

    // ------------------------------------------------------------------
    // Fleet plane: typed exchanges for the frames the fleet crate drives.
    // ------------------------------------------------------------------

    /// Fetch the server's fleet partition map (epoch + opaque bytes).
    pub fn fetch_map(&self) -> Result<MapReply, Error> {
        let (kind, payload) = self
            .roundtrip(FrameKind::MapFetch, &[])
            .map_err(fleet_err)?;
        expect_kind(kind, FrameKind::MapReply, "map").map_err(fleet_err)?;
        decode_map_reply(&payload).map_err(|e| fleet_err(e.into()))
    }

    /// Install a partition map on the server; returns the epoch in effect.
    pub fn install_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        let payload = encode_map_install(epoch, bytes);
        let (kind, reply) = self
            .roundtrip(FrameKind::MapInstall, &payload)
            .map_err(fleet_err)?;
        match kind {
            FrameKind::MapInstallReply => platod2gl_server::wire::Reader::new(&reply)
                .u64()
                .map_err(|e| fleet_err(e.into())),
            FrameKind::ErrorReply => {
                let err = decode_error_reply(&reply).map_err(|e| fleet_err(e.into()))?;
                Err(Error::invalid_config(err.message))
            }
            kind => Err(fleet_err(FrameError::UnexpectedReply {
                expected: "map install",
                got: kind,
            })),
        }
    }

    /// Apply an update batch over the replication channel (the receiver
    /// must not re-forward — see
    /// [`FrameKind::ReplicaBatch`](crate::codec::FrameKind::ReplicaBatch)).
    pub fn replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let batch = UpdateBatch {
            deadline_ms: self.deadline_ms(),
            // A fleet owner relaying to replicas runs inside its own
            // server-side root span; the ambient context carries the
            // client's trace across the second hop.
            ctx: current_trace_context(),
            ops: ops.to_vec(),
        };
        let payload = encode_update_batch(&batch);
        self.exchange_update(FrameKind::ReplicaBatch, &payload)
    }

    /// Apply a transaction over the replication channel, under its
    /// original id (the replica's dedupe ledger absorbs retries).
    pub fn replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        let payload = encode_txn_apply(&TxnApply {
            txn_id: txn.id(),
            ctx: current_trace_context(),
            ops: txn.ops().to_vec(),
        });
        self.exchange_txn(FrameKind::ReplicaTxn, &payload)
    }

    /// Pull every recent span on this server belonging to `trace_id` —
    /// the per-member read the fleet admin plane stitches cross-process
    /// trace trees from.
    pub fn export_spans(&self, trace_id: u64) -> Result<Vec<ExportedSpan>, Error> {
        let (kind, payload) = self
            .roundtrip(FrameKind::SpanExport, &encode_span_export(trace_id))
            .map_err(fleet_err)?;
        expect_kind(kind, FrameKind::SpanExportReply, "span export").map_err(fleet_err)?;
        decode_span_export_reply(&payload).map_err(|e| fleet_err(e.into()))
    }

    /// Pull the server's full registry export: metric values with complete
    /// histogram buckets (so fleet-wide merging is exact) plus the slow-op
    /// log.
    pub fn export_obs(&self) -> Result<RegistryExport, Error> {
        let (kind, payload) = self
            .roundtrip(FrameKind::ObsExport, &[])
            .map_err(fleet_err)?;
        expect_kind(kind, FrameKind::ObsExportReply, "obs export").map_err(fleet_err)?;
        decode_obs_export_reply(&payload).map_err(|e| fleet_err(e.into()))
    }

    /// Fetch one resumable chunk of a partition export.
    pub fn fetch_partition_chunk(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: u32,
    ) -> Result<PartitionChunk, Error> {
        let payload = encode_partition_fetch(&PartitionFetch {
            partition,
            num_partitions,
            cursor,
            max_edges,
        });
        let (kind, reply) = self
            .roundtrip(FrameKind::PartitionFetch, &payload)
            .map_err(fleet_err)?;
        let chunk = match kind {
            FrameKind::PartitionChunkReply => {
                decode_partition_chunk(&reply).map_err(|e| fleet_err(e.into()))?
            }
            FrameKind::ErrorReply => {
                let err = decode_error_reply(&reply).map_err(|e| fleet_err(e.into()))?;
                return Err(Error::invalid_config(err.message));
            }
            kind => {
                return Err(fleet_err(FrameError::UnexpectedReply {
                    expected: "partition chunk",
                    got: kind,
                }))
            }
        };
        Ok(PartitionChunk {
            snapshot: chunk.snapshot,
            cursor: chunk.cursor,
            done: chunk.done,
            edges: chunk.edges,
        })
    }

    /// Arm the server's migration journal for one partition.
    pub fn migrate_begin(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.migrate_ctl(migrate_action::BEGIN, partition, num_partitions)
    }

    /// Disarm it; returns the total ops the journal buffered.
    pub fn migrate_end(&self, partition: u32) -> Result<u64, Error> {
        self.migrate_ctl(migrate_action::END, partition, 0)
    }

    fn migrate_ctl(&self, action: u8, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        let payload = encode_migrate_ctl(action, partition, num_partitions);
        let (kind, reply) = self
            .roundtrip(FrameKind::MigrateCtl, &payload)
            .map_err(fleet_err)?;
        match kind {
            FrameKind::MigrateCtlReply => {
                decode_migrate_ctl_reply(&reply).map_err(|e| fleet_err(e.into()))
            }
            FrameKind::ErrorReply => {
                let err = decode_error_reply(&reply).map_err(|e| fleet_err(e.into()))?;
                Err(Error::invalid_config(err.message))
            }
            kind => Err(fleet_err(FrameError::UnexpectedReply {
                expected: "migrate ctl",
                got: kind,
            })),
        }
    }

    /// Fetch journaled migration ops from `from_seq` on.
    pub fn fetch_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        let payload = encode_tail_fetch(partition, from_seq);
        let (kind, reply) = self
            .roundtrip(FrameKind::TailFetch, &payload)
            .map_err(fleet_err)?;
        match kind {
            FrameKind::TailReply => {
                let tail = decode_tail_reply(&reply).map_err(|e| fleet_err(e.into()))?;
                Ok((tail.ops, tail.next_seq))
            }
            FrameKind::ErrorReply => {
                let err = decode_error_reply(&reply).map_err(|e| fleet_err(e.into()))?;
                Err(Error::Corrupt { what: err.message })
            }
            kind => Err(fleet_err(FrameError::UnexpectedReply {
                expected: "tail",
                got: kind,
            })),
        }
    }

    /// Per-partition resident key counts.
    pub fn partition_stats(&self, num_partitions: u32) -> Result<Vec<u64>, Error> {
        let payload = encode_partition_stats(num_partitions);
        let (kind, reply) = self
            .roundtrip(FrameKind::PartitionStats, &payload)
            .map_err(fleet_err)?;
        expect_kind(kind, FrameKind::PartitionStatsReply, "partition stats").map_err(fleet_err)?;
        decode_partition_stats_reply(&reply).map_err(|e| fleet_err(e.into()))
    }

    /// Shared body of the update-batch exchange (first-hand and replica
    /// channels differ only in the request frame kind).
    fn exchange_update(&self, kind: FrameKind, payload: &[u8]) -> Result<BatchReport, Error> {
        let outcome = self
            .roundtrip(kind, payload)
            .and_then(|(kind, reply)| match kind {
                FrameKind::UpdateReply => Ok(Ok(decode_update_reply(&reply)?)),
                FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                kind => Err(FrameError::UnexpectedReply {
                    expected: "update",
                    got: kind,
                }),
            });
        match outcome {
            Ok(Ok(reply)) => Ok(BatchReport {
                applied_ops: reply.applied_ops as usize,
                queued_ops: reply.queued_ops as usize,
            }),
            Ok(Err(err)) if err.code == error_code::SHARD_PANICKED => Err(Error::ShardPanicked {
                shard: err.shard as usize,
                detail: err.message,
            }),
            Ok(Err(err)) => Err(Error::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                err.message,
            ))),
            Err(e) => Err(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            ))),
        }
    }

    /// Shared body of the txn exchange (first-hand and replica channels).
    fn exchange_txn(&self, kind: FrameKind, payload: &[u8]) -> Result<TxnReceipt, TxnError> {
        let outcome = self.roundtrip(kind, payload).and_then(|(kind, reply)| {
            expect_kind(kind, FrameKind::TxnReply, "txn")?;
            Ok(decode_txn_reply(&reply)?)
        });
        match outcome {
            Ok(TxnReply::Committed(receipt)) => Ok(receipt),
            Ok(TxnReply::Rejected { txn_id, violations }) => {
                Err(TxnError::Rejected { txn_id, violations })
            }
            Ok(TxnReply::StoreError {
                shard,
                code,
                message,
            }) if code == error_code::SHARD_PANICKED && message.contains("panicked") => {
                Err(TxnError::Store(Error::ShardPanicked {
                    shard: shard as usize,
                    detail: message,
                }))
            }
            Ok(TxnReply::StoreError { shard, .. }) => {
                Err(TxnError::Store(Error::ShardUnavailable {
                    shard: shard as usize,
                }))
            }
            Err(e) => Err(TxnError::Store(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            )))),
        }
    }
}

impl Drop for RemoteCluster {
    fn drop(&mut self) {
        // Mux reader threads are joined here; pooled streams just drop.
        for channel in lock(&self.mux).drain(..) {
            channel.shutdown();
        }
    }
}

/// Re-stitch correlated sample replies into request order and validate
/// positional completeness per chunk.
fn stitch_sample_replies(
    chunks: &[&[(SampleRequest, u64)]],
    ids: &[u64],
    mut take: impl FnMut(u64) -> Option<(FrameKind, Vec<u8>)>,
) -> Result<Vec<SampleResponse>, FrameError> {
    let mut out = Vec::with_capacity(chunks.iter().map(|c| c.len()).sum());
    for (chunk, &id) in chunks.iter().zip(ids) {
        let (kind, payload) = take(id).ok_or(FrameError::UnexpectedReply {
            expected: "correlated sample",
            got: FrameKind::SampleReply,
        })?;
        expect_kind(kind, FrameKind::SampleReply, "sample")?;
        let responses = decode_sample_reply(&payload)?;
        if responses.len() != chunk.len() {
            return Err(FrameError::UnexpectedReply {
                expected: "positionally complete sample",
                got: kind,
            });
        }
        out.extend(responses);
    }
    Ok(out)
}

/// Transport/protocol failure → the service-level error the fleet plane
/// reports.
fn fleet_err(e: FrameError) -> Error {
    Error::Io(io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))
}

fn expect_kind(got: FrameKind, want: FrameKind, what: &'static str) -> Result<(), FrameError> {
    if got == want {
        return Ok(());
    }
    Err(FrameError::UnexpectedReply {
        expected: what,
        got,
    })
}

impl GraphService for RemoteCluster {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        self.sample_many(std::slice::from_ref(req), rng)
            .pop()
            .expect("one response per request")
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        // Seeds are drawn up front, in request order, exactly one per
        // request — the determinism contract — and *before* any I/O, so a
        // retry re-sends the same seeds instead of redrawing.
        let seeded: Vec<(SampleRequest, u64)> = reqs.iter().map(|r| (*r, rng.next_u64())).collect();
        match self.sample_with_seeds(&seeded) {
            Ok(responses) => responses,
            // The server is unreachable (or answered garbage) past the
            // retry budget: degrade every request per its own policy, the
            // same contract the in-process router honors for dead shards.
            // The trainer sees degraded batches, never a client error.
            Err(_) => reqs.iter().map(|r| self.transport_degraded(r)).collect(),
        }
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let batch = UpdateBatch {
            deadline_ms: self.deadline_ms(),
            ctx: current_trace_context(),
            ops: ops.to_vec(),
        };
        self.exchange_update(FrameKind::UpdateBatch, &encode_update_batch(&batch))
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        // Encoded once; every retry re-sends the identical frame — same
        // txn id — so the server's idempotence ledger answers a replayed
        // commit from the cached receipt instead of applying twice.
        let payload = encode_txn_apply(&TxnApply {
            txn_id: txn.id(),
            ctx: current_trace_context(),
            ops: txn.ops().to_vec(),
        });
        self.exchange_txn(FrameKind::TxnApply, &payload)
    }

    fn graph_version(&self) -> u64 {
        // A failed probe falls back to the last observed version: the
        // neighbor cache keeps serving bounded-stale entries through a
        // server blip instead of thrashing.
        match self.probe() {
            Ok(reply) => reply.graph_version,
            Err(_) => self.last_version.load(Ordering::Acquire),
        }
    }

    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        match self.probe() {
            Ok(reply) => reply.healths,
            Err(_) => self.lock_healths().clone(),
        }
    }

    fn heal(&self, shard: usize) -> usize {
        let drained = self
            .roundtrip(FrameKind::HealRequest, &encode_heal_request(shard as u32))
            .and_then(|(kind, payload)| {
                expect_kind(kind, FrameKind::HealReply, "heal")?;
                Ok(decode_heal_reply(&payload)?)
            });
        drained.unwrap_or(0) as usize
    }

    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    // Fleet hooks forward over the wire, so a RemoteCluster is a fully
    // transparent proxy for a fleet-aware server.

    fn apply_replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.replica_updates(ops)
    }

    fn apply_replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.replica_txn(txn)
    }

    fn fleet_map_bytes(&self) -> Option<(u64, Vec<u8>)> {
        let reply = self.fetch_map().ok()?;
        reply.bytes.map(|bytes| (reply.epoch, bytes))
    }

    fn install_fleet_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        self.install_map(epoch, bytes)
    }

    fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.migrate_begin(partition, num_partitions)
    }

    fn migration_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        self.fetch_tail(partition, from_seq)
    }

    fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        self.migrate_end(partition)
    }

    fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        self.fetch_partition_chunk(
            partition,
            num_partitions,
            cursor,
            max_edges.min(u32::MAX as usize) as u32,
        )
    }

    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        self.partition_stats(num_partitions)
            .unwrap_or_else(|_| vec![0; num_partitions.max(1) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphServiceServer;
    use platod2gl_server::{Cluster, ClusterConfig};

    fn counter_value(registry: &Arc<Registry>, name: &str) -> u64 {
        registry
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    fn tiny_server() -> GraphServiceServer {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        GraphServiceServer::bind("127.0.0.1:0", cluster).expect("bind")
    }

    /// A dead pooled stream (the classic server-restart residue) must be
    /// evicted and redialed without spending the retry budget: the probe
    /// succeeds with zero retries and one recorded eviction.
    #[test]
    fn dead_pooled_connection_is_evicted_without_burning_retries() {
        let server = tiny_server();
        let client =
            RemoteCluster::connect(server.local_addr(), ClientConfig::default()).expect("connect");

        // Manufacture a dead stream: connect to a throwaway listener, then
        // drop the accepted side. The client's pool now holds a connection
        // whose peer is gone — exactly what a server restart leaves.
        let graveyard = std::net::TcpListener::bind("127.0.0.1:0").expect("bind graveyard");
        let dead = TcpStream::connect(graveyard.local_addr().expect("addr")).expect("dial");
        drop(graveyard.accept().expect("accept").0);
        drop(graveyard);
        dead.set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        client.inject_pooled(dead);

        let retries_before = counter_value(client.registry(), "rpc.client.retries");
        let health = client.probe().expect("probe rides out the dead stream");
        assert_eq!(health.healths.len(), 2);
        assert_eq!(
            counter_value(client.registry(), "rpc.client.retries"),
            retries_before,
            "eviction must not count as a retry"
        );
        assert_eq!(
            counter_value(client.registry(), "rpc.client.pool_evictions"),
            1
        );
        server.shutdown();
    }

    /// A pooled stream parked past `idle_timeout` is reaped at checkout —
    /// counted in `rpc.client.pool_evictions` — instead of being handed to
    /// a request. The stream here is alive but points at a black-hole
    /// listener that will never answer: only the reap saves the probe from
    /// stalling on it.
    #[test]
    fn idle_pooled_connection_is_reaped_at_checkout() {
        let server = tiny_server();
        let cfg = ClientConfig::builder()
            .idle_timeout(Duration::from_millis(20))
            .build()
            .expect("valid");
        let client = RemoteCluster::connect(server.local_addr(), cfg).expect("connect");
        // Drop the connect-probe's pooled stream so the count below is
        // exactly the injected stream's reap.
        client.lock_pool().clear();

        // A live-but-stale stream: the black-hole listener accepts and
        // holds the connection open without ever serving the protocol.
        let black_hole = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let stale = TcpStream::connect(black_hole.local_addr().expect("addr")).expect("dial");
        let _held = black_hole.accept().expect("accept").0;
        client.inject_pooled(stale);

        std::thread::sleep(Duration::from_millis(40));
        let evictions_before = counter_value(client.registry(), "rpc.client.pool_evictions");
        client.probe().expect("probe rides on a fresh dial");
        assert_eq!(
            counter_value(client.registry(), "rpc.client.pool_evictions"),
            evictions_before + 1,
            "the stale stream must be reaped, not used"
        );
        server.shutdown();
    }

    #[test]
    fn client_config_builder_validates() {
        let cfg = ClientConfig::builder()
            .mode(ConnectionMode::Multiplexed)
            .mux_connections(3)
            .max_in_flight(64)
            .build()
            .expect("valid");
        assert_eq!(cfg.mode, ConnectionMode::Multiplexed);
        assert_eq!(cfg.mux_connections, 3);
        assert!(ClientConfig::builder().max_batch(0).build().is_err());
        assert!(ClientConfig::builder().mux_connections(0).build().is_err());
        assert!(ClientConfig::builder()
            .idle_timeout(Duration::ZERO)
            .build()
            .is_err());
    }

    /// The multiplexed mode serves the full GraphService surface over a
    /// couple of shared sockets.
    #[test]
    fn multiplexed_mode_round_trips() {
        let server = tiny_server();
        let cfg = ClientConfig::builder()
            .mode(ConnectionMode::Multiplexed)
            .mux_connections(2)
            .build()
            .expect("valid");
        let client = RemoteCluster::connect(server.local_addr(), cfg).expect("connect");
        assert_eq!(client.num_shards(), 2);
        let health = client.probe().expect("probe over mux");
        assert_eq!(health.healths.len(), 2);
        server.shutdown();
    }
}
