//! The remote graph-service client.
//!
//! [`RemoteCluster`] speaks the frame protocol to a
//! [`GraphServiceServer`](crate::GraphServiceServer) and implements
//! [`GraphService`] — the same surface as the in-process `Cluster` — so
//! `KHopSampler` and `TrainingPipeline` run against a remote graph server
//! unmodified.
//!
//! ## Connection pool and pipelining
//!
//! Connections are pooled: each call checks a stream out, runs its round
//! trip(s), and checks it back in on success (a failed stream is dropped,
//! never re-pooled). Concurrent callers — the pipeline's prefetch workers —
//! each get their own stream. [`RemoteCluster::sample_many`] coalesces a
//! frontier into chunks of [`RemoteClusterConfig::max_batch`] requests and
//! *pipelines* them: all chunk frames are written before any reply is
//! read, so a hub-heavy frontier costs one round trip of latency, not one
//! per chunk.
//!
//! ## Failure mapping
//!
//! Transport failures retry with exponential backoff
//! ([`RemoteClusterConfig::max_retries`], [`RemoteClusterConfig::retry_backoff`])
//! on a fresh connection. Sampling is safe to retry because the
//! per-request RNG seeds are drawn *before* any I/O; update batches are
//! safe because every op kind is idempotent. When the budget is exhausted,
//! the sampling path does **not** error: each affected request degrades
//! according to its own [`DegradedPolicy`] — exactly what the in-process
//! router does for a dead shard — so a trainer rides out a server restart
//! with degraded batches instead of a crash. Update batches, whose loss
//! would silently drop writes, surface `Error::Io` after the last retry.

use crate::codec::{
    decode_error_reply, decode_heal_reply, decode_health_reply, decode_map_reply,
    decode_migrate_ctl_reply, decode_partition_chunk, decode_partition_stats_reply,
    decode_sample_reply, decode_tail_reply, decode_txn_reply, decode_update_reply,
    encode_heal_request, encode_map_install, encode_migrate_ctl, encode_partition_fetch,
    encode_partition_stats, encode_sample_batch, encode_tail_fetch, encode_txn_apply,
    encode_update_batch, error_code, migrate_action, write_frame, FrameError, FrameKind, MapReply,
    PartitionFetch, SampleBatch, TxnApply, TxnReply, UpdateBatch,
};
use platod2gl_graph::{Error, GraphTxn, ShardHealth, TxnError, TxnReceipt, UpdateOp};
use platod2gl_obs::{Counter, Histogram, Registry};
use platod2gl_server::{
    route_for, BatchReport, DegradedPolicy, GraphService, PartitionChunk, SampleRequest,
    SampleResponse, SlotSource,
};
use rand::RngCore;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client shape: timeouts, retry budget, pool and coalescing sizes.
#[derive(Clone, Copy, Debug)]
pub struct RemoteClusterConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-round-trip socket timeout; also shipped to the server as the
    /// batch's `deadline_ms` budget.
    pub request_timeout: Duration,
    /// Transport retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Idle connections kept in the pool (extras are dropped on check-in).
    pub pool_size: usize,
    /// Sample requests per pipelined frame.
    pub max_batch: usize,
}

impl Default for RemoteClusterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(2),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            pool_size: 4,
            max_batch: 256,
        }
    }
}

impl RemoteClusterConfig {
    /// Per-round-trip socket timeout (and server-side deadline budget).
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.request_timeout = t;
        self
    }

    /// Transport retries after the first attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Backoff before the first retry; doubles per attempt.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.retry_backoff = d;
        self
    }

    /// Sample requests per pipelined frame.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }
}

struct ClientMetrics {
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    transport_errors: Arc<Counter>,
    degraded_fallbacks: Arc<Counter>,
    reconnects: Arc<Counter>,
    pool_evictions: Arc<Counter>,
    rtt: Arc<Histogram>,
}

impl ClientMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        Self {
            requests: registry.counter("rpc.client.requests"),
            retries: registry.counter("rpc.client.retries"),
            transport_errors: registry.counter("rpc.client.transport_errors"),
            degraded_fallbacks: registry.counter("rpc.client.degraded_fallbacks"),
            reconnects: registry.counter("rpc.client.reconnects"),
            pool_evictions: registry.counter("rpc.client.pool_evictions"),
            rtt: registry.histogram("rpc.client.rtt_ns"),
        }
    }
}

/// A remote graph service reached over TCP, usable anywhere a `Cluster`
/// is (it implements [`GraphService`]).
pub struct RemoteCluster {
    addr: SocketAddr,
    cfg: RemoteClusterConfig,
    registry: Arc<Registry>,
    pool: Mutex<Vec<TcpStream>>,
    num_shards: usize,
    last_version: AtomicU64,
    last_healths: Mutex<Vec<ShardHealth>>,
    m: ClientMetrics,
}

impl RemoteCluster {
    /// Connect to a graph server and learn its topology (shard count,
    /// graph version) via an initial health probe. The client owns its own
    /// registry: client-side `rpc.client.*` and `pipeline.*` telemetry
    /// land here, while server-side spans/slow-ops stay in the server's.
    pub fn connect(addr: impl ToSocketAddrs, cfg: RemoteClusterConfig) -> Result<Self, Error> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let registry = Arc::new(Registry::new());
        let m = ClientMetrics::new(&registry);
        let client = Self {
            addr,
            cfg,
            registry,
            pool: Mutex::new(Vec::new()),
            num_shards: 0,
            last_version: AtomicU64::new(0),
            last_healths: Mutex::new(Vec::new()),
            m,
        };
        let health = client.probe().map_err(|e| {
            Error::Io(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                e.to_string(),
            ))
        })?;
        Ok(Self {
            num_shards: health.healths.len(),
            ..client
        })
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true)?;
        self.m.reconnects.inc();
        Ok(stream)
    }

    /// Check a stream out of the pool (the flag says it was pooled) or
    /// dial a fresh one.
    fn checkout(&self) -> io::Result<(TcpStream, bool)> {
        let pooled = self.lock_pool().pop();
        match pooled {
            Some(stream) => Ok((stream, true)),
            None => self.dial().map(|stream| (stream, false)),
        }
    }

    /// Park a dead stream in the pool — test hook for the eviction path
    /// (a server restart leaves exactly this: pooled streams whose peer is
    /// gone).
    #[cfg(test)]
    fn inject_pooled(&self, stream: TcpStream) {
        self.lock_pool().push(stream);
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.lock_pool();
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn deadline_ms(&self) -> u32 {
        self.cfg
            .request_timeout
            .as_millis()
            .min(u128::from(u32::MAX)) as u32
    }

    /// One request/reply exchange with retry + backoff. The closure runs
    /// the whole exchange on a checked-out stream; any [`FrameError::Io`]
    /// drops the stream, sleeps the (doubling) backoff, and retries on a
    /// fresh connection. Protocol-level errors are not retried — a peer
    /// speaking a different protocol will not improve on attempt two.
    /// Stale pooled connections (the server restarted since check-in) are
    /// a special case: the dead stream is evicted and the exchange redialed
    /// immediately, **without** spending a retry or sleeping a backoff —
    /// otherwise one restart burns the whole retry budget on streams that
    /// were doomed before the request existed. The eviction loop is bounded
    /// by the pool size: failed streams are never re-pooled, so each
    /// eviction shrinks the pool until checkout dials fresh.
    fn with_retries<T>(
        &self,
        mut exchange: impl FnMut(&mut TcpStream) -> Result<T, FrameError>,
    ) -> Result<T, FrameError> {
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0;
        loop {
            let (outcome, pooled) = match self.checkout() {
                Ok((mut s, pooled)) => {
                    let run: Result<T, FrameError> = (|| {
                        let started = Instant::now();
                        let out = exchange(&mut s)?;
                        self.m.rtt.record(started.elapsed());
                        Ok(out)
                    })();
                    if run.is_ok() {
                        self.checkin(s);
                    }
                    (run, pooled)
                }
                Err(e) => (Err(FrameError::Io(e)), false),
            };
            match outcome {
                Ok(out) => return Ok(out),
                Err(FrameError::Io(_)) if pooled => {
                    self.m.transport_errors.inc();
                    self.m.pool_evictions.inc();
                }
                Err(FrameError::Io(e)) if attempt < self.cfg.max_retries => {
                    self.m.transport_errors.inc();
                    self.m.retries.inc();
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                    let _ = e;
                }
                Err(e) => {
                    if matches!(e, FrameError::Io(_)) {
                        self.m.transport_errors.inc();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Health probe: graph version plus per-shard healths. Successful
    /// probes refresh the client's cached view.
    pub fn probe(&self) -> Result<crate::codec::HealthReply, FrameError> {
        let reply = self.with_retries(|stream| {
            write_frame(stream, FrameKind::HealthProbe, &[])?;
            stream.flush()?;
            let (kind, payload) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::HealthReply, "health")?;
            Ok(decode_health_reply(&payload)?)
        })?;
        self.last_version
            .store(reply.graph_version, Ordering::Release);
        *self.lock_healths() = reply.healths.clone();
        Ok(reply)
    }

    fn lock_healths(&self) -> std::sync::MutexGuard<'_, Vec<ShardHealth>> {
        self.last_healths
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Client-side degraded fallback for one request, used when transport
    /// to the server is gone: same shape the in-process router produces
    /// for a dead shard, with the shard predicted by the shared
    /// [`route_for`] hash.
    fn transport_degraded(&self, req: &SampleRequest) -> SampleResponse {
        self.m.degraded_fallbacks.inc();
        let (neighbors, sources) = match req.on_degraded {
            DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
            DegradedPolicy::SelfLoop => (
                vec![req.vertex; req.fanout],
                vec![SlotSource::SelfLoop; req.fanout],
            ),
        };
        SampleResponse {
            neighbors,
            sources,
            degraded: true,
            shard: route_for(req.vertex, self.num_shards.max(1)),
        }
    }

    /// Pipelined exchange of pre-seeded sample chunks: write every chunk
    /// frame, flush once, then read the replies in order.
    fn pipelined_sample(
        &self,
        chunks: &[&[(SampleRequest, u64)]],
    ) -> Result<Vec<SampleResponse>, FrameError> {
        let deadline_ms = self.deadline_ms();
        self.with_retries(|stream| {
            for chunk in chunks {
                let batch = SampleBatch {
                    deadline_ms,
                    requests: chunk.to_vec(),
                };
                write_frame(stream, FrameKind::SampleBatch, &encode_sample_batch(&batch))?;
            }
            stream.flush()?;
            let mut out = Vec::with_capacity(chunks.iter().map(|c| c.len()).sum());
            for chunk in chunks {
                let (kind, payload) = crate::codec::read_frame(stream)?;
                expect_kind(kind, FrameKind::SampleReply, "sample")?;
                let responses = decode_sample_reply(&payload)?;
                if responses.len() != chunk.len() {
                    return Err(FrameError::UnexpectedReply {
                        expected: "positionally complete sample",
                        got: kind,
                    });
                }
                out.extend(responses);
            }
            Ok(out)
        })
    }

    /// Sample a batch whose per-request seeds were already drawn. This is
    /// the building block fleet routing needs: the fleet client draws one
    /// seed per request in frontier order (the determinism contract), then
    /// partitions the *seeded* requests by owning server — each server sees
    /// only its slice, with the seeds the single-server run would have used.
    ///
    /// `Err` means transport to this server is gone past the retry budget
    /// (the caller decides whether to degrade or try a replica); `Ok`
    /// responses are positionally parallel to `seeded`.
    pub fn sample_with_seeds(
        &self,
        seeded: &[(SampleRequest, u64)],
    ) -> Result<Vec<SampleResponse>, Error> {
        if seeded.is_empty() {
            return Ok(Vec::new());
        }
        self.m.requests.add(seeded.len() as u64);
        let chunks: Vec<&[(SampleRequest, u64)]> = seeded.chunks(self.cfg.max_batch).collect();
        self.pipelined_sample(&chunks).map_err(fleet_err)
    }

    // ------------------------------------------------------------------
    // Fleet plane: typed exchanges for the frames the fleet crate drives.
    // ------------------------------------------------------------------

    /// Fetch the server's fleet partition map (epoch + opaque bytes).
    pub fn fetch_map(&self) -> Result<MapReply, Error> {
        self.with_retries(|stream| {
            write_frame(stream, FrameKind::MapFetch, &[])?;
            stream.flush()?;
            let (kind, payload) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::MapReply, "map")?;
            Ok(decode_map_reply(&payload)?)
        })
        .map_err(fleet_err)
    }

    /// Install a partition map on the server; returns the epoch in effect.
    pub fn install_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        let payload = encode_map_install(epoch, bytes);
        self.with_retries(|stream| {
            write_frame(stream, FrameKind::MapInstall, &payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            match kind {
                FrameKind::MapInstallReply => {
                    Ok(Ok(platod2gl_server::wire::Reader::new(&reply).u64()?))
                }
                FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                kind => Err(FrameError::UnexpectedReply {
                    expected: "map install",
                    got: kind,
                }),
            }
        })
        .map_err(fleet_err)?
        .map_err(|err| Error::invalid_config(err.message))
    }

    /// Apply an update batch over the replication channel (the receiver
    /// must not re-forward — see
    /// [`FrameKind::ReplicaBatch`](crate::codec::FrameKind::ReplicaBatch)).
    pub fn replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let batch = UpdateBatch {
            deadline_ms: self.deadline_ms(),
            trace_id: None,
            ops: ops.to_vec(),
        };
        let payload = encode_update_batch(&batch);
        self.exchange_update(FrameKind::ReplicaBatch, &payload)
    }

    /// Apply a transaction over the replication channel, under its
    /// original id (the replica's dedupe ledger absorbs retries).
    pub fn replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        let payload = encode_txn_apply(&TxnApply {
            txn_id: txn.id(),
            ops: txn.ops().to_vec(),
        });
        self.exchange_txn(FrameKind::ReplicaTxn, &payload)
    }

    /// Fetch one resumable chunk of a partition export.
    pub fn fetch_partition_chunk(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: u32,
    ) -> Result<PartitionChunk, Error> {
        let payload = encode_partition_fetch(&PartitionFetch {
            partition,
            num_partitions,
            cursor,
            max_edges,
        });
        let chunk = self
            .with_retries(|stream| {
                write_frame(stream, FrameKind::PartitionFetch, &payload)?;
                stream.flush()?;
                let (kind, reply) = crate::codec::read_frame(stream)?;
                match kind {
                    FrameKind::PartitionChunkReply => Ok(Ok(decode_partition_chunk(&reply)?)),
                    FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                    kind => Err(FrameError::UnexpectedReply {
                        expected: "partition chunk",
                        got: kind,
                    }),
                }
            })
            .map_err(fleet_err)?
            .map_err(|err| Error::invalid_config(err.message))?;
        Ok(PartitionChunk {
            snapshot: chunk.snapshot,
            cursor: chunk.cursor,
            done: chunk.done,
            edges: chunk.edges,
        })
    }

    /// Arm the server's migration journal for one partition.
    pub fn migrate_begin(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.migrate_ctl(migrate_action::BEGIN, partition, num_partitions)
    }

    /// Disarm it; returns the total ops the journal buffered.
    pub fn migrate_end(&self, partition: u32) -> Result<u64, Error> {
        self.migrate_ctl(migrate_action::END, partition, 0)
    }

    fn migrate_ctl(&self, action: u8, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        let payload = encode_migrate_ctl(action, partition, num_partitions);
        self.with_retries(|stream| {
            write_frame(stream, FrameKind::MigrateCtl, &payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            match kind {
                FrameKind::MigrateCtlReply => Ok(Ok(decode_migrate_ctl_reply(&reply)?)),
                FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                kind => Err(FrameError::UnexpectedReply {
                    expected: "migrate ctl",
                    got: kind,
                }),
            }
        })
        .map_err(fleet_err)?
        .map_err(|err| Error::invalid_config(err.message))
    }

    /// Fetch journaled migration ops from `from_seq` on.
    pub fn fetch_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        let payload = encode_tail_fetch(partition, from_seq);
        let reply = self
            .with_retries(|stream| {
                write_frame(stream, FrameKind::TailFetch, &payload)?;
                stream.flush()?;
                let (kind, reply) = crate::codec::read_frame(stream)?;
                match kind {
                    FrameKind::TailReply => Ok(Ok(decode_tail_reply(&reply)?)),
                    FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                    kind => Err(FrameError::UnexpectedReply {
                        expected: "tail",
                        got: kind,
                    }),
                }
            })
            .map_err(fleet_err)?
            .map_err(|err| Error::Corrupt { what: err.message })?;
        Ok((reply.ops, reply.next_seq))
    }

    /// Per-partition resident key counts.
    pub fn partition_stats(&self, num_partitions: u32) -> Result<Vec<u64>, Error> {
        let payload = encode_partition_stats(num_partitions);
        self.with_retries(|stream| {
            write_frame(stream, FrameKind::PartitionStats, &payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::PartitionStatsReply, "partition stats")?;
            Ok(decode_partition_stats_reply(&reply)?)
        })
        .map_err(fleet_err)
    }

    /// Shared body of the update-batch exchange (first-hand and replica
    /// channels differ only in the request frame kind).
    fn exchange_update(&self, kind: FrameKind, payload: &[u8]) -> Result<BatchReport, Error> {
        let outcome = self.with_retries(|stream| {
            write_frame(stream, kind, payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            match kind {
                FrameKind::UpdateReply => Ok(Ok(decode_update_reply(&reply)?)),
                FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                kind => Err(FrameError::UnexpectedReply {
                    expected: "update",
                    got: kind,
                }),
            }
        });
        match outcome {
            Ok(Ok(reply)) => Ok(BatchReport {
                applied_ops: reply.applied_ops as usize,
                queued_ops: reply.queued_ops as usize,
            }),
            Ok(Err(err)) if err.code == error_code::SHARD_PANICKED => Err(Error::ShardPanicked {
                shard: err.shard as usize,
                detail: err.message,
            }),
            Ok(Err(err)) => Err(Error::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                err.message,
            ))),
            Err(e) => Err(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            ))),
        }
    }

    /// Shared body of the txn exchange (first-hand and replica channels).
    fn exchange_txn(&self, kind: FrameKind, payload: &[u8]) -> Result<TxnReceipt, TxnError> {
        let outcome = self.with_retries(|stream| {
            write_frame(stream, kind, payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::TxnReply, "txn")?;
            Ok(decode_txn_reply(&reply)?)
        });
        match outcome {
            Ok(TxnReply::Committed(receipt)) => Ok(receipt),
            Ok(TxnReply::Rejected { txn_id, violations }) => {
                Err(TxnError::Rejected { txn_id, violations })
            }
            Ok(TxnReply::StoreError {
                shard,
                code,
                message,
            }) if code == error_code::SHARD_PANICKED && message.contains("panicked") => {
                Err(TxnError::Store(Error::ShardPanicked {
                    shard: shard as usize,
                    detail: message,
                }))
            }
            Ok(TxnReply::StoreError { shard, .. }) => {
                Err(TxnError::Store(Error::ShardUnavailable {
                    shard: shard as usize,
                }))
            }
            Err(e) => Err(TxnError::Store(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            )))),
        }
    }
}

/// Transport/protocol failure → the service-level error the fleet plane
/// reports.
fn fleet_err(e: FrameError) -> Error {
    Error::Io(io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))
}

fn expect_kind(got: FrameKind, want: FrameKind, what: &'static str) -> Result<(), FrameError> {
    if got == want {
        return Ok(());
    }
    Err(FrameError::UnexpectedReply {
        expected: what,
        got,
    })
}

impl GraphService for RemoteCluster {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        self.sample_many(std::slice::from_ref(req), rng)
            .pop()
            .expect("one response per request")
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        // Seeds are drawn up front, in request order, exactly one per
        // request — the determinism contract — and *before* any I/O, so a
        // retry re-sends the same seeds instead of redrawing.
        let seeded: Vec<(SampleRequest, u64)> = reqs.iter().map(|r| (*r, rng.next_u64())).collect();
        match self.sample_with_seeds(&seeded) {
            Ok(responses) => responses,
            // The server is unreachable (or answered garbage) past the
            // retry budget: degrade every request per its own policy, the
            // same contract the in-process router honors for dead shards.
            // The trainer sees degraded batches, never a client error.
            Err(_) => reqs.iter().map(|r| self.transport_degraded(r)).collect(),
        }
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let batch = UpdateBatch {
            deadline_ms: self.deadline_ms(),
            trace_id: None,
            ops: ops.to_vec(),
        };
        self.exchange_update(FrameKind::UpdateBatch, &encode_update_batch(&batch))
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        // Encoded once; every retry re-sends the identical frame — same
        // txn id — so the server's idempotence ledger answers a replayed
        // commit from the cached receipt instead of applying twice.
        let payload = encode_txn_apply(&TxnApply {
            txn_id: txn.id(),
            ops: txn.ops().to_vec(),
        });
        self.exchange_txn(FrameKind::TxnApply, &payload)
    }

    fn graph_version(&self) -> u64 {
        // A failed probe falls back to the last observed version: the
        // neighbor cache keeps serving bounded-stale entries through a
        // server blip instead of thrashing.
        match self.probe() {
            Ok(reply) => reply.graph_version,
            Err(_) => self.last_version.load(Ordering::Acquire),
        }
    }

    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        match self.probe() {
            Ok(reply) => reply.healths,
            Err(_) => self.lock_healths().clone(),
        }
    }

    fn heal(&self, shard: usize) -> usize {
        let drained = self.with_retries(|stream| {
            write_frame(
                stream,
                FrameKind::HealRequest,
                &encode_heal_request(shard as u32),
            )?;
            stream.flush()?;
            let (kind, payload) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::HealReply, "heal")?;
            Ok(decode_heal_reply(&payload)?)
        });
        drained.unwrap_or(0) as usize
    }

    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    // Fleet hooks forward over the wire, so a RemoteCluster is a fully
    // transparent proxy for a fleet-aware server.

    fn apply_replica_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        self.replica_updates(ops)
    }

    fn apply_replica_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        self.replica_txn(txn)
    }

    fn fleet_map_bytes(&self) -> Option<(u64, Vec<u8>)> {
        let reply = self.fetch_map().ok()?;
        reply.bytes.map(|bytes| (reply.epoch, bytes))
    }

    fn install_fleet_map(&self, epoch: u64, bytes: &[u8]) -> Result<u64, Error> {
        self.install_map(epoch, bytes)
    }

    fn begin_migration(&self, partition: u32, num_partitions: u32) -> Result<u64, Error> {
        self.migrate_begin(partition, num_partitions)
    }

    fn migration_tail(&self, partition: u32, from_seq: u64) -> Result<(Vec<UpdateOp>, u64), Error> {
        self.fetch_tail(partition, from_seq)
    }

    fn end_migration(&self, partition: u32) -> Result<u64, Error> {
        self.migrate_end(partition)
    }

    fn export_partition(
        &self,
        partition: u32,
        num_partitions: u32,
        cursor: Option<(u64, u16)>,
        max_edges: usize,
    ) -> Result<PartitionChunk, Error> {
        self.fetch_partition_chunk(
            partition,
            num_partitions,
            cursor,
            max_edges.min(u32::MAX as usize) as u32,
        )
    }

    fn partition_key_counts(&self, num_partitions: u32) -> Vec<u64> {
        self.partition_stats(num_partitions)
            .unwrap_or_else(|_| vec![0; num_partitions.max(1) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphServiceServer;
    use platod2gl_server::{Cluster, ClusterConfig};

    fn counter_value(registry: &Arc<Registry>, name: &str) -> u64 {
        registry
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A dead pooled stream (the classic server-restart residue) must be
    /// evicted and redialed without spending the retry budget: the probe
    /// succeeds with zero retries and one recorded eviction.
    #[test]
    fn dead_pooled_connection_is_evicted_without_burning_retries() {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        let server = GraphServiceServer::bind("127.0.0.1:0", cluster).expect("bind");
        let client = RemoteCluster::connect(server.local_addr(), RemoteClusterConfig::default())
            .expect("connect");

        // Manufacture a dead stream: connect to a throwaway listener, then
        // drop the accepted side. The client's pool now holds a connection
        // whose peer is gone — exactly what a server restart leaves.
        let graveyard = std::net::TcpListener::bind("127.0.0.1:0").expect("bind graveyard");
        let dead = TcpStream::connect(graveyard.local_addr().expect("addr")).expect("dial");
        drop(graveyard.accept().expect("accept").0);
        drop(graveyard);
        dead.set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        client.inject_pooled(dead);

        let retries_before = counter_value(client.registry(), "rpc.client.retries");
        let health = client.probe().expect("probe rides out the dead stream");
        assert_eq!(health.healths.len(), 2);
        assert_eq!(
            counter_value(client.registry(), "rpc.client.retries"),
            retries_before,
            "eviction must not count as a retry"
        );
        assert_eq!(
            counter_value(client.registry(), "rpc.client.pool_evictions"),
            1
        );
        server.shutdown();
    }
}
