//! The remote graph-service client.
//!
//! [`RemoteCluster`] speaks the frame protocol to a
//! [`GraphServiceServer`](crate::GraphServiceServer) and implements
//! [`GraphService`] — the same surface as the in-process `Cluster` — so
//! `KHopSampler` and `TrainingPipeline` run against a remote graph server
//! unmodified.
//!
//! ## Connection pool and pipelining
//!
//! Connections are pooled: each call checks a stream out, runs its round
//! trip(s), and checks it back in on success (a failed stream is dropped,
//! never re-pooled). Concurrent callers — the pipeline's prefetch workers —
//! each get their own stream. [`RemoteCluster::sample_many`] coalesces a
//! frontier into chunks of [`RemoteClusterConfig::max_batch`] requests and
//! *pipelines* them: all chunk frames are written before any reply is
//! read, so a hub-heavy frontier costs one round trip of latency, not one
//! per chunk.
//!
//! ## Failure mapping
//!
//! Transport failures retry with exponential backoff
//! ([`RemoteClusterConfig::max_retries`], [`RemoteClusterConfig::retry_backoff`])
//! on a fresh connection. Sampling is safe to retry because the
//! per-request RNG seeds are drawn *before* any I/O; update batches are
//! safe because every op kind is idempotent. When the budget is exhausted,
//! the sampling path does **not** error: each affected request degrades
//! according to its own [`DegradedPolicy`] — exactly what the in-process
//! router does for a dead shard — so a trainer rides out a server restart
//! with degraded batches instead of a crash. Update batches, whose loss
//! would silently drop writes, surface `Error::Io` after the last retry.

use crate::codec::{
    decode_error_reply, decode_heal_reply, decode_health_reply, decode_sample_reply,
    decode_txn_reply, decode_update_reply, encode_heal_request, encode_sample_batch,
    encode_txn_apply, encode_update_batch, error_code, write_frame, FrameError, FrameKind,
    SampleBatch, TxnApply, TxnReply, UpdateBatch,
};
use platod2gl_graph::{Error, GraphTxn, ShardHealth, TxnError, TxnReceipt, UpdateOp};
use platod2gl_obs::{Counter, Histogram, Registry};
use platod2gl_server::{
    route_for, BatchReport, DegradedPolicy, GraphService, SampleRequest, SampleResponse, SlotSource,
};
use rand::RngCore;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client shape: timeouts, retry budget, pool and coalescing sizes.
#[derive(Clone, Copy, Debug)]
pub struct RemoteClusterConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-round-trip socket timeout; also shipped to the server as the
    /// batch's `deadline_ms` budget.
    pub request_timeout: Duration,
    /// Transport retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Idle connections kept in the pool (extras are dropped on check-in).
    pub pool_size: usize,
    /// Sample requests per pipelined frame.
    pub max_batch: usize,
}

impl Default for RemoteClusterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(2),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            pool_size: 4,
            max_batch: 256,
        }
    }
}

impl RemoteClusterConfig {
    /// Per-round-trip socket timeout (and server-side deadline budget).
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.request_timeout = t;
        self
    }

    /// Transport retries after the first attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Backoff before the first retry; doubles per attempt.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.retry_backoff = d;
        self
    }

    /// Sample requests per pipelined frame.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }
}

struct ClientMetrics {
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    transport_errors: Arc<Counter>,
    degraded_fallbacks: Arc<Counter>,
    reconnects: Arc<Counter>,
    rtt: Arc<Histogram>,
}

impl ClientMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        Self {
            requests: registry.counter("rpc.client.requests"),
            retries: registry.counter("rpc.client.retries"),
            transport_errors: registry.counter("rpc.client.transport_errors"),
            degraded_fallbacks: registry.counter("rpc.client.degraded_fallbacks"),
            reconnects: registry.counter("rpc.client.reconnects"),
            rtt: registry.histogram("rpc.client.rtt_ns"),
        }
    }
}

/// A remote graph service reached over TCP, usable anywhere a `Cluster`
/// is (it implements [`GraphService`]).
pub struct RemoteCluster {
    addr: SocketAddr,
    cfg: RemoteClusterConfig,
    registry: Arc<Registry>,
    pool: Mutex<Vec<TcpStream>>,
    num_shards: usize,
    last_version: AtomicU64,
    last_healths: Mutex<Vec<ShardHealth>>,
    m: ClientMetrics,
}

impl RemoteCluster {
    /// Connect to a graph server and learn its topology (shard count,
    /// graph version) via an initial health probe. The client owns its own
    /// registry: client-side `rpc.client.*` and `pipeline.*` telemetry
    /// land here, while server-side spans/slow-ops stay in the server's.
    pub fn connect(addr: impl ToSocketAddrs, cfg: RemoteClusterConfig) -> Result<Self, Error> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let registry = Arc::new(Registry::new());
        let m = ClientMetrics::new(&registry);
        let client = Self {
            addr,
            cfg,
            registry,
            pool: Mutex::new(Vec::new()),
            num_shards: 0,
            last_version: AtomicU64::new(0),
            last_healths: Mutex::new(Vec::new()),
            m,
        };
        let health = client.probe().map_err(|e| {
            Error::Io(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                e.to_string(),
            ))
        })?;
        Ok(Self {
            num_shards: health.healths.len(),
            ..client
        })
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true)?;
        self.m.reconnects.inc();
        Ok(stream)
    }

    fn checkout(&self) -> io::Result<TcpStream> {
        let pooled = self.lock_pool().pop();
        match pooled {
            Some(stream) => Ok(stream),
            None => self.dial(),
        }
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.lock_pool();
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn deadline_ms(&self) -> u32 {
        self.cfg
            .request_timeout
            .as_millis()
            .min(u128::from(u32::MAX)) as u32
    }

    /// One request/reply exchange with retry + backoff. The closure runs
    /// the whole exchange on a checked-out stream; any [`FrameError::Io`]
    /// drops the stream, sleeps the (doubling) backoff, and retries on a
    /// fresh connection. Protocol-level errors are not retried — a peer
    /// speaking a different protocol will not improve on attempt two.
    fn with_retries<T>(
        &self,
        mut exchange: impl FnMut(&mut TcpStream) -> Result<T, FrameError>,
    ) -> Result<T, FrameError> {
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0;
        loop {
            let outcome = self.checkout().map_err(FrameError::Io).and_then(|mut s| {
                let started = Instant::now();
                let out = exchange(&mut s)?;
                self.m.rtt.record(started.elapsed());
                self.checkin(s);
                Ok(out)
            });
            match outcome {
                Ok(out) => return Ok(out),
                Err(FrameError::Io(e)) if attempt < self.cfg.max_retries => {
                    self.m.transport_errors.inc();
                    self.m.retries.inc();
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                    let _ = e;
                }
                Err(e) => {
                    if matches!(e, FrameError::Io(_)) {
                        self.m.transport_errors.inc();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Health probe: graph version plus per-shard healths. Successful
    /// probes refresh the client's cached view.
    pub fn probe(&self) -> Result<crate::codec::HealthReply, FrameError> {
        let reply = self.with_retries(|stream| {
            write_frame(stream, FrameKind::HealthProbe, &[])?;
            stream.flush()?;
            let (kind, payload) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::HealthReply, "health")?;
            Ok(decode_health_reply(&payload)?)
        })?;
        self.last_version
            .store(reply.graph_version, Ordering::Release);
        *self.lock_healths() = reply.healths.clone();
        Ok(reply)
    }

    fn lock_healths(&self) -> std::sync::MutexGuard<'_, Vec<ShardHealth>> {
        self.last_healths
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Client-side degraded fallback for one request, used when transport
    /// to the server is gone: same shape the in-process router produces
    /// for a dead shard, with the shard predicted by the shared
    /// [`route_for`] hash.
    fn transport_degraded(&self, req: &SampleRequest) -> SampleResponse {
        self.m.degraded_fallbacks.inc();
        let (neighbors, sources) = match req.on_degraded {
            DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
            DegradedPolicy::SelfLoop => (
                vec![req.vertex; req.fanout],
                vec![SlotSource::SelfLoop; req.fanout],
            ),
        };
        SampleResponse {
            neighbors,
            sources,
            degraded: true,
            shard: route_for(req.vertex, self.num_shards.max(1)),
        }
    }

    /// Pipelined exchange of pre-seeded sample chunks: write every chunk
    /// frame, flush once, then read the replies in order.
    fn pipelined_sample(
        &self,
        chunks: &[&[(SampleRequest, u64)]],
    ) -> Result<Vec<SampleResponse>, FrameError> {
        let deadline_ms = self.deadline_ms();
        self.with_retries(|stream| {
            for chunk in chunks {
                let batch = SampleBatch {
                    deadline_ms,
                    requests: chunk.to_vec(),
                };
                write_frame(stream, FrameKind::SampleBatch, &encode_sample_batch(&batch))?;
            }
            stream.flush()?;
            let mut out = Vec::with_capacity(chunks.iter().map(|c| c.len()).sum());
            for chunk in chunks {
                let (kind, payload) = crate::codec::read_frame(stream)?;
                expect_kind(kind, FrameKind::SampleReply, "sample")?;
                let responses = decode_sample_reply(&payload)?;
                if responses.len() != chunk.len() {
                    return Err(FrameError::UnexpectedReply {
                        expected: "positionally complete sample",
                        got: kind,
                    });
                }
                out.extend(responses);
            }
            Ok(out)
        })
    }
}

fn expect_kind(got: FrameKind, want: FrameKind, what: &'static str) -> Result<(), FrameError> {
    if got == want {
        return Ok(());
    }
    Err(FrameError::UnexpectedReply {
        expected: what,
        got,
    })
}

impl GraphService for RemoteCluster {
    fn sample_one(&self, req: &SampleRequest, rng: &mut dyn RngCore) -> SampleResponse {
        self.sample_many(std::slice::from_ref(req), rng)
            .pop()
            .expect("one response per request")
    }

    fn sample_many(&self, reqs: &[SampleRequest], rng: &mut dyn RngCore) -> Vec<SampleResponse> {
        // Seeds are drawn up front, in request order, exactly one per
        // request — the determinism contract — and *before* any I/O, so a
        // retry re-sends the same seeds instead of redrawing.
        let seeded: Vec<(SampleRequest, u64)> = reqs.iter().map(|r| (*r, rng.next_u64())).collect();
        if seeded.is_empty() {
            return Vec::new();
        }
        self.m.requests.add(seeded.len() as u64);
        let chunks: Vec<&[(SampleRequest, u64)]> = seeded.chunks(self.cfg.max_batch).collect();
        match self.pipelined_sample(&chunks) {
            Ok(responses) => responses,
            // The server is unreachable (or answered garbage) past the
            // retry budget: degrade every request per its own policy, the
            // same contract the in-process router honors for dead shards.
            // The trainer sees degraded batches, never a client error.
            Err(_) => reqs.iter().map(|r| self.transport_degraded(r)).collect(),
        }
    }

    fn apply_updates(&self, ops: &[UpdateOp]) -> Result<BatchReport, Error> {
        let batch = UpdateBatch {
            deadline_ms: self.deadline_ms(),
            trace_id: None,
            ops: ops.to_vec(),
        };
        let payload = encode_update_batch(&batch);
        let outcome = self.with_retries(|stream| {
            write_frame(stream, FrameKind::UpdateBatch, &payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            match kind {
                FrameKind::UpdateReply => Ok(Ok(decode_update_reply(&reply)?)),
                FrameKind::ErrorReply => Ok(Err(decode_error_reply(&reply)?)),
                kind => Err(FrameError::UnexpectedReply {
                    expected: "update",
                    got: kind,
                }),
            }
        });
        match outcome {
            Ok(Ok(reply)) => Ok(BatchReport {
                applied_ops: reply.applied_ops as usize,
                queued_ops: reply.queued_ops as usize,
            }),
            Ok(Err(err)) if err.code == error_code::SHARD_PANICKED => Err(Error::ShardPanicked {
                shard: err.shard as usize,
                detail: err.message,
            }),
            Ok(Err(err)) => Err(Error::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                err.message,
            ))),
            Err(e) => Err(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            ))),
        }
    }

    fn apply_txn(&self, txn: &GraphTxn) -> Result<TxnReceipt, TxnError> {
        // Encoded once; every retry re-sends the identical frame — same
        // txn id — so the server's idempotence ledger answers a replayed
        // commit from the cached receipt instead of applying twice.
        let payload = encode_txn_apply(&TxnApply {
            txn_id: txn.id(),
            ops: txn.ops().to_vec(),
        });
        let outcome = self.with_retries(|stream| {
            write_frame(stream, FrameKind::TxnApply, &payload)?;
            stream.flush()?;
            let (kind, reply) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::TxnReply, "txn")?;
            Ok(decode_txn_reply(&reply)?)
        });
        match outcome {
            Ok(TxnReply::Committed(receipt)) => Ok(receipt),
            Ok(TxnReply::Rejected { txn_id, violations }) => {
                Err(TxnError::Rejected { txn_id, violations })
            }
            Ok(TxnReply::StoreError {
                shard,
                code,
                message,
            }) if code == error_code::SHARD_PANICKED && message.contains("panicked") => {
                Err(TxnError::Store(Error::ShardPanicked {
                    shard: shard as usize,
                    detail: message,
                }))
            }
            Ok(TxnReply::StoreError { shard, .. }) => {
                Err(TxnError::Store(Error::ShardUnavailable {
                    shard: shard as usize,
                }))
            }
            Err(e) => Err(TxnError::Store(Error::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                e.to_string(),
            )))),
        }
    }

    fn graph_version(&self) -> u64 {
        // A failed probe falls back to the last observed version: the
        // neighbor cache keeps serving bounded-stale entries through a
        // server blip instead of thrashing.
        match self.probe() {
            Ok(reply) => reply.graph_version,
            Err(_) => self.last_version.load(Ordering::Acquire),
        }
    }

    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_healths(&self) -> Vec<ShardHealth> {
        match self.probe() {
            Ok(reply) => reply.healths,
            Err(_) => self.lock_healths().clone(),
        }
    }

    fn heal(&self, shard: usize) -> usize {
        let drained = self.with_retries(|stream| {
            write_frame(
                stream,
                FrameKind::HealRequest,
                &encode_heal_request(shard as u32),
            )?;
            stream.flush()?;
            let (kind, payload) = crate::codec::read_frame(stream)?;
            expect_kind(kind, FrameKind::HealReply, "heal")?;
            Ok(decode_heal_reply(&payload)?)
        });
        drained.unwrap_or(0) as usize
    }

    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}
