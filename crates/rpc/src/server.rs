//! The graph-service TCP server.
//!
//! [`GraphServiceServer`] hosts any shared [`GraphService`] (in practice an
//! `Arc<Cluster>` with its registry) and serves the frame protocol of
//! [`codec`](crate::codec) on one of two backends, selected by
//! [`ServerConfig`]:
//!
//! * [`Backend::EventLoop`] (the default) — a readiness-driven loop on a
//!   single thread: epoll-backed poller (portable fallback available),
//!   non-blocking connections with per-connection read/write buffers,
//!   zero-copy frame decode, replies correlated by `req_id` so v2 clients
//!   may be answered out of order. See [`crate::event`].
//! * [`Backend::Threaded`] — the PR-5 design, one thread per connection
//!   with strictly in-order replies. Kept as the baseline the
//!   `report_rpc` bench compares against (and as a conservative fallback).
//!
//! Both backends funnel every frame through the same
//! [`dispatch`](crate::dispatch) logic, so semantics (determinism
//! contract, deadline handling, failure mapping, slow-op capture with
//! client trace ids) are backend-independent. Protocol compat is
//! per-frame: a v1 frame is answered with a v1 frame, in order; v2 frames
//! carry ids and may be reordered.
//!
//! Observability flows through the *service's* registry: the cluster's
//! root spans and slow-op captures land in the same ring the admin server
//! reads — `GET /debug/slow` works across the wire — and the event loop
//! publishes its own gauges (`rpc.server.ready_queue_depth`,
//! `rpc.server.in_flight_requests`, `rpc.server.accept_backlog`,
//! `rpc.server.open_connections`).
//!
//! ## Deadlines
//!
//! Sample and update batches carry a `deadline_ms` budget measured from
//! frame receipt. The check is between requests, not preemptive — a
//! single slow shard call can overshoot the deadline by its own duration,
//! which is the same contract the paper's servers offer (cancellation is
//! cooperative).

use crate::codec::{
    append_timing_echo, encode_error_reply, encode_reply_frame, error_code, parse_frame,
    ErrorReply, FrameError, FrameHeader, FrameKind, PROTOCOL_V2,
};
use crate::dispatch::{dispatch, ServerMetrics};
use crate::event;
use crate::poll::PollerKind;
use crate::stats::{ConnInfo, RpcServerStats, ServerIntrospect};
use platod2gl_graph::Error;
use platod2gl_server::GraphService;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the threaded accept loop while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Socket read timeout of threaded connection threads: the granularity at
/// which an idle connection notices the stop flag.
const CONN_POLL: Duration = Duration::from_millis(25);

/// Which serving core a [`GraphServiceServer`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Readiness-driven event loop (the default).
    #[default]
    EventLoop,
    /// Legacy thread-per-connection core.
    Threaded,
}

/// Validated server shape. Build via [`ServerConfig::builder`]; the
/// zero-argument [`Default`] is the event loop with inline dispatch.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The serving core.
    pub backend: Backend,
    /// Event loop only: dispatch worker threads. `0` (default) serves
    /// requests inline on the loop thread — the right choice when
    /// handlers are short; workers add out-of-order completion for slow
    /// handlers at the cost of one payload copy per frame.
    pub workers: usize,
    /// Event loop only: connection-table ceiling. Accepts beyond it are
    /// dropped (and counted) instead of exhausting fds.
    pub max_connections: usize,
    /// Event loop only: poller backend selection.
    pub poller: PollerKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            backend: Backend::EventLoop,
            workers: 0,
            max_connections: 16_384,
            poller: PollerKind::Auto,
        }
    }
}

impl ServerConfig {
    /// Start building a config.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`ServerConfig`] — the validated construction path.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Select the serving core.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Dispatch worker threads (event loop; `0` = inline).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Connection-table ceiling (event loop).
    pub fn max_connections(mut self, n: usize) -> Self {
        self.cfg.max_connections = n;
        self
    }

    /// Poller backend (event loop).
    pub fn poller(mut self, kind: PollerKind) -> Self {
        self.cfg.poller = kind;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServerConfig, Error> {
        if self.cfg.max_connections == 0 {
            return Err(Error::invalid_config(
                "server max_connections must be at least 1",
            ));
        }
        if self.cfg.workers > 256 {
            return Err(Error::invalid_config(
                "server workers above 256 is certainly a mistake",
            ));
        }
        Ok(self.cfg)
    }
}

/// A running graph-service TCP server. All serving threads are joined on
/// [`GraphServiceServer::shutdown`] (or drop), so shutdown is clean — no
/// detached threads left running.
pub struct GraphServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Option<crate::poll::Waker>,
    stats: Arc<RpcServerStats>,
    handle: Option<JoinHandle<()>>,
}

impl GraphServiceServer {
    /// Bind `addr` (port 0 for an ephemeral port) and serve `service` with
    /// the default config — the event-loop backend.
    pub fn bind<S>(addr: impl ToSocketAddrs, service: Arc<S>) -> io::Result<Self>
    where
        S: GraphService + Send + Sync + 'static,
    {
        Self::bind_with(addr, service, ServerConfig::default())
    }

    /// Bind with an explicit [`ServerConfig`].
    pub fn bind_with<S>(
        addr: impl ToSocketAddrs,
        service: Arc<S>,
        cfg: ServerConfig,
    ) -> io::Result<Self>
    where
        S: GraphService + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = RpcServerStats::new();
        let (handle, wake) = match cfg.backend {
            Backend::Threaded => {
                stats.set_backend("threaded");
                let thread_stop = Arc::clone(&stop);
                let thread_stats = Arc::clone(&stats);
                let handle = std::thread::Builder::new()
                    .name("platod2gl-rpc-accept".to_string())
                    .spawn(move || accept_loop(&listener, &service, &thread_stop, &thread_stats))?;
                (handle, None)
            }
            Backend::EventLoop => {
                let (handle, waker) = event::spawn(
                    listener,
                    service,
                    Arc::clone(&stop),
                    Arc::clone(&stats),
                    cfg,
                )?;
                (handle, Some(waker))
            }
        };
        Ok(Self {
            addr: local,
            stop,
            wake,
            stats,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cheap handle onto the live connection table, for the admin
    /// plane's `GET /debug/rpc` (see
    /// [`RpcIntrospect`](platod2gl_admin::RpcIntrospect)).
    pub fn introspect(&self) -> ServerIntrospect {
        ServerIntrospect(Arc::clone(&self.stats))
    }

    /// Stop accepting, drain connection state, and join everything.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(wake) = &self.wake {
            wake.wake();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GraphServiceServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------
// Threaded backend (legacy, kept as the bench baseline).
// ---------------------------------------------------------------------

fn accept_loop<S>(
    listener: &TcpListener,
    service: &Arc<S>,
    stop: &Arc<AtomicBool>,
    stats: &Arc<RpcServerStats>,
) where
    S: GraphService + Send + Sync + 'static,
{
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let connections = service.registry().counter("rpc.server.connections");
    let metrics = Arc::new(ServerMetrics::new(Arc::clone(service.registry())));
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                connections.inc();
                let info = ConnInfo::new(peer.to_string());
                let conn_id = stats.open(Arc::clone(&info));
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let conn_stats = Arc::clone(stats);
                let metrics = Arc::clone(&metrics);
                let spawned = std::thread::Builder::new()
                    .name("platod2gl-rpc-conn".to_string())
                    .spawn(move || {
                        // A broken connection must not take the server
                        // down; the error ends this connection only.
                        let _ = serve_connection(stream, &*service, &metrics, &info, &stop);
                        conn_stats.close(conn_id);
                    });
                if let Ok(handle) = spawned {
                    conns.push(handle);
                } else {
                    stats.close(conn_id);
                }
                // Opportunistically reap finished connections so a
                // long-lived server does not accumulate dead handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Read exactly `buf.len()` bytes. `Ok(false)` means the connection ended
/// cleanly — EOF before the first byte, or the stop flag was raised (an
/// abandoned partial frame at shutdown is fine: the stream is dropped).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection<S: GraphService>(
    mut stream: TcpStream,
    service: &S,
    metrics: &ServerMetrics,
    info: &ConnInfo,
    stop: &AtomicBool,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(CONN_POLL))?;
    stream.set_nodelay(true)?;
    // The version the peer last spoke, so even an error reply to a
    // garbled frame is encoded in a layout the peer can parse.
    let mut peer_version = PROTOCOL_V2;
    loop {
        // Pull the length prefix with the stop-aware reader, then hand the
        // already-framed bytes to the codec.
        let mut len_buf = [0u8; 4];
        if !read_full(&mut stream, &mut len_buf, stop)? {
            return Ok(());
        }
        let len = u32::from_le_bytes(len_buf);
        let mut framed = vec![0u8; 4 + len as usize];
        framed[..4].copy_from_slice(&len_buf);
        match crate::codec::frame_len(&framed) {
            Ok(Some(_)) => {}
            // An in-bounds check of the prefix alone failed: poisoned
            // stream.
            _ => {
                return fail_connection(
                    &mut stream,
                    metrics,
                    peer_version,
                    FrameError::BadLength { len },
                )
            }
        }
        if !read_full(&mut stream, &mut framed[4..], stop)? {
            return Ok(());
        }
        let (header, payload) = match parse_frame(&framed) {
            Ok(frame) => frame,
            Err(e) => return fail_connection(&mut stream, metrics, peer_version, e),
        };
        peer_version = header.version;
        info.in_flight.fetch_add(1, Ordering::Relaxed);
        let svc_started = std::time::Instant::now();
        let outcome = dispatch(service, metrics, header.kind, payload, svc_started);
        info.in_flight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok((kind, mut reply)) => {
                // The threaded backend dispatches inline off the read, so
                // its echo has zero queue time — all service.
                let service_time = svc_started.elapsed();
                metrics.service_time.record(service_time);
                info.served(header.version);
                if header.version == PROTOCOL_V2 {
                    let service_us = service_time.as_micros().min(u128::from(u32::MAX)) as u32;
                    append_timing_echo(&mut reply, 0, service_us);
                }
                stream.write_all(&encode_reply_frame(&header, kind, &reply))?;
            }
            // The payload failed record-level decoding: the stream cannot
            // be trusted past it.
            Err(e) => return fail_connection(&mut stream, metrics, peer_version, e),
        }
    }
}

/// Best-effort error reply (in the peer's own protocol version), then
/// close by returning the error.
fn fail_connection(
    stream: &mut TcpStream,
    metrics: &ServerMetrics,
    peer_version: u8,
    e: FrameError,
) -> Result<(), FrameError> {
    metrics.errors.inc();
    let reply = ErrorReply {
        code: error_code::BAD_REQUEST,
        shard: 0,
        message: e.to_string(),
    };
    let header = FrameHeader {
        version: peer_version,
        kind: FrameKind::ErrorReply,
        req_id: 0,
    };
    let mut payload = encode_error_reply(&reply);
    if peer_version == PROTOCOL_V2 {
        append_timing_echo(&mut payload, 0, 0);
    }
    let _ = stream.write_all(&encode_reply_frame(
        &header,
        FrameKind::ErrorReply,
        &payload,
    ));
    Err(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{degraded_response, SeedRng};
    use platod2gl_server::DegradedPolicy;
    use rand::RngCore;

    #[test]
    fn seed_rng_first_draw_is_the_seed() {
        let mut rng = SeedRng(42);
        assert_eq!(rng.next_u64(), 42);
        // Further draws are defined and distinct, but the contract says
        // they must never be requested on the sampling path.
        assert_ne!(rng.next_u64(), 42);
    }

    #[test]
    fn degraded_response_honors_policy() {
        use platod2gl_graph::VertexId;
        use platod2gl_server::SlotSource;
        let empty = degraded_response(VertexId(5), 3, DegradedPolicy::EmptySet, 1);
        assert!(empty.degraded && empty.neighbors.is_empty());
        let looped = degraded_response(VertexId(5), 3, DegradedPolicy::SelfLoop, 1);
        assert_eq!(looped.neighbors, vec![VertexId(5); 3]);
        assert_eq!(looped.sources, vec![SlotSource::SelfLoop; 3]);
    }

    #[test]
    fn server_config_builder_validates() {
        let cfg = ServerConfig::builder()
            .backend(Backend::Threaded)
            .workers(2)
            .build()
            .expect("valid");
        assert_eq!(cfg.backend, Backend::Threaded);
        assert_eq!(cfg.workers, 2);
        assert!(ServerConfig::builder().max_connections(0).build().is_err());
        assert!(ServerConfig::builder().workers(1000).build().is_err());
    }
}
