//! The graph-service TCP server.
//!
//! [`GraphServiceServer`] hosts any shared [`GraphService`] (in practice an
//! `Arc<Cluster>` with its registry) and serves the frame protocol of
//! [`codec`](crate::codec) to concurrent connections: one accept thread,
//! one thread per connection, frames on a connection answered in order —
//! which is what makes client-side pipelining (write k frames, read k
//! replies) sound.
//!
//! Observability flows through the *service's* registry: every sample
//! request runs through [`GraphService::sample_one`], so the cluster's
//! root spans and slow-op captures (with the client's trace ids, shipped
//! in the request records) land in the same ring the admin server reads —
//! `GET /debug/slow` works across the wire. The rpc layer adds its own
//! `rpc.server.*` counters and records slow update batches under
//! `rpc.update_batch`.
//!
//! ## Deadlines
//!
//! Sample and update batches carry a `deadline_ms` budget. The server
//! checks it between requests: once a batch's budget has lapsed, remaining
//! sample requests are answered degraded (per each request's policy)
//! without touching shards, and `rpc.server.deadline_expired` counts them.
//! The check is between requests, not preemptive — a single slow shard
//! call can overshoot the deadline by its own duration, which is the same
//! contract the paper's servers offer (cancellation is cooperative).

use crate::codec::{
    decode_heal_request, decode_map_install, decode_migrate_ctl, decode_partition_fetch,
    decode_partition_stats, decode_sample_batch, decode_tail_fetch, decode_txn_apply,
    decode_update_batch, encode_error_reply, encode_heal_reply, encode_health_reply,
    encode_map_reply, encode_migrate_ctl_reply, encode_partition_chunk,
    encode_partition_stats_reply, encode_sample_reply, encode_tail_reply, encode_txn_reply,
    encode_update_reply, error_code, migrate_action, read_frame, write_frame, ErrorReply,
    FrameError, FrameKind, HealthReply, MapReply, PartitionChunkReply, TailReply, TxnReply,
    UpdateReply,
};
use platod2gl_graph::{Error, GraphTxn, TxnError};
use platod2gl_obs::SlowOpRecord;
use platod2gl_server::{route_for, DegradedPolicy, GraphService, SampleResponse, SlotSource};
use rand::RngCore;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval of the accept loop while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Socket read timeout of connection threads: the granularity at which an
/// idle connection notices the stop flag.
const CONN_POLL: Duration = Duration::from_millis(25);

/// Feeds the wire-shipped seed to [`GraphService::sample_one`], which by
/// contract draws exactly one `u64` — the same derivation the in-process
/// path performs, so remote draws are bit-identical to local ones.
struct SeedRng(u64);

impl RngCore for SeedRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = self.0;
        // A second draw would break the determinism contract; feeding a
        // derived value keeps it *defined* rather than a repeat.
        self.0 = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        s
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A running graph-service TCP server: accept thread plus one thread per
/// live connection, all joined on [`GraphServiceServer::shutdown`] (or
/// drop), so shutdown is clean — no detached threads left running.
pub struct GraphServiceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl GraphServiceServer {
    /// Bind `addr` (port 0 for an ephemeral port) and serve `service` on
    /// background threads until shutdown.
    pub fn bind<S>(addr: impl ToSocketAddrs, service: Arc<S>) -> io::Result<Self>
    where
        S: GraphService + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("platod2gl-rpc-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain connection threads, and join everything.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GraphServiceServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<S>(listener: &TcpListener, service: &Arc<S>, stop: &Arc<AtomicBool>)
where
    S: GraphService + Send + Sync + 'static,
{
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let connections = service.registry().counter("rpc.server.connections");
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections.inc();
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("platod2gl-rpc-conn".to_string())
                    .spawn(move || {
                        // A broken connection must not take the server
                        // down; the error ends this connection only.
                        let _ = serve_connection(stream, &*service, &stop);
                    });
                if let Ok(handle) = spawned {
                    conns.push(handle);
                }
                // Opportunistically reap finished connections so a
                // long-lived server does not accumulate dead handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Read exactly `buf.len()` bytes. `Ok(false)` means the connection ended
/// cleanly — EOF before the first byte, or the stop flag was raised (an
/// abandoned partial frame at shutdown is fine: the stream is dropped).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection<S: GraphService>(
    mut stream: TcpStream,
    service: &S,
    stop: &AtomicBool,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(CONN_POLL))?;
    stream.set_nodelay(true)?;
    let registry = Arc::clone(service.registry());
    let frames = registry.counter("rpc.server.frames");
    let sample_requests = registry.counter("rpc.server.sample_requests");
    let update_ops = registry.counter("rpc.server.update_ops");
    let txn_ops = registry.counter("rpc.server.txn_ops");
    let errors = registry.counter("rpc.server.errors");
    let deadline_expired = registry.counter("rpc.server.deadline_expired");
    let request_lat = registry.histogram("rpc.server.request_ns");

    loop {
        // Pull the length prefix with the stop-aware reader, then hand the
        // already-framed bytes to the codec.
        let mut len_buf = [0u8; 4];
        if !read_full(&mut stream, &mut len_buf, stop)? {
            return Ok(());
        }
        let len = u32::from_le_bytes(len_buf);
        if (len as usize) < 6 || len as usize > crate::codec::MAX_FRAME_BYTES {
            return Err(FrameError::BadLength { len });
        }
        let mut body = vec![0u8; len as usize];
        if !read_full(&mut stream, &mut body, stop)? {
            return Ok(());
        }
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&len_buf);
        framed.extend_from_slice(&body);
        let (kind, payload) = match read_frame(&mut framed.as_slice()) {
            Ok(frame) => frame,
            Err(e) => {
                // The stream cannot be trusted past a framing error: tell
                // the peer and close.
                errors.inc();
                let reply = ErrorReply {
                    code: error_code::BAD_REQUEST,
                    shard: 0,
                    message: e.to_string(),
                };
                let _ = write_frame(
                    &mut stream,
                    FrameKind::ErrorReply,
                    &encode_error_reply(&reply),
                );
                return Err(e);
            }
        };
        frames.inc();
        let started = Instant::now();
        let _span = registry.span("rpc.server.request");
        match kind {
            FrameKind::SampleBatch => {
                let batch = decode_sample_batch(&payload)?;
                sample_requests.add(batch.requests.len() as u64);
                let deadline = Duration::from_millis(u64::from(batch.deadline_ms));
                let mut responses = Vec::with_capacity(batch.requests.len());
                for (req, seed) in &batch.requests {
                    if batch.deadline_ms > 0 && started.elapsed() >= deadline {
                        deadline_expired.inc();
                        responses.push(degraded_response(
                            req.vertex,
                            req.fanout,
                            req.on_degraded,
                            route_for(req.vertex, service.num_shards()),
                        ));
                        continue;
                    }
                    responses.push(service.sample_one(req, &mut SeedRng(*seed)));
                }
                write_frame(
                    &mut stream,
                    FrameKind::SampleReply,
                    &encode_sample_reply(&responses),
                )?;
            }
            FrameKind::UpdateBatch => {
                let batch = decode_update_batch(&payload)?;
                update_ops.add(batch.ops.len() as u64);
                match service.apply_updates(&batch.ops) {
                    Ok(report) => {
                        let reply = UpdateReply {
                            applied_ops: report.applied_ops as u64,
                            queued_ops: report.queued_ops as u64,
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::UpdateReply,
                            &encode_update_reply(&reply),
                        )?;
                    }
                    Err(e) => {
                        errors.inc();
                        let shard = match &e {
                            Error::ShardPanicked { shard, .. }
                            | Error::ShardUnavailable { shard } => *shard as u32,
                            _ => 0,
                        };
                        let reply = ErrorReply {
                            code: error_code::SHARD_PANICKED,
                            shard,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
                let elapsed = started.elapsed();
                let slow = registry.slow_log();
                if slow.is_slow(elapsed) {
                    slow.record(SlowOpRecord {
                        op: "rpc.update_batch",
                        trace_id: batch.trace_id,
                        detail: format!("ops={}", batch.ops.len()),
                        duration_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                        spans: Vec::new(),
                    });
                }
            }
            FrameKind::TxnApply => {
                let apply = decode_txn_apply(&payload)?;
                txn_ops.add(apply.ops.len() as u64);
                let mut txn = GraphTxn::new(apply.txn_id);
                for op in apply.ops {
                    txn.push(op);
                }
                // Every outcome — commit, rejection, store error — is a
                // well-formed TxnReply, so the client can always tell a
                // served verdict from a transport failure (only the latter
                // is retried, with the same txn id).
                let reply = match service.apply_txn(&txn) {
                    Ok(receipt) => TxnReply::Committed(receipt),
                    Err(TxnError::Rejected { txn_id, violations }) => {
                        errors.inc();
                        TxnReply::Rejected { txn_id, violations }
                    }
                    Err(TxnError::Store(e)) => {
                        errors.inc();
                        let shard = match &e {
                            Error::ShardPanicked { shard, .. }
                            | Error::ShardUnavailable { shard } => *shard as u32,
                            _ => 0,
                        };
                        TxnReply::StoreError {
                            shard,
                            code: error_code::SHARD_PANICKED,
                            message: e.to_string(),
                        }
                    }
                };
                write_frame(&mut stream, FrameKind::TxnReply, &encode_txn_reply(&reply))?;
            }
            FrameKind::HealthProbe => {
                let reply = HealthReply {
                    graph_version: service.graph_version(),
                    healths: service.shard_healths(),
                };
                write_frame(
                    &mut stream,
                    FrameKind::HealthReply,
                    &encode_health_reply(&reply),
                )?;
            }
            FrameKind::HealRequest => {
                let shard = decode_heal_request(&payload)? as usize;
                let drained = if shard < service.num_shards() {
                    service.heal(shard) as u64
                } else {
                    0
                };
                write_frame(
                    &mut stream,
                    FrameKind::HealReply,
                    &encode_heal_reply(drained),
                )?;
            }
            FrameKind::ReplicaBatch => {
                // Same shape as UpdateBatch, but applied through the
                // replication entry point, which never re-forwards to the
                // server's own replicas (loop prevention).
                let batch = decode_update_batch(&payload)?;
                update_ops.add(batch.ops.len() as u64);
                match service.apply_replica_updates(&batch.ops) {
                    Ok(report) => {
                        let reply = UpdateReply {
                            applied_ops: report.applied_ops as u64,
                            queued_ops: report.queued_ops as u64,
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::UpdateReply,
                            &encode_update_reply(&reply),
                        )?;
                    }
                    Err(e) => {
                        errors.inc();
                        let shard = match &e {
                            Error::ShardPanicked { shard, .. }
                            | Error::ShardUnavailable { shard } => *shard as u32,
                            _ => 0,
                        };
                        let reply = ErrorReply {
                            code: error_code::SHARD_PANICKED,
                            shard,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
            }
            FrameKind::ReplicaTxn => {
                let apply = decode_txn_apply(&payload)?;
                txn_ops.add(apply.ops.len() as u64);
                let mut txn = GraphTxn::new(apply.txn_id);
                for op in apply.ops {
                    txn.push(op);
                }
                let reply = match service.apply_replica_txn(&txn) {
                    Ok(receipt) => TxnReply::Committed(receipt),
                    Err(TxnError::Rejected { txn_id, violations }) => {
                        errors.inc();
                        TxnReply::Rejected { txn_id, violations }
                    }
                    Err(TxnError::Store(e)) => {
                        errors.inc();
                        let shard = match &e {
                            Error::ShardPanicked { shard, .. }
                            | Error::ShardUnavailable { shard } => *shard as u32,
                            _ => 0,
                        };
                        TxnReply::StoreError {
                            shard,
                            code: error_code::SHARD_PANICKED,
                            message: e.to_string(),
                        }
                    }
                };
                write_frame(&mut stream, FrameKind::TxnReply, &encode_txn_reply(&reply))?;
            }
            FrameKind::MapFetch => {
                let reply = match service.fleet_map_bytes() {
                    Some((epoch, bytes)) => MapReply {
                        epoch,
                        bytes: Some(bytes),
                    },
                    None => MapReply {
                        epoch: 0,
                        bytes: None,
                    },
                };
                write_frame(&mut stream, FrameKind::MapReply, &encode_map_reply(&reply))?;
            }
            FrameKind::MapInstall => {
                let (epoch, bytes) = decode_map_install(&payload)?;
                match service.install_fleet_map(epoch, &bytes) {
                    Ok(effective) => {
                        let mut buf = Vec::with_capacity(8);
                        platod2gl_server::wire::put_u64(&mut buf, effective);
                        write_frame(&mut stream, FrameKind::MapInstallReply, &buf)?;
                    }
                    Err(e) => {
                        errors.inc();
                        let reply = ErrorReply {
                            code: error_code::BAD_REQUEST,
                            shard: 0,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
            }
            FrameKind::PartitionFetch => {
                let fetch = decode_partition_fetch(&payload)?;
                match service.export_partition(
                    fetch.partition,
                    fetch.num_partitions,
                    fetch.cursor,
                    fetch.max_edges as usize,
                ) {
                    Ok(chunk) => {
                        let reply = PartitionChunkReply {
                            done: chunk.done,
                            cursor: chunk.cursor,
                            edges: chunk.edges,
                            snapshot: chunk.snapshot,
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::PartitionChunkReply,
                            &encode_partition_chunk(&reply),
                        )?;
                    }
                    Err(e) => {
                        errors.inc();
                        let reply = ErrorReply {
                            code: error_code::BAD_REQUEST,
                            shard: 0,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
            }
            FrameKind::MigrateCtl => {
                let (action, partition, num_partitions) = decode_migrate_ctl(&payload)?;
                let outcome = if action == migrate_action::BEGIN {
                    service.begin_migration(partition, num_partitions)
                } else {
                    service.end_migration(partition)
                };
                match outcome {
                    Ok(value) => write_frame(
                        &mut stream,
                        FrameKind::MigrateCtlReply,
                        &encode_migrate_ctl_reply(value),
                    )?,
                    Err(e) => {
                        errors.inc();
                        let reply = ErrorReply {
                            code: error_code::BAD_REQUEST,
                            shard: 0,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
            }
            FrameKind::TailFetch => {
                let (partition, from_seq) = decode_tail_fetch(&payload)?;
                match service.migration_tail(partition, from_seq) {
                    Ok((ops, next_seq)) => {
                        let reply = TailReply { next_seq, ops };
                        write_frame(
                            &mut stream,
                            FrameKind::TailReply,
                            &encode_tail_reply(&reply),
                        )?;
                    }
                    Err(e) => {
                        errors.inc();
                        let reply = ErrorReply {
                            code: error_code::BAD_REQUEST,
                            shard: 0,
                            message: e.to_string(),
                        };
                        write_frame(
                            &mut stream,
                            FrameKind::ErrorReply,
                            &encode_error_reply(&reply),
                        )?;
                    }
                }
            }
            FrameKind::PartitionStats => {
                let num_partitions = decode_partition_stats(&payload)?;
                let counts = service.partition_key_counts(num_partitions);
                write_frame(
                    &mut stream,
                    FrameKind::PartitionStatsReply,
                    &encode_partition_stats_reply(&counts),
                )?;
            }
            // Reply kinds arriving at the server are a protocol violation.
            kind => {
                errors.inc();
                let reply = ErrorReply {
                    code: error_code::BAD_REQUEST,
                    shard: 0,
                    message: format!("unexpected client frame {kind:?}"),
                };
                write_frame(
                    &mut stream,
                    FrameKind::ErrorReply,
                    &encode_error_reply(&reply),
                )?;
            }
        }
        request_lat.record(started.elapsed());
    }
}

/// Client-policy degraded response, used when the server refuses a request
/// (deadline lapsed) without consulting the shard.
fn degraded_response(
    vertex: platod2gl_graph::VertexId,
    fanout: usize,
    policy: DegradedPolicy,
    shard: usize,
) -> SampleResponse {
    let (neighbors, sources) = match policy {
        DegradedPolicy::EmptySet => (Vec::new(), Vec::new()),
        DegradedPolicy::SelfLoop => (vec![vertex; fanout], vec![SlotSource::SelfLoop; fanout]),
    };
    SampleResponse {
        neighbors,
        sources,
        degraded: true,
        shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_rng_first_draw_is_the_seed() {
        let mut rng = SeedRng(42);
        assert_eq!(rng.next_u64(), 42);
        // Further draws are defined and distinct, but the contract says
        // they must never be requested on the sampling path.
        assert_ne!(rng.next_u64(), 42);
    }

    #[test]
    fn degraded_response_honors_policy() {
        use platod2gl_graph::VertexId;
        let empty = degraded_response(VertexId(5), 3, DegradedPolicy::EmptySet, 1);
        assert!(empty.degraded && empty.neighbors.is_empty());
        let looped = degraded_response(VertexId(5), 3, DegradedPolicy::SelfLoop, 1);
        assert_eq!(looped.neighbors, vec![VertexId(5); 3]);
        assert_eq!(looped.sources, vec![SlotSource::SelfLoop; 3]);
    }
}
