//! The frame layer of the graph-service protocol.
//!
//! Every message on the wire is one *frame*. The current (v2) layout is:
//!
//! ```text
//! | len u32 LE | version u8 | kind u8 | req_id u64 LE | payload ... | crc32c u32 LE |
//! ```
//!
//! and the legacy (v1) layout, still accepted from old clients, omits the
//! `req_id`:
//!
//! ```text
//! | len u32 LE | version u8 | kind u8 | payload ... | crc32c u32 LE |
//! ```
//!
//! `len` counts everything after itself (header + payload + CRC), so a
//! reader always knows how many bytes to pull before it can judge the
//! frame. The CRC32C trailer (same polynomial and implementation as the
//! WAL, [`platod2gl_storage::crc32c`]) covers everything between `len`
//! and the trailer; a frame whose trailer disagrees is rejected before
//! any payload decode runs. The version byte is checked next and selects
//! the header layout.
//!
//! ## Request correlation (v2)
//!
//! `req_id` is an opaque correlation id: a server echoes the request's id
//! into the reply frame, which is what lets the event-loop server answer
//! **out of order** and lets a multiplexing client pipeline many in-flight
//! requests over one socket, re-stitching replies by id. v1 frames carry
//! no id, so v1 connections are answered strictly in order (the PR-5
//! contract old clients were built against).
//!
//! Defensive bounds: `len` is validated against [`MAX_FRAME_BYTES`]
//! *before* the body buffer is allocated, and every collection count
//! inside a payload is validated against the bytes actually present
//! ([`wire::Reader::count`]) — a forged length prefix or count cannot
//! drive an oversized allocation, and no decode path panics on truncated
//! or corrupt input.
//!
//! For buffer-oriented readers (the event-loop server) the
//! [`frame_len`]/[`parse_frame`] pair decodes a frame **zero-copy**: the
//! returned payload borrows from the read buffer instead of re-allocating
//! per frame. [`read_frame`]/[`read_frame_ex`] remain the streaming
//! entry points for blocking sockets.
//!
//! Record layouts inside payloads are defined by [`platod2gl_server::wire`]
//! — the same functions the in-process cluster uses for traffic
//! accounting, so simulated and real byte counts agree by construction.

use platod2gl_graph::{ShardHealth, TxnOp, TxnReceipt, TxnViolation, UpdateOp, ViolationKind};
use platod2gl_obs::{ExportedSpan, HistogramSnapshot, RegistryExport, SlowOpExport, TraceContext};
use platod2gl_server::wire::{self, Reader, WireError};
use platod2gl_server::{SampleRequest, SampleResponse};
use platod2gl_storage::crc32c::crc32c;
use std::fmt;
use std::io::{self, Read, Write};

/// The legacy protocol version: in-order replies, no request id.
pub const PROTOCOL_V1: u8 = 1;

/// The current protocol version: `req_id`-correlated, replies may arrive
/// out of order.
pub const PROTOCOL_V2: u8 = 2;

/// Protocol version stamped into frames by default ([`PROTOCOL_V2`]).
/// Readers accept both [`PROTOCOL_V1`] and [`PROTOCOL_V2`].
pub const PROTOCOL_VERSION: u8 = PROTOCOL_V2;

/// Upper bound on a whole frame. A length prefix exceeding this is
/// rejected before any allocation — the cap bounds a malicious or corrupt
/// peer to one small read. 16 MiB comfortably fits the largest legitimate
/// frame (a ~64k-op update batch is under 2 MiB).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Everything after the length prefix that is not payload in a v1 frame:
/// version byte, kind byte, CRC trailer.
const V1_NON_PAYLOAD_BYTES: usize = 6;

/// Everything after the length prefix that is not payload in a v2 frame:
/// version byte, kind byte, req_id, CRC trailer.
const V2_NON_PAYLOAD_BYTES: usize = 14;

/// Message kinds. Requests have odd tags, their replies the next even tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a batch of seeded sample requests.
    SampleBatch = 0x01,
    /// Server → client: positionally parallel sample responses.
    SampleReply = 0x02,
    /// Client → server: a batch of update ops.
    UpdateBatch = 0x03,
    /// Server → client: applied/queued counts.
    UpdateReply = 0x04,
    /// Client → server: health probe (empty payload).
    HealthProbe = 0x05,
    /// Server → client: graph version + per-shard healths.
    HealthReply = 0x06,
    /// Client → server: heal one shard.
    HealRequest = 0x07,
    /// Server → client: ops drained by the heal.
    HealReply = 0x08,
    /// Client → server: a typed transaction (txn id + ops). Retried with
    /// the *same* id after transport failures; the server's idempotence
    /// ledger answers replays from the cached receipt.
    TxnApply = 0x09,
    /// Server → client: committed receipt, phase-1 rejection, or store
    /// error (see [`TxnReply`]).
    TxnReply = 0x0a,
    /// Client → server: fetch the server's fleet partition map (empty
    /// payload). Any fleet member answers; new clients bootstrap routing
    /// from a single seed address this way.
    MapFetch = 0x0b,
    /// Server → client: the partition map (or "none carried").
    MapReply = 0x0c,
    /// Client → server: install a (newer) fleet partition map. Servers are
    /// epoch-monotonic — an older map is ignored.
    MapInstall = 0x0d,
    /// Server → client: the map epoch now in effect.
    MapInstallReply = 0x0e,
    /// Leader → replica: an update batch on the replication channel. The
    /// payload is the [`UpdateBatch`] codec and the reply is a standard
    /// [`FrameKind::UpdateReply`] / [`FrameKind::ErrorReply`] — a
    /// deliberate deviation from the odd/even pairing, since the reply
    /// shape is identical and reusing it keeps client plumbing shared.
    /// The receiving server applies WITHOUT re-forwarding to its own
    /// replicas (loop prevention).
    ReplicaBatch = 0x0f,
    /// Leader → replica: a transaction on the replication channel, under
    /// its *original* txn id so the replica's dedupe ledger absorbs
    /// retries. Payload is the [`TxnApply`] codec; reply is a standard
    /// [`FrameKind::TxnReply`] (same deviation as [`FrameKind::ReplicaBatch`]).
    ReplicaTxn = 0x11,
    /// Mover → leader: export one partition chunk (resumable cursor).
    PartitionFetch = 0x13,
    /// Leader → mover: a snapshot-v2 chunk of the partition.
    PartitionChunkReply = 0x14,
    /// Mover → leader: arm (begin) or disarm (end) the live-migration
    /// journal for one partition.
    MigrateCtl = 0x15,
    /// Leader → mover: starting sequence (begin) or total journaled (end).
    MigrateCtlReply = 0x16,
    /// Mover → leader: journaled ops for the migrating partition from a
    /// sequence number on.
    TailFetch = 0x17,
    /// Leader → mover: the ops plus the next sequence to resume from.
    TailReply = 0x18,
    /// Client → server: per-partition resident key counts.
    PartitionStats = 0x19,
    /// Server → client: the counts, partition order.
    PartitionStatsReply = 0x1a,
    /// Admin → server: export every recent span belonging to one trace id
    /// (the cross-process trace-stitching read path).
    SpanExport = 0x1b,
    /// Server → admin: the matching spans, completion order.
    SpanExportReply = 0x1c,
    /// Admin → server: export the registry — metric values with full
    /// histogram buckets plus the slow-op log (empty payload).
    ObsExport = 0x1d,
    /// Server → admin: the registry export.
    ObsExportReply = 0x1e,
    /// Server → client: the request could not be served (e.g. a shard
    /// worker panicked). Carries a code, the shard, and a message.
    ErrorReply = 0x7f,
}

impl FrameKind {
    fn from_tag(tag: u8) -> Result<Self, FrameError> {
        Ok(match tag {
            0x01 => FrameKind::SampleBatch,
            0x02 => FrameKind::SampleReply,
            0x03 => FrameKind::UpdateBatch,
            0x04 => FrameKind::UpdateReply,
            0x05 => FrameKind::HealthProbe,
            0x06 => FrameKind::HealthReply,
            0x07 => FrameKind::HealRequest,
            0x08 => FrameKind::HealReply,
            0x09 => FrameKind::TxnApply,
            0x0a => FrameKind::TxnReply,
            0x0b => FrameKind::MapFetch,
            0x0c => FrameKind::MapReply,
            0x0d => FrameKind::MapInstall,
            0x0e => FrameKind::MapInstallReply,
            0x0f => FrameKind::ReplicaBatch,
            0x11 => FrameKind::ReplicaTxn,
            0x13 => FrameKind::PartitionFetch,
            0x14 => FrameKind::PartitionChunkReply,
            0x15 => FrameKind::MigrateCtl,
            0x16 => FrameKind::MigrateCtlReply,
            0x17 => FrameKind::TailFetch,
            0x18 => FrameKind::TailReply,
            0x19 => FrameKind::PartitionStats,
            0x1a => FrameKind::PartitionStatsReply,
            0x1b => FrameKind::SpanExport,
            0x1c => FrameKind::SpanExportReply,
            0x1d => FrameKind::ObsExport,
            0x1e => FrameKind::ObsExportReply,
            0x7f => FrameKind::ErrorReply,
            tag => return Err(FrameError::BadKind(tag)),
        })
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes timeouts and mid-frame EOF).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or is shorter than
    /// the mandatory version/kind/CRC bytes).
    BadLength { len: u32 },
    /// The CRC trailer disagrees with the frame contents.
    BadCrc { expected: u32, actual: u32 },
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Unknown message kind byte.
    BadKind(u8),
    /// The CRC-valid payload failed record-level decoding.
    Wire(WireError),
    /// The reply was well-formed but not the kind the call expected.
    UnexpectedReply {
        expected: &'static str,
        got: FrameKind,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::BadLength { len } => write!(f, "bad frame length {len}"),
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Wire(e) => write!(f, "payload decode error: {e}"),
            FrameError::UnexpectedReply { expected, got } => {
                write!(f, "expected {expected} reply, got {got:?}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// The decoded header of one frame: which protocol version the peer
/// spoke, the message kind, and (v2) the correlation id. v1 frames carry
/// no id; their header reports `req_id: 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// [`PROTOCOL_V1`] or [`PROTOCOL_V2`]. A server mirrors the request's
    /// version into the reply so old clients never see a v2 frame.
    pub version: u8,
    /// The message kind.
    pub kind: FrameKind,
    /// Correlation id (v2 only; `0` on v1 frames). Replies echo the
    /// request's id.
    pub req_id: u64,
}

/// Encode one v2 frame into a fresh buffer (length prefix through CRC).
pub fn encode_frame_v2(kind: FrameKind, req_id: u64, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() + V2_NON_PAYLOAD_BYTES;
    let mut out = Vec::with_capacity(4 + len);
    wire::put_u32(&mut out, len as u32);
    out.push(PROTOCOL_V2);
    out.push(kind as u8);
    wire::put_u64(&mut out, req_id);
    out.extend_from_slice(payload);
    let crc = crc32c(&out[4..]);
    wire::put_u32(&mut out, crc);
    out
}

/// Encode one legacy v1 frame (no request id). Kept for old-client compat
/// tests and for servers answering v1 peers.
pub fn encode_frame_v1(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() + V1_NON_PAYLOAD_BYTES;
    let mut out = Vec::with_capacity(4 + len);
    wire::put_u32(&mut out, len as u32);
    out.push(PROTOCOL_V1);
    out.push(kind as u8);
    out.extend_from_slice(payload);
    let crc = crc32c(&out[4..]);
    wire::put_u32(&mut out, crc);
    out
}

/// Encode one frame at the default version with correlation id 0 — the
/// convenience for strictly request/reply flows that never have more than
/// one frame in flight per stream.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    encode_frame_v2(kind, 0, payload)
}

/// Encode a reply frame matching a request's header: same version, same
/// correlation id. This is the one servers must use — an old (v1) client
/// must never see a v2 frame.
pub fn encode_reply_frame(req: &FrameHeader, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    if req.version == PROTOCOL_V1 {
        encode_frame_v1(kind, payload)
    } else {
        encode_frame_v2(kind, req.req_id, payload)
    }
}

/// Write one frame (single `write_all`, so a frame is never interleaved
/// with another writer's bytes on the same stream).
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(kind, payload))
}

/// Write one v2 frame carrying an explicit correlation id.
pub fn write_frame_v2(
    w: &mut impl Write,
    kind: FrameKind,
    req_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&encode_frame_v2(kind, req_id, payload))
}

/// Validate a length prefix against the frame bounds.
fn check_len(len: u32) -> Result<(), FrameError> {
    if (len as usize) < V1_NON_PAYLOAD_BYTES || len as usize > MAX_FRAME_BYTES {
        return Err(FrameError::BadLength { len });
    }
    Ok(())
}

/// Validate a CRC-checked frame body (everything after the length prefix)
/// and split it into header + payload bounds. Returns the header and the
/// payload range *within* `body`.
fn parse_body(body: &[u8], len: u32) -> Result<(FrameHeader, std::ops::Range<usize>), FrameError> {
    let crc_off = body.len() - 4;
    let expected = u32::from_le_bytes(body[crc_off..].try_into().unwrap());
    let actual = crc32c(&body[..crc_off]);
    if expected != actual {
        return Err(FrameError::BadCrc { expected, actual });
    }
    match body[0] {
        PROTOCOL_V1 => {
            let kind = FrameKind::from_tag(body[1])?;
            Ok((
                FrameHeader {
                    version: PROTOCOL_V1,
                    kind,
                    req_id: 0,
                },
                2..crc_off,
            ))
        }
        PROTOCOL_V2 => {
            if (len as usize) < V2_NON_PAYLOAD_BYTES {
                return Err(FrameError::BadLength { len });
            }
            let kind = FrameKind::from_tag(body[1])?;
            let req_id = u64::from_le_bytes(body[2..10].try_into().unwrap());
            Ok((
                FrameHeader {
                    version: PROTOCOL_V2,
                    kind,
                    req_id,
                },
                10..crc_off,
            ))
        }
        v => Err(FrameError::BadVersion(v)),
    }
}

/// Peek at a buffered byte stream: how long is the frame at its head?
///
/// Returns `Ok(None)` when fewer than 4 bytes are buffered (the length
/// prefix itself is incomplete), `Ok(Some(total))` with the whole frame's
/// size *including* the prefix otherwise. The length is bounds-checked
/// here — **before** any caller would grow a buffer to fit it — so a
/// forged prefix cannot drive an oversized allocation.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    check_len(len)?;
    Ok(Some(4 + len as usize))
}

/// Zero-copy decode of one complete frame sitting at the head of `buf`
/// (`buf[..total]` with `total` from [`frame_len`]): CRC and version
/// checks, header parse, and a payload that **borrows** from `buf` —
/// no per-frame allocation. This is the event-loop server's read path.
pub fn parse_frame(buf: &[u8]) -> Result<(FrameHeader, &[u8]), FrameError> {
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    check_len(len)?;
    let body = &buf[4..4 + len as usize];
    let (header, payload) = parse_body(body, len)?;
    Ok((header, &body[payload]))
}

/// Read one frame from a blocking stream: length prefix, bounded
/// allocation, CRC and version checks, header parse. The payload is
/// returned still encoded; pair with the `decode_*` functions below.
pub fn read_frame_ex(r: &mut impl Read) -> Result<(FrameHeader, Vec<u8>), FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    check_len(len)?;
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let (header, payload) = parse_body(&body, len)?;
    body.truncate(payload.end);
    body.drain(..payload.start);
    Ok((header, body))
}

/// [`read_frame_ex`] minus the header detail — for strictly in-order
/// request/reply flows that don't correlate by id.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let (header, payload) = read_frame_ex(r)?;
    Ok((header.kind, payload))
}

/// A [`FrameKind::SampleBatch`] payload: deadline plus seeded requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleBatch {
    /// Server-side deadline in milliseconds; `0` means none. Requests the
    /// server reaches after the deadline has lapsed are answered degraded
    /// without touching shards.
    pub deadline_ms: u32,
    /// Cross-process trace context: the caller's trace id and span id, so
    /// the server's root span links back to the issuing client span.
    pub ctx: Option<TraceContext>,
    /// Requests with their per-request RNG seeds (see
    /// [`platod2gl_server::GraphService`]'s determinism contract).
    pub requests: Vec<(SampleRequest, u64)>,
}

/// Encode a [`SampleBatch`] payload.
///
/// When at least one request carries a time window, a
/// [`wire::put_time_window_block`] trailer follows the fixed records; a
/// batch with no windowed request omits it, so its encoding is
/// byte-identical to the pre-temporal protocol.
pub fn encode_sample_batch(batch: &SampleBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        wire::SAMPLE_BATCH_HEADER_BYTES as usize
            + batch.requests.len() * wire::SAMPLE_REQUEST_BYTES as usize,
    );
    wire::put_u32(&mut buf, batch.deadline_ms);
    wire::put_trace_ctx(&mut buf, batch.ctx);
    wire::put_u32(&mut buf, batch.requests.len() as u32);
    for (req, seed) in &batch.requests {
        wire::put_sample_request(&mut buf, req, *seed);
    }
    if batch.requests.iter().any(|(req, _)| req.window.is_some()) {
        let windows: Vec<_> = batch.requests.iter().map(|(req, _)| req.window).collect();
        wire::put_time_window_block(&mut buf, &windows);
    }
    buf
}

/// Decode a [`SampleBatch`] payload. An absent time-window trailer (an
/// old client, or an unwindowed batch) decodes every request with
/// `window: None`.
pub fn decode_sample_batch(payload: &[u8]) -> Result<SampleBatch, WireError> {
    let mut r = Reader::new(payload);
    let deadline_ms = r.u32()?;
    let ctx = wire::get_trace_ctx(&mut r)?;
    let n = r.count(wire::SAMPLE_REQUEST_BYTES as usize)?;
    let mut requests = Vec::with_capacity(n);
    for _ in 0..n {
        requests.push(wire::get_sample_request(&mut r)?);
    }
    if !r.is_empty() {
        let windows = wire::get_time_window_block(&mut r, n)?;
        if !r.is_empty() {
            return Err(WireError::Truncated);
        }
        for ((req, _), window) in requests.iter_mut().zip(windows) {
            req.window = window;
        }
    }
    Ok(SampleBatch {
        deadline_ms,
        ctx,
        requests,
    })
}

/// Encode a [`FrameKind::SampleReply`] payload.
pub fn encode_sample_reply(responses: &[SampleResponse]) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u32(&mut buf, responses.len() as u32);
    for resp in responses {
        wire::put_sample_response(&mut buf, resp);
    }
    buf
}

/// Decode a [`FrameKind::SampleReply`] payload.
pub fn decode_sample_reply(payload: &[u8]) -> Result<Vec<SampleResponse>, WireError> {
    let mut r = Reader::new(payload);
    let n = r.count(wire::sample_response_bytes(0) as usize)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(wire::get_sample_response(&mut r)?);
    }
    Ok(out)
}

/// A [`FrameKind::UpdateBatch`] payload.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateBatch {
    /// Server-side deadline in milliseconds; `0` means none.
    pub deadline_ms: u32,
    /// Cross-process trace context; its trace id is carried into the
    /// server's slow-op log, its span id into the server root span.
    pub ctx: Option<TraceContext>,
    /// The ops, in submission order.
    pub ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// The batch's trace id, if the caller attached context.
    pub fn trace_id(&self) -> Option<u64> {
        self.ctx.map(|c| c.trace_id)
    }
}

/// Encode an [`UpdateBatch`] payload.
pub fn encode_update_batch(batch: &UpdateBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        wire::UPDATE_BATCH_HEADER_BYTES as usize + batch.ops.len() * wire::UPDATE_OP_BYTES as usize,
    );
    wire::put_u32(&mut buf, batch.deadline_ms);
    wire::put_trace_ctx(&mut buf, batch.ctx);
    wire::put_u32(&mut buf, batch.ops.len() as u32);
    for op in &batch.ops {
        wire::put_update_op(&mut buf, op);
    }
    buf
}

/// Decode an [`UpdateBatch`] payload.
pub fn decode_update_batch(payload: &[u8]) -> Result<UpdateBatch, WireError> {
    let mut r = Reader::new(payload);
    let deadline_ms = r.u32()?;
    let ctx = wire::get_trace_ctx(&mut r)?;
    let n = r.count(wire::UPDATE_OP_BYTES as usize)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(wire::get_update_op(&mut r)?);
    }
    Ok(UpdateBatch {
        deadline_ms,
        ctx,
        ops,
    })
}

/// A [`FrameKind::UpdateReply`] payload: the server-side
/// [`BatchReport`](platod2gl_server::BatchReport) counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Ops applied to healthy shards.
    pub applied_ops: u64,
    /// Ops queued against failed shards (drained on heal).
    pub queued_ops: u64,
}

/// Encode an [`UpdateReply`] payload.
pub fn encode_update_reply(reply: &UpdateReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    wire::put_u64(&mut buf, reply.applied_ops);
    wire::put_u64(&mut buf, reply.queued_ops);
    buf
}

/// Decode an [`UpdateReply`] payload.
pub fn decode_update_reply(payload: &[u8]) -> Result<UpdateReply, WireError> {
    let mut r = Reader::new(payload);
    Ok(UpdateReply {
        applied_ops: r.u64()?,
        queued_ops: r.u64()?,
    })
}

/// A [`FrameKind::HealthReply`] payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReply {
    /// The service's monotone graph version.
    pub graph_version: u64,
    /// Per-shard healths, shard order (its length is the shard count).
    pub healths: Vec<ShardHealth>,
}

/// Encode a [`HealthReply`] payload.
pub fn encode_health_reply(reply: &HealthReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + reply.healths.len());
    wire::put_u64(&mut buf, reply.graph_version);
    wire::put_u32(&mut buf, reply.healths.len() as u32);
    for &h in &reply.healths {
        buf.push(wire::health_tag(h));
    }
    buf
}

/// Decode a [`HealthReply`] payload.
pub fn decode_health_reply(payload: &[u8]) -> Result<HealthReply, WireError> {
    let mut r = Reader::new(payload);
    let graph_version = r.u64()?;
    let n = r.count(1)?;
    let mut healths = Vec::with_capacity(n);
    for _ in 0..n {
        healths.push(wire::health_from(r.u8()?)?);
    }
    Ok(HealthReply {
        graph_version,
        healths,
    })
}

/// Encode a [`FrameKind::HealRequest`] payload.
pub fn encode_heal_request(shard: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4);
    wire::put_u32(&mut buf, shard);
    buf
}

/// Decode a [`FrameKind::HealRequest`] payload.
pub fn decode_heal_request(payload: &[u8]) -> Result<u32, WireError> {
    Reader::new(payload).u32()
}

/// Encode a [`FrameKind::HealReply`] payload.
pub fn encode_heal_reply(drained: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    wire::put_u64(&mut buf, drained);
    buf
}

/// Decode a [`FrameKind::HealReply`] payload.
pub fn decode_heal_reply(payload: &[u8]) -> Result<u64, WireError> {
    Reader::new(payload).u64()
}

/// A [`FrameKind::TxnApply`] payload: the typed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnApply {
    /// Client-chosen transaction id — the idempotence key. A retry of a
    /// lost reply re-sends the same id.
    pub txn_id: u64,
    /// Cross-process trace context for the submitting client span.
    pub ctx: Option<TraceContext>,
    /// The typed ops, in submission order.
    pub ops: Vec<TxnOp>,
}

/// Encode a [`TxnApply`] payload.
pub fn encode_txn_apply(apply: &TxnApply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        wire::TXN_BATCH_HEADER_BYTES as usize + apply.ops.len() * wire::TXN_OP_BYTES as usize,
    );
    wire::put_u64(&mut buf, apply.txn_id);
    wire::put_trace_ctx(&mut buf, apply.ctx);
    wire::put_u32(&mut buf, apply.ops.len() as u32);
    for op in &apply.ops {
        wire::put_txn_op(&mut buf, op);
    }
    buf
}

/// Decode a [`TxnApply`] payload.
pub fn decode_txn_apply(payload: &[u8]) -> Result<TxnApply, WireError> {
    let mut r = Reader::new(payload);
    let txn_id = r.u64()?;
    let ctx = wire::get_trace_ctx(&mut r)?;
    let n = r.count(wire::TXN_OP_BYTES as usize)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(wire::get_txn_op(&mut r)?);
    }
    Ok(TxnApply { txn_id, ctx, ops })
}

/// A [`FrameKind::TxnReply`] payload: the three transaction outcomes.
///
/// Status byte 0 = committed, 1 = rejected (phase-1 violations follow),
/// 2 = store error (shard + code + message, the [`ErrorReply`] shape).
#[derive(Clone, Debug, PartialEq)]
pub enum TxnReply {
    /// The transaction committed (or was answered from the idempotence
    /// ledger — `receipt.deduped`).
    Committed(TxnReceipt),
    /// Phase 1 rejected the batch; zero changes were applied.
    Rejected {
        txn_id: u64,
        violations: Vec<TxnViolation>,
    },
    /// Phase 2 could not run (shard unavailable or panicked).
    StoreError {
        shard: u32,
        /// One of [`error_code`]'s constants.
        code: u8,
        message: String,
    },
}

const TXN_STATUS_COMMITTED: u8 = 0;
const TXN_STATUS_REJECTED: u8 = 1;
const TXN_STATUS_STORE_ERROR: u8 = 2;

fn violation_tag(kind: ViolationKind) -> u8 {
    match kind {
        ViolationKind::DanglingDelete => 0,
        ViolationKind::DanglingPatch => 1,
        ViolationKind::DuplicateKey => 2,
        ViolationKind::NonFiniteWeight => 3,
        ViolationKind::UnknownEtype => 4,
        ViolationKind::Empty => 5,
    }
}

fn violation_from(tag: u8) -> Result<ViolationKind, WireError> {
    Ok(match tag {
        0 => ViolationKind::DanglingDelete,
        1 => ViolationKind::DanglingPatch,
        2 => ViolationKind::DuplicateKey,
        3 => ViolationKind::NonFiniteWeight,
        4 => ViolationKind::UnknownEtype,
        5 => ViolationKind::Empty,
        tag => {
            return Err(WireError::BadTag {
                what: "violation kind",
                tag,
            })
        }
    })
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    wire::put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let n = r.count(1)?;
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        bytes.push(r.u8()?);
    }
    String::from_utf8(bytes).map_err(|_| WireError::BadTag {
        what: "txn string utf8",
        tag: 0,
    })
}

/// Encode a [`TxnReply`] payload.
pub fn encode_txn_reply(reply: &TxnReply) -> Vec<u8> {
    let mut buf = Vec::new();
    match reply {
        TxnReply::Committed(receipt) => {
            buf.push(TXN_STATUS_COMMITTED);
            wire::put_u64(&mut buf, receipt.txn_id);
            wire::put_u64(&mut buf, receipt.ops_applied);
            wire::put_u64(&mut buf, receipt.graph_version);
            buf.push(u8::from(receipt.deduped));
        }
        TxnReply::Rejected { txn_id, violations } => {
            buf.push(TXN_STATUS_REJECTED);
            wire::put_u64(&mut buf, *txn_id);
            wire::put_u32(&mut buf, violations.len() as u32);
            for v in violations {
                wire::put_u32(&mut buf, v.op_index as u32);
                buf.push(violation_tag(v.kind));
                put_string(&mut buf, &v.detail);
            }
        }
        TxnReply::StoreError {
            shard,
            code,
            message,
        } => {
            buf.push(TXN_STATUS_STORE_ERROR);
            wire::put_u32(&mut buf, *shard);
            buf.push(*code);
            put_string(&mut buf, message);
        }
    }
    buf
}

/// Decode a [`TxnReply`] payload.
pub fn decode_txn_reply(payload: &[u8]) -> Result<TxnReply, WireError> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        TXN_STATUS_COMMITTED => {
            let txn_id = r.u64()?;
            let ops_applied = r.u64()?;
            let graph_version = r.u64()?;
            let deduped = r.u8()? != 0;
            Ok(TxnReply::Committed(TxnReceipt {
                txn_id,
                ops_applied,
                graph_version,
                deduped,
            }))
        }
        TXN_STATUS_REJECTED => {
            let txn_id = r.u64()?;
            // Smallest violation record: op_index u32 + kind u8 + empty
            // string (u32 length).
            let n = r.count(9)?;
            let mut violations = Vec::with_capacity(n);
            for _ in 0..n {
                let op_index = r.u32()? as usize;
                let kind = violation_from(r.u8()?)?;
                let detail = get_string(&mut r)?;
                violations.push(TxnViolation {
                    op_index,
                    kind,
                    detail,
                });
            }
            Ok(TxnReply::Rejected { txn_id, violations })
        }
        TXN_STATUS_STORE_ERROR => {
            let shard = r.u32()?;
            let code = r.u8()?;
            let message = get_string(&mut r)?;
            Ok(TxnReply::StoreError {
                shard,
                code,
                message,
            })
        }
        tag => Err(WireError::BadTag {
            what: "txn reply status",
            tag,
        }),
    }
}

/// A [`FrameKind::MapReply`] payload: the server's fleet partition map as
/// opaque encoded bytes (the fleet crate owns the map codec), or `None`
/// when the server carries no map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapReply {
    /// The map's epoch (0 when absent).
    pub epoch: u64,
    /// The encoded map, absent on non-fleet servers.
    pub bytes: Option<Vec<u8>>,
}

/// Encode a [`MapReply`] payload.
pub fn encode_map_reply(reply: &MapReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(13 + reply.bytes.as_ref().map_or(0, Vec::len));
    wire::put_u64(&mut buf, reply.epoch);
    match &reply.bytes {
        Some(bytes) => {
            buf.push(1);
            wire::put_u32(&mut buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
        }
        None => buf.push(0),
    }
    buf
}

/// Decode a [`FrameKind::MapReply`] payload.
pub fn decode_map_reply(payload: &[u8]) -> Result<MapReply, WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let bytes = match r.u8()? {
        0 => None,
        _ => {
            let n = r.count(1)?;
            let mut bytes = Vec::with_capacity(n);
            for _ in 0..n {
                bytes.push(r.u8()?);
            }
            Some(bytes)
        }
    };
    Ok(MapReply { epoch, bytes })
}

/// Encode a [`FrameKind::MapInstall`] payload.
pub fn encode_map_install(epoch: u64, bytes: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + bytes.len());
    wire::put_u64(&mut buf, epoch);
    wire::put_u32(&mut buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
    buf
}

/// Decode a [`FrameKind::MapInstall`] payload into `(epoch, map bytes)`.
pub fn decode_map_install(payload: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let n = r.count(1)?;
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        bytes.push(r.u8()?);
    }
    Ok((epoch, bytes))
}

/// A [`FrameKind::PartitionFetch`] payload: one chunk request of a
/// resumable partition export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionFetch {
    /// The partition to export.
    pub partition: u32,
    /// The partition-space size the id is relative to.
    pub num_partitions: u32,
    /// Resume strictly after this `(src, etype)` key; `None` starts over.
    pub cursor: Option<(u64, u16)>,
    /// Edge budget for the chunk.
    pub max_edges: u32,
}

/// Encode a [`PartitionFetch`] payload.
pub fn encode_partition_fetch(fetch: &PartitionFetch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(23);
    wire::put_u32(&mut buf, fetch.partition);
    wire::put_u32(&mut buf, fetch.num_partitions);
    let (src, etype) = fetch.cursor.unwrap_or((0, 0));
    buf.push(u8::from(fetch.cursor.is_some()));
    wire::put_u64(&mut buf, src);
    wire::put_u16(&mut buf, etype);
    wire::put_u32(&mut buf, fetch.max_edges);
    buf
}

/// Decode a [`PartitionFetch`] payload.
pub fn decode_partition_fetch(payload: &[u8]) -> Result<PartitionFetch, WireError> {
    let mut r = Reader::new(payload);
    let partition = r.u32()?;
    let num_partitions = r.u32()?;
    let has_cursor = r.u8()? != 0;
    let src = r.u64()?;
    let etype = r.u16()?;
    let max_edges = r.u32()?;
    Ok(PartitionFetch {
        partition,
        num_partitions,
        cursor: has_cursor.then_some((src, etype)),
        max_edges,
    })
}

/// A [`FrameKind::PartitionChunkReply`] payload: one snapshot-v2 chunk of
/// a migrating partition (mirrors
/// [`platod2gl_server::PartitionChunk`](platod2gl_server::PartitionChunk)).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionChunkReply {
    /// The chunk reached the end of the partition.
    pub done: bool,
    /// Last `(src, etype)` key included; feed back as the next cursor.
    pub cursor: Option<(u64, u16)>,
    /// Edges inside the chunk.
    pub edges: u64,
    /// Snapshot-v2 bytes (per-block CRC; decode with
    /// [`platod2gl_storage::read_snapshot`](platod2gl_storage::read_snapshot)).
    pub snapshot: Vec<u8>,
}

/// Encode a [`PartitionChunkReply`] payload.
pub fn encode_partition_chunk(chunk: &PartitionChunkReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + chunk.snapshot.len());
    buf.push(u8::from(chunk.done));
    let (src, etype) = chunk.cursor.unwrap_or((0, 0));
    buf.push(u8::from(chunk.cursor.is_some()));
    wire::put_u64(&mut buf, src);
    wire::put_u16(&mut buf, etype);
    wire::put_u64(&mut buf, chunk.edges);
    wire::put_u32(&mut buf, chunk.snapshot.len() as u32);
    buf.extend_from_slice(&chunk.snapshot);
    buf
}

/// Decode a [`PartitionChunkReply`] payload.
pub fn decode_partition_chunk(payload: &[u8]) -> Result<PartitionChunkReply, WireError> {
    let mut r = Reader::new(payload);
    let done = r.u8()? != 0;
    let has_cursor = r.u8()? != 0;
    let src = r.u64()?;
    let etype = r.u16()?;
    let edges = r.u64()?;
    let n = r.count(1)?;
    let mut snapshot = Vec::with_capacity(n);
    for _ in 0..n {
        snapshot.push(r.u8()?);
    }
    Ok(PartitionChunkReply {
        done,
        cursor: has_cursor.then_some((src, etype)),
        edges,
        snapshot,
    })
}

/// Actions carried by [`FrameKind::MigrateCtl`].
pub mod migrate_action {
    /// Arm the migration journal.
    pub const BEGIN: u8 = 0;
    /// Disarm it.
    pub const END: u8 = 1;
}

/// Encode a [`FrameKind::MigrateCtl`] payload.
pub fn encode_migrate_ctl(action: u8, partition: u32, num_partitions: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9);
    buf.push(action);
    wire::put_u32(&mut buf, partition);
    wire::put_u32(&mut buf, num_partitions);
    buf
}

/// Decode a [`FrameKind::MigrateCtl`] payload into
/// `(action, partition, num_partitions)`.
pub fn decode_migrate_ctl(payload: &[u8]) -> Result<(u8, u32, u32), WireError> {
    let mut r = Reader::new(payload);
    let action = r.u8()?;
    if action > migrate_action::END {
        return Err(WireError::BadTag {
            what: "migrate action",
            tag: action,
        });
    }
    Ok((action, r.u32()?, r.u32()?))
}

/// Encode a [`FrameKind::MigrateCtlReply`] payload (one u64: starting
/// sequence on begin, total journaled on end).
pub fn encode_migrate_ctl_reply(value: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    wire::put_u64(&mut buf, value);
    buf
}

/// Decode a [`FrameKind::MigrateCtlReply`] payload.
pub fn decode_migrate_ctl_reply(payload: &[u8]) -> Result<u64, WireError> {
    Reader::new(payload).u64()
}

/// Encode a [`FrameKind::TailFetch`] payload.
pub fn encode_tail_fetch(partition: u32, from_seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    wire::put_u32(&mut buf, partition);
    wire::put_u64(&mut buf, from_seq);
    buf
}

/// Decode a [`FrameKind::TailFetch`] payload into `(partition, from_seq)`.
pub fn decode_tail_fetch(payload: &[u8]) -> Result<(u32, u64), WireError> {
    let mut r = Reader::new(payload);
    Ok((r.u32()?, r.u64()?))
}

/// A [`FrameKind::TailReply`] payload: journaled ops since `from_seq`.
#[derive(Clone, Debug, PartialEq)]
pub struct TailReply {
    /// The sequence to resume the next tail fetch from.
    pub next_seq: u64,
    /// The ops, journal order.
    pub ops: Vec<UpdateOp>,
}

/// Encode a [`TailReply`] payload.
pub fn encode_tail_reply(reply: &TailReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + reply.ops.len() * wire::UPDATE_OP_BYTES as usize);
    wire::put_u64(&mut buf, reply.next_seq);
    wire::put_u32(&mut buf, reply.ops.len() as u32);
    for op in &reply.ops {
        wire::put_update_op(&mut buf, op);
    }
    buf
}

/// Decode a [`TailReply`] payload.
pub fn decode_tail_reply(payload: &[u8]) -> Result<TailReply, WireError> {
    let mut r = Reader::new(payload);
    let next_seq = r.u64()?;
    let n = r.count(wire::UPDATE_OP_BYTES as usize)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(wire::get_update_op(&mut r)?);
    }
    Ok(TailReply { next_seq, ops })
}

/// Encode a [`FrameKind::PartitionStats`] payload.
pub fn encode_partition_stats(num_partitions: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4);
    wire::put_u32(&mut buf, num_partitions);
    buf
}

/// Decode a [`FrameKind::PartitionStats`] payload.
pub fn decode_partition_stats(payload: &[u8]) -> Result<u32, WireError> {
    Reader::new(payload).u32()
}

/// Encode a [`FrameKind::PartitionStatsReply`] payload.
pub fn encode_partition_stats_reply(counts: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + counts.len() * 8);
    wire::put_u32(&mut buf, counts.len() as u32);
    for &c in counts {
        wire::put_u64(&mut buf, c);
    }
    buf
}

/// Decode a [`FrameKind::PartitionStatsReply`] payload.
pub fn decode_partition_stats_reply(payload: &[u8]) -> Result<Vec<u64>, WireError> {
    let mut r = Reader::new(payload);
    let n = r.count(8)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.u64()?);
    }
    Ok(counts)
}

/// Error codes carried by [`FrameKind::ErrorReply`].
pub mod error_code {
    /// A shard worker panicked while applying the batch.
    pub const SHARD_PANICKED: u8 = 1;
    /// The request payload decoded but was semantically invalid.
    pub const BAD_REQUEST: u8 = 2;
}

/// A [`FrameKind::ErrorReply`] payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// One of [`error_code`]'s constants.
    pub code: u8,
    /// The shard the error names (0 when not shard-specific).
    pub shard: u32,
    /// Human-readable detail.
    pub message: String,
}

/// Encode an [`ErrorReply`] payload.
pub fn encode_error_reply(reply: &ErrorReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9 + reply.message.len());
    buf.push(reply.code);
    wire::put_u32(&mut buf, reply.shard);
    wire::put_u32(&mut buf, reply.message.len() as u32);
    buf.extend_from_slice(reply.message.as_bytes());
    buf
}

/// Decode an [`ErrorReply`] payload.
pub fn decode_error_reply(payload: &[u8]) -> Result<ErrorReply, WireError> {
    let mut r = Reader::new(payload);
    let code = r.u8()?;
    let shard = r.u32()?;
    let n = r.count(1)?;
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        bytes.push(r.u8()?);
    }
    let message = String::from_utf8(bytes).map_err(|_| WireError::BadTag {
        what: "error message utf8",
        tag: 0,
    })?;
    Ok(ErrorReply {
        code,
        shard,
        message,
    })
}

/// The server-side timing breakdown every v2 reply carries as a fixed
/// 8-byte trailer ([`wire::REPLY_TIMING_ECHO_BYTES`]) between payload and
/// CRC: how long the request waited before a handler picked it up and how
/// long the handler spent serving it, both in microseconds (saturating).
/// Clients subtract `queue_us + service_us` from observed round-trip time
/// to attribute latency to the network vs. the server. Legacy v1 replies
/// never carry the trailer — old clients see byte-identical frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimingEcho {
    /// Microseconds between frame arrival and handler start.
    pub queue_us: u32,
    /// Microseconds the handler spent producing the reply.
    pub service_us: u32,
}

impl TimingEcho {
    /// Queue plus service time — the total server-resident duration.
    pub fn server_time(&self) -> std::time::Duration {
        std::time::Duration::from_micros(u64::from(self.queue_us) + u64::from(self.service_us))
    }
}

/// Append the timing-echo trailer to a reply payload. Servers call this on
/// every v2 reply — including error replies — immediately before framing.
pub fn append_timing_echo(payload: &mut Vec<u8>, queue_us: u32, service_us: u32) {
    wire::put_u32(payload, queue_us);
    wire::put_u32(payload, service_us);
}

/// Strip the timing-echo trailer off a reply payload, in place, and decode
/// it. `version` is the reply frame's header version: v1 replies carry no
/// echo (zeros, payload untouched); a v2 reply shorter than the trailer is
/// truncated.
pub fn take_timing_echo(version: u8, payload: &mut Vec<u8>) -> Result<TimingEcho, FrameError> {
    if version == PROTOCOL_V1 {
        return Ok(TimingEcho::default());
    }
    let echo_at = payload
        .len()
        .checked_sub(wire::REPLY_TIMING_ECHO_BYTES as usize)
        .ok_or(FrameError::Wire(WireError::Truncated))?;
    let mut r = Reader::new(&payload[echo_at..]);
    let echo = TimingEcho {
        queue_us: r.u32()?,
        service_us: r.u32()?,
    };
    payload.truncate(echo_at);
    Ok(echo)
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    buf.push(u8::from(v.is_some()));
    wire::put_u64(buf, v.unwrap_or(0));
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    let present = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::BadTag {
                what: "option",
                tag,
            })
        }
    };
    let v = r.u64()?;
    Ok(present.then_some(v))
}

/// Smallest encoded [`ExportedSpan`]: empty name (u32 length) + id u64 +
/// parent option (flag + u64) + trace u64 + remote-parent option + start
/// u64 + duration u64.
const EXPORTED_SPAN_MIN_BYTES: usize = 4 + 8 + 9 + 8 + 9 + 8 + 8;

fn put_exported_span(buf: &mut Vec<u8>, s: &ExportedSpan) {
    wire::put_str(buf, &s.name);
    wire::put_u64(buf, s.id);
    put_opt_u64(buf, s.parent);
    wire::put_u64(buf, s.trace_id);
    put_opt_u64(buf, s.remote_parent);
    wire::put_u64(buf, s.start_ns);
    wire::put_u64(buf, s.duration_ns);
}

fn get_exported_span(r: &mut Reader<'_>) -> Result<ExportedSpan, WireError> {
    Ok(ExportedSpan {
        name: wire::get_str(r)?,
        id: r.u64()?,
        parent: get_opt_u64(r)?,
        trace_id: r.u64()?,
        remote_parent: get_opt_u64(r)?,
        start_ns: r.u64()?,
        duration_ns: r.u64()?,
    })
}

/// Encode a [`FrameKind::SpanExport`] payload: the trace id to pull.
pub fn encode_span_export(trace_id: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    wire::put_u64(&mut buf, trace_id);
    buf
}

/// Decode a [`FrameKind::SpanExport`] payload.
pub fn decode_span_export(payload: &[u8]) -> Result<u64, WireError> {
    Reader::new(payload).u64()
}

/// Encode a [`FrameKind::SpanExportReply`] payload: every recent span on
/// this server belonging to the requested trace, completion order.
pub fn encode_span_export_reply(spans: &[ExportedSpan]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + spans.len() * EXPORTED_SPAN_MIN_BYTES);
    wire::put_u32(&mut buf, spans.len() as u32);
    for s in spans {
        put_exported_span(&mut buf, s);
    }
    buf
}

/// Decode a [`FrameKind::SpanExportReply`] payload.
pub fn decode_span_export_reply(payload: &[u8]) -> Result<Vec<ExportedSpan>, WireError> {
    let mut r = Reader::new(payload);
    let n = r.count(EXPORTED_SPAN_MIN_BYTES)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(get_exported_span(&mut r)?);
    }
    Ok(spans)
}

/// Encode a [`FrameKind::ObsExportReply`] payload: the server's full
/// [`RegistryExport`] — metric values with complete histogram buckets (so
/// fleet merging is exact) plus the slow-op log.
pub fn encode_obs_export_reply(export: &RegistryExport) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u32(&mut buf, export.counters.len() as u32);
    for (name, v) in &export.counters {
        wire::put_str(&mut buf, name);
        wire::put_u64(&mut buf, *v);
    }
    wire::put_u32(&mut buf, export.gauges.len() as u32);
    for (name, v) in &export.gauges {
        wire::put_str(&mut buf, name);
        wire::put_u64(&mut buf, *v as u64);
    }
    wire::put_u32(&mut buf, export.histograms.len() as u32);
    for (name, h) in &export.histograms {
        wire::put_str(&mut buf, name);
        wire::put_u64(&mut buf, h.count);
        wire::put_u64(&mut buf, h.mean_ns);
        wire::put_u64(&mut buf, h.p50_ns);
        wire::put_u64(&mut buf, h.p95_ns);
        wire::put_u64(&mut buf, h.p99_ns);
        wire::put_u64(&mut buf, h.max_ns);
        wire::put_u64(&mut buf, h.sum_ns);
        wire::put_u32(&mut buf, h.buckets.len() as u32);
        for &(exp, n) in &h.buckets {
            wire::put_u32(&mut buf, exp);
            wire::put_u64(&mut buf, n);
        }
    }
    wire::put_u32(&mut buf, export.slow.len() as u32);
    for s in &export.slow {
        wire::put_str(&mut buf, &s.op);
        put_opt_u64(&mut buf, s.trace_id);
        wire::put_str(&mut buf, &s.detail);
        wire::put_u64(&mut buf, s.duration_ns);
        wire::put_u32(&mut buf, s.spans.len() as u32);
        for span in &s.spans {
            put_exported_span(&mut buf, span);
        }
    }
    buf
}

/// Decode a [`FrameKind::ObsExportReply`] payload.
pub fn decode_obs_export_reply(payload: &[u8]) -> Result<RegistryExport, WireError> {
    let mut r = Reader::new(payload);
    // Smallest scalar entry: empty name (u32 length) + value u64.
    let n = r.count(12)?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push((wire::get_str(&mut r)?, r.u64()?));
    }
    let n = r.count(12)?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push((wire::get_str(&mut r)?, r.u64()? as i64));
    }
    // Smallest histogram entry: empty name + 7 summary u64s + bucket count.
    let n = r.count(4 + 56 + 4)?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = wire::get_str(&mut r)?;
        let count = r.u64()?;
        let mean_ns = r.u64()?;
        let p50_ns = r.u64()?;
        let p95_ns = r.u64()?;
        let p99_ns = r.u64()?;
        let max_ns = r.u64()?;
        let sum_ns = r.u64()?;
        let b = r.count(12)?;
        let mut buckets = Vec::with_capacity(b);
        for _ in 0..b {
            buckets.push((r.u32()?, r.u64()?));
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                mean_ns,
                p50_ns,
                p95_ns,
                p99_ns,
                max_ns,
                sum_ns,
                buckets,
            },
        ));
    }
    // Smallest slow-op entry: empty op + absent trace option + empty
    // detail + duration u64 + span count.
    let n = r.count(4 + 9 + 4 + 8 + 4)?;
    let mut slow = Vec::with_capacity(n);
    for _ in 0..n {
        let op = wire::get_str(&mut r)?;
        let trace_id = get_opt_u64(&mut r)?;
        let detail = wire::get_str(&mut r)?;
        let duration_ns = r.u64()?;
        let s = r.count(EXPORTED_SPAN_MIN_BYTES)?;
        let mut spans = Vec::with_capacity(s);
        for _ in 0..s {
            spans.push(get_exported_span(&mut r)?);
        }
        slow.push(SlowOpExport {
            op,
            trace_id,
            detail,
            duration_ns,
            spans,
        });
    }
    Ok(RegistryExport {
        counters,
        gauges,
        histograms,
        slow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{Edge, EdgeType, VertexId};
    use platod2gl_server::SlotSource;

    fn roundtrip(kind: FrameKind, payload: &[u8]) -> (FrameKind, Vec<u8>) {
        let encoded = encode_frame(kind, payload);
        read_frame(&mut encoded.as_slice()).expect("roundtrip")
    }

    #[test]
    fn frames_roundtrip_every_kind() {
        for kind in [
            FrameKind::SampleBatch,
            FrameKind::SampleReply,
            FrameKind::UpdateBatch,
            FrameKind::UpdateReply,
            FrameKind::HealthProbe,
            FrameKind::HealthReply,
            FrameKind::HealRequest,
            FrameKind::HealReply,
            FrameKind::TxnApply,
            FrameKind::TxnReply,
            FrameKind::MapFetch,
            FrameKind::MapReply,
            FrameKind::MapInstall,
            FrameKind::MapInstallReply,
            FrameKind::ReplicaBatch,
            FrameKind::ReplicaTxn,
            FrameKind::PartitionFetch,
            FrameKind::PartitionChunkReply,
            FrameKind::MigrateCtl,
            FrameKind::MigrateCtlReply,
            FrameKind::TailFetch,
            FrameKind::TailReply,
            FrameKind::PartitionStats,
            FrameKind::PartitionStatsReply,
            FrameKind::SpanExport,
            FrameKind::SpanExportReply,
            FrameKind::ObsExport,
            FrameKind::ObsExportReply,
            FrameKind::ErrorReply,
        ] {
            let (back_kind, back_payload) = roundtrip(kind, b"xyz");
            assert_eq!(back_kind, kind);
            assert_eq!(back_payload, b"xyz");
        }
    }

    #[test]
    fn frame_sizes_match_the_wire_size_model() {
        let batch = SampleBatch {
            deadline_ms: 250,
            ctx: Some(TraceContext {
                trace_id: 77,
                parent_span: 3,
            }),
            requests: vec![
                (SampleRequest::new(VertexId(1), EdgeType(0), 4), 7),
                (
                    SampleRequest::new(VertexId(2), EdgeType(1), 8).with_trace_id(99),
                    8,
                ),
            ],
        };
        let frame = encode_frame(FrameKind::SampleBatch, &encode_sample_batch(&batch));
        assert_eq!(frame.len() as u64, wire::sample_request_frame_bytes(2));

        let resps = vec![
            SampleResponse {
                neighbors: vec![VertexId(3), VertexId(4)],
                sources: vec![SlotSource::Sampled; 2],
                degraded: false,
                shard: 0,
            },
            SampleResponse {
                neighbors: Vec::new(),
                sources: Vec::new(),
                degraded: true,
                shard: 1,
            },
        ];
        // Reply size models include the v2 timing-echo trailer.
        let mut payload = encode_sample_reply(&resps);
        append_timing_echo(&mut payload, 1, 2);
        let frame = encode_frame(FrameKind::SampleReply, &payload);
        assert_eq!(
            frame.len() as u64,
            wire::sample_response_frame_bytes([2, 0])
        );

        let ops = UpdateBatch {
            deadline_ms: 0,
            ctx: Some(TraceContext {
                trace_id: 5,
                parent_span: 9,
            }),
            ops: vec![UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 1.0)); 3],
        };
        let frame = encode_frame(FrameKind::UpdateBatch, &encode_update_batch(&ops));
        assert_eq!(frame.len() as u64, wire::update_frame_bytes(3));

        let reply = UpdateReply {
            applied_ops: 3,
            queued_ops: 0,
        };
        let mut payload = encode_update_reply(&reply);
        append_timing_echo(&mut payload, 0, 0);
        let frame = encode_frame(FrameKind::UpdateReply, &payload);
        assert_eq!(frame.len() as u64, wire::UPDATE_REPLY_FRAME_BYTES);
    }

    #[test]
    fn timing_echo_appends_and_strips_by_version() {
        let mut payload = encode_update_reply(&UpdateReply {
            applied_ops: 1,
            queued_ops: 2,
        });
        let bare = payload.clone();
        append_timing_echo(&mut payload, 150, 2_000);
        assert_eq!(
            payload.len(),
            bare.len() + wire::REPLY_TIMING_ECHO_BYTES as usize
        );

        // v2: the trailer comes back off and the remainder decodes clean.
        let echo = take_timing_echo(PROTOCOL_V2, &mut payload).expect("echo");
        assert_eq!(
            echo,
            TimingEcho {
                queue_us: 150,
                service_us: 2_000,
            }
        );
        assert_eq!(echo.server_time(), std::time::Duration::from_micros(2_150));
        assert_eq!(payload, bare);

        // v1: no trailer on the wire, zeros reported, payload untouched.
        let mut v1_payload = bare.clone();
        let echo = take_timing_echo(PROTOCOL_V1, &mut v1_payload).expect("v1");
        assert_eq!(echo, TimingEcho::default());
        assert_eq!(v1_payload, bare);

        // A v2 reply too short for the trailer is truncated, not a panic.
        let mut tiny = vec![1u8, 2, 3];
        assert!(matches!(
            take_timing_echo(PROTOCOL_V2, &mut tiny),
            Err(FrameError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn span_export_payloads_roundtrip() {
        assert_eq!(decode_span_export(&encode_span_export(42)), Ok(42));

        let spans = vec![
            ExportedSpan {
                name: "rpc.server.sample".to_string(),
                id: 3,
                parent: None,
                trace_id: 42,
                remote_parent: Some(17),
                start_ns: 1_000,
                duration_ns: 250_000,
            },
            ExportedSpan {
                name: "cluster.sample".to_string(),
                id: 4,
                parent: Some(3),
                trace_id: 42,
                remote_parent: None,
                start_ns: 1_500,
                duration_ns: 200_000,
            },
        ];
        let payload = encode_span_export_reply(&spans);
        assert_eq!(decode_span_export_reply(&payload).expect("spans"), spans);
        assert_eq!(
            decode_span_export_reply(&encode_span_export_reply(&[])).expect("empty"),
            Vec::new()
        );
        // Truncations decode to errors, never panics.
        for cut in 0..payload.len() {
            assert!(
                decode_span_export_reply(&payload[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn obs_export_payloads_roundtrip() {
        let export = RegistryExport {
            counters: vec![
                ("cluster.requests".to_string(), 12),
                ("obs.slow_ops".to_string(), 1),
            ],
            gauges: vec![("pool.idle".to_string(), -3)],
            histograms: vec![(
                "rpc.server.service_ns".to_string(),
                HistogramSnapshot {
                    count: 3,
                    mean_ns: 1_500,
                    p50_ns: 2_048,
                    p95_ns: 4_096,
                    p99_ns: 4_096,
                    max_ns: 3_000,
                    sum_ns: 4_500,
                    buckets: vec![(10, 2), (11, 1)],
                },
            )],
            slow: vec![SlowOpExport {
                op: "rpc.server.update".to_string(),
                trace_id: Some(42),
                detail: "ops=64".to_string(),
                duration_ns: 9_000_000,
                spans: vec![ExportedSpan {
                    name: "apply".to_string(),
                    id: 9,
                    parent: None,
                    trace_id: 42,
                    remote_parent: Some(2),
                    start_ns: 0,
                    duration_ns: 9_000_000,
                }],
            }],
        };
        let payload = encode_obs_export_reply(&export);
        assert_eq!(decode_obs_export_reply(&payload).expect("export"), export);
        assert_eq!(
            decode_obs_export_reply(&encode_obs_export_reply(&RegistryExport::default()))
                .expect("empty"),
            RegistryExport::default()
        );
        // Truncations decode to errors, never panics.
        for cut in 0..payload.len() {
            assert!(
                decode_obs_export_reply(&payload[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_without_panics() {
        let good = encode_frame(FrameKind::HealthProbe, &[]);

        // Truncation at every cut point: either an Io (short read) error
        // or a graceful decode error, never a panic.
        for cut in 0..good.len() {
            assert!(read_frame(&mut &good[..cut]).is_err(), "cut at {cut}");
        }

        // Flip one payload byte: the CRC must catch it.
        let batch = encode_frame(
            FrameKind::SampleBatch,
            &encode_sample_batch(&SampleBatch {
                deadline_ms: 0,
                ctx: None,
                requests: vec![(SampleRequest::new(VertexId(9), EdgeType(0), 2), 1)],
            }),
        );
        for i in 4..batch.len() {
            let mut bad = batch.clone();
            bad[i] ^= 0x40;
            match read_frame(&mut bad.as_slice()) {
                Err(_) => {}
                // A flip in the length prefix region is out of scope here
                // (i starts at 4), so success means the CRC failed us.
                Ok(_) => panic!("flipped byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut huge = Vec::new();
        wire::put_u32(&mut huge, u32::MAX);
        huge.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(FrameError::BadLength { len: u32::MAX })
        ));
        // Undersized too: a length that cannot hold version+kind+crc.
        let mut tiny = Vec::new();
        wire::put_u32(&mut tiny, 3);
        tiny.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            read_frame(&mut tiny.as_slice()),
            Err(FrameError::BadLength { len: 3 })
        ));
    }

    #[test]
    fn wrong_version_and_unknown_kind_are_rejected() {
        let mut frame = encode_frame(FrameKind::HealReply, &encode_heal_reply(1));
        frame[4] = 9; // version byte
        let crc = crc32c(&frame[4..frame.len() - 4]);
        let at = frame.len() - 4;
        frame[at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::BadVersion(9))
        ));

        let mut frame = encode_frame(FrameKind::HealReply, &encode_heal_reply(1));
        frame[5] = 0x44; // kind byte
        let crc = crc32c(&frame[4..frame.len() - 4]);
        let at = frame.len() - 4;
        frame[at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::BadKind(0x44))
        ));
    }

    #[test]
    fn both_versions_decode_and_reply_frames_mirror_the_request() {
        // v2 round-trip keeps the correlation id.
        let v2 = encode_frame_v2(FrameKind::HealthProbe, 0xfeed_beef_cafe_0001, b"pp");
        let (header, payload) = read_frame_ex(&mut v2.as_slice()).expect("v2");
        assert_eq!(header.version, PROTOCOL_V2);
        assert_eq!(header.kind, FrameKind::HealthProbe);
        assert_eq!(header.req_id, 0xfeed_beef_cafe_0001);
        assert_eq!(payload, b"pp");

        // v1 round-trip reports id 0.
        let v1 = encode_frame_v1(FrameKind::HealthProbe, b"qq");
        let (header, payload) = read_frame_ex(&mut v1.as_slice()).expect("v1");
        assert_eq!(header.version, PROTOCOL_V1);
        assert_eq!(header.req_id, 0);
        assert_eq!(payload, b"qq");
        assert_eq!(v2.len(), v1.len() + 8, "v2 header adds exactly req_id");

        // A reply to a v1 request is a v1 frame; to a v2 request, a v2
        // frame under the same id.
        let (req_v1, _) = read_frame_ex(&mut v1.as_slice()).expect("v1");
        let reply = encode_reply_frame(&req_v1, FrameKind::HealthReply, b"r");
        let (h, _) = read_frame_ex(&mut reply.as_slice()).expect("reply");
        assert_eq!(h.version, PROTOCOL_V1);
        let (req_v2, _) = read_frame_ex(&mut v2.as_slice()).expect("v2");
        let reply = encode_reply_frame(&req_v2, FrameKind::HealthReply, b"r");
        let (h, _) = read_frame_ex(&mut reply.as_slice()).expect("reply");
        assert_eq!((h.version, h.req_id), (PROTOCOL_V2, req_v2.req_id));
    }

    #[test]
    fn zero_copy_parse_agrees_with_the_streaming_reader() {
        for frame in [
            encode_frame_v2(FrameKind::HealReply, 42, &encode_heal_reply(7)),
            encode_frame_v1(FrameKind::HealReply, &encode_heal_reply(7)),
        ] {
            let total = frame_len(&frame).expect("len").expect("complete");
            assert_eq!(total, frame.len());
            let (header, payload) = parse_frame(&frame).expect("parse");
            let (stream_header, stream_payload) =
                read_frame_ex(&mut frame.as_slice()).expect("read");
            assert_eq!(header, stream_header);
            assert_eq!(payload, stream_payload.as_slice());
        }
        // An incomplete prefix is "not yet", not an error.
        assert!(matches!(frame_len(&[1, 2]), Ok(None)));
        // A forged prefix is rejected at peek time, before any buffering.
        let mut huge = Vec::new();
        wire::put_u32(&mut huge, u32::MAX);
        assert!(matches!(
            frame_len(&huge),
            Err(FrameError::BadLength { len: u32::MAX })
        ));
    }

    #[test]
    fn v2_frame_too_short_for_its_header_is_rejected() {
        // len = 8 can hold a v1 header but not a v2 one; forge a frame
        // claiming version 2 at that length with a valid CRC.
        let mut body = vec![PROTOCOL_V2, FrameKind::HealthProbe as u8, 0, 0];
        let crc = crc32c(&body);
        wire::put_u32(&mut body, crc);
        let mut frame = Vec::new();
        wire::put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        assert!(matches!(
            read_frame_ex(&mut frame.as_slice()),
            Err(FrameError::BadLength { len: 8 })
        ));
        assert!(matches!(
            parse_frame(&frame),
            Err(FrameError::BadLength { len: 8 })
        ));
    }

    #[test]
    fn health_and_error_payloads_roundtrip() {
        let health = HealthReply {
            graph_version: 42,
            healths: vec![
                ShardHealth::Healthy,
                ShardHealth::Degraded,
                ShardHealth::Failed,
            ],
        };
        let back = decode_health_reply(&encode_health_reply(&health)).expect("health");
        assert_eq!(back, health);

        let err = ErrorReply {
            code: error_code::SHARD_PANICKED,
            shard: 3,
            message: "worker for shard 3 panicked: boom".to_string(),
        };
        let back = decode_error_reply(&encode_error_reply(&err)).expect("error");
        assert_eq!(back, err);

        assert_eq!(decode_heal_request(&encode_heal_request(7)), Ok(7));
        assert_eq!(decode_heal_reply(&encode_heal_reply(11)), Ok(11));
    }

    #[test]
    fn fleet_payloads_roundtrip() {
        for reply in [
            MapReply {
                epoch: 0,
                bytes: None,
            },
            MapReply {
                epoch: 42,
                bytes: Some(vec![1, 2, 3, 4, 5]),
            },
            MapReply {
                epoch: 7,
                bytes: Some(Vec::new()),
            },
        ] {
            assert_eq!(
                decode_map_reply(&encode_map_reply(&reply)).expect("map reply"),
                reply
            );
        }
        assert_eq!(
            decode_map_install(&encode_map_install(9, &[0xaa, 0xbb])).expect("install"),
            (9, vec![0xaa, 0xbb])
        );

        for fetch in [
            PartitionFetch {
                partition: 3,
                num_partitions: 64,
                cursor: None,
                max_edges: 10_000,
            },
            PartitionFetch {
                partition: 63,
                num_partitions: 64,
                cursor: Some((0xdead_beef, 7)),
                max_edges: 1,
            },
        ] {
            assert_eq!(
                decode_partition_fetch(&encode_partition_fetch(&fetch)).expect("fetch"),
                fetch
            );
        }

        let chunk = PartitionChunkReply {
            done: false,
            cursor: Some((19, 2)),
            edges: 55,
            snapshot: vec![9u8; 128],
        };
        assert_eq!(
            decode_partition_chunk(&encode_partition_chunk(&chunk)).expect("chunk"),
            chunk
        );

        assert_eq!(
            decode_migrate_ctl(&encode_migrate_ctl(migrate_action::BEGIN, 5, 64)).expect("ctl"),
            (migrate_action::BEGIN, 5, 64)
        );
        assert!(decode_migrate_ctl(&encode_migrate_ctl(9, 5, 64)).is_err());
        assert_eq!(
            decode_migrate_ctl_reply(&encode_migrate_ctl_reply(123)),
            Ok(123)
        );

        assert_eq!(
            decode_tail_fetch(&encode_tail_fetch(5, 999)).expect("tail fetch"),
            (5, 999)
        );
        let tail = TailReply {
            next_seq: 17,
            ops: vec![
                UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 1.5)),
                UpdateOp::Delete {
                    src: VertexId(3),
                    dst: VertexId(4),
                    etype: EdgeType(2),
                },
            ],
        };
        assert_eq!(
            decode_tail_reply(&encode_tail_reply(&tail)).expect("tail reply"),
            tail
        );

        assert_eq!(decode_partition_stats(&encode_partition_stats(64)), Ok(64));
        let counts = vec![0u64, 3, 99, u64::MAX];
        assert_eq!(
            decode_partition_stats_reply(&encode_partition_stats_reply(&counts)).expect("stats"),
            counts
        );

        // Truncations decode to errors, never panics.
        let payload = encode_partition_chunk(&chunk);
        for cut in 0..payload.len() {
            assert!(
                decode_partition_chunk(&payload[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let payload = encode_tail_reply(&tail);
        for cut in 0..payload.len() {
            assert!(decode_tail_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn txn_payloads_roundtrip_and_sizes_match() {
        let apply = TxnApply {
            txn_id: 0xdead_beef,
            ctx: Some(TraceContext {
                trace_id: 6,
                parent_span: 2,
            }),
            ops: vec![
                TxnOp::InsertEdge(Edge::new(VertexId(1), VertexId(2), 0.5)),
                TxnOp::DeleteEdge {
                    src: VertexId(3),
                    dst: VertexId(4),
                    etype: EdgeType(1),
                },
                TxnOp::UpsertVertex {
                    vertex: VertexId(5),
                },
            ],
        };
        let payload = encode_txn_apply(&apply);
        let frame = encode_frame(FrameKind::TxnApply, &payload);
        assert_eq!(frame.len() as u64, wire::txn_frame_bytes(3));
        assert_eq!(decode_txn_apply(&payload).expect("apply"), apply);

        let committed = TxnReply::Committed(TxnReceipt {
            txn_id: 7,
            ops_applied: 3,
            graph_version: 12,
            deduped: true,
        });
        let payload = encode_txn_reply(&committed);
        let mut echoed = payload.clone();
        append_timing_echo(&mut echoed, 5, 10);
        let frame = encode_frame(FrameKind::TxnReply, &echoed);
        assert_eq!(frame.len() as u64, wire::TXN_REPLY_FRAME_BYTES);
        assert_eq!(decode_txn_reply(&payload).expect("committed"), committed);

        let rejected = TxnReply::Rejected {
            txn_id: 9,
            violations: vec![
                TxnViolation {
                    op_index: 0,
                    kind: ViolationKind::DanglingDelete,
                    detail: "edge (1, 0, 2) does not exist".to_string(),
                },
                TxnViolation {
                    op_index: 4,
                    kind: ViolationKind::NonFiniteWeight,
                    detail: String::new(),
                },
            ],
        };
        let back = decode_txn_reply(&encode_txn_reply(&rejected)).expect("rejected");
        assert_eq!(back, rejected);

        let store_err = TxnReply::StoreError {
            shard: 2,
            code: error_code::SHARD_PANICKED,
            message: "worker for shard 2 panicked".to_string(),
        };
        let back = decode_txn_reply(&encode_txn_reply(&store_err)).expect("store error");
        assert_eq!(back, store_err);

        // Truncations decode to errors, never panics.
        let payload = encode_txn_reply(&rejected);
        for cut in 0..payload.len() {
            assert!(decode_txn_reply(&payload[..cut]).is_err(), "cut at {cut}");
        }
        // Unknown status byte.
        assert!(matches!(
            decode_txn_reply(&[9u8]),
            Err(WireError::BadTag {
                what: "txn reply status",
                ..
            })
        ));
    }
}
