//! Live connection-table bookkeeping for `/debug/rpc`.
//!
//! Both server backends maintain one [`RpcServerStats`]: connections
//! register on accept and deregister on close, per-connection counters
//! are plain atomics touched on the hot path without locks. The admin
//! plane reads a point-in-time snapshot through the
//! [`RpcIntrospect`](platod2gl_admin::RpcIntrospect) trait, which
//! [`ServerIntrospect`] implements — wire a server into an
//! `AdminServer::bind_with_rpc` and `GET /debug/rpc` serves the table.

use platod2gl_admin::{RpcConnView, RpcIntrospect, RpcSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Per-connection live counters (lock-free on the request path).
pub(crate) struct ConnInfo {
    pub peer: String,
    pub opened: Instant,
    /// 0 until the first good frame names the protocol version.
    pub protocol: AtomicU8,
    pub frames: AtomicU64,
    pub in_flight: AtomicU64,
}

impl ConnInfo {
    pub fn new(peer: String) -> Arc<Self> {
        Arc::new(Self {
            peer,
            opened: Instant::now(),
            protocol: AtomicU8::new(0),
            frames: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        })
    }

    /// Record one served frame under `version`, retiring its in-flight
    /// slot.
    pub fn served(&self, version: u8) {
        self.protocol.store(version, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
    }
}

/// One server's aggregate serving state plus its connection table.
pub(crate) struct RpcServerStats {
    backend: Mutex<&'static str>,
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    conns: Mutex<HashMap<u64, Arc<ConnInfo>>>,
    next_conn_id: AtomicU64,
}

impl RpcServerStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            backend: Mutex::new("unbound"),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        })
    }

    pub fn set_backend(&self, name: &'static str) {
        *lock(&self.backend) = name;
    }

    /// Register a fresh connection; returns its table key.
    pub fn open(&self, info: Arc<ConnInfo>) -> u64 {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        lock(&self.conns).insert(id, info);
        id
    }

    pub fn close(&self, id: u64) {
        lock(&self.conns).remove(&id);
    }

    pub fn open_connections(&self) -> u64 {
        lock(&self.conns).len() as u64
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cheap cloneable handle onto a server's live connection table;
/// implements the admin plane's [`RpcIntrospect`] so `GET /debug/rpc`
/// can serve it.
#[derive(Clone)]
pub struct ServerIntrospect(pub(crate) Arc<RpcServerStats>);

impl RpcIntrospect for ServerIntrospect {
    fn rpc_snapshot(&self) -> RpcSnapshot {
        let conns: Vec<RpcConnView> = lock(&self.0.conns)
            .values()
            .map(|c| RpcConnView {
                peer: c.peer.clone(),
                protocol: c.protocol.load(Ordering::Relaxed),
                frames: c.frames.load(Ordering::Relaxed),
                in_flight: c.in_flight.load(Ordering::Relaxed),
                age_ms: c.opened.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            })
            .collect();
        RpcSnapshot {
            backend: lock(&self.0.backend).to_string(),
            accepted: self.0.accepted.load(Ordering::Relaxed),
            rejected: self.0.rejected.load(Ordering::Relaxed),
            open: self.0.open_connections(),
            conns,
        }
    }
}
