//! # Temporal graph plane: the recency-decay maintenance worker
//!
//! Dynamic interaction graphs age: an edge observed a week ago should
//! carry less sampling weight than one observed a minute ago, or hub
//! neighborhoods ossify around stale interests. PlatoD2GL keeps event
//! times as a first-class per-edge column in the storage layer
//! ([`DynamicGraphStore::edge_ts`]); this crate turns those timestamps
//! into weights with the standard exponential recency kernel
//!
//! ```text
//!   w' = max(w · exp(-λ · (now - ts)), floor)
//! ```
//!
//! applied **in place** through the samtree's floored FSTable update
//! ([`DynamicGraphStore::decay_recency`]) — `O(log n)` per touched edge,
//! no rebuild, and the inverse-CDF sampling invariant (all weights
//! strictly positive once set) is preserved by the clamp.
//!
//! A full-store sweep is too expensive to run inline with training, so
//! [`RecencyDecay`] amortizes it: each [`RecencyDecay::tick`] decays at
//! most [`DecayConfig::batch_sources`] source neighborhoods, resuming
//! from a persistent `(src, etype)` cursor, and reports when a sweep
//! wraps. Interleave ticks with update batches (or run them from a
//! maintenance thread) and the whole store decays continuously at a
//! bounded per-tick cost.
//!
//! Everything the worker does is counted under `temporal.*` in the
//! store's observability registry, next to the sampler's
//! `temporal.window_retries` / `temporal.window_fallbacks`.

use platod2gl_graph::{EdgeType, Error, VertexId};
use platod2gl_obs::{Counter, Registry};
use platod2gl_storage::DynamicGraphStore;
use std::sync::Arc;

/// Recency-decay policy.
#[derive(Clone, Copy, Debug)]
pub struct DecayConfig {
    /// Decay rate per time unit: an edge `Δt` old keeps `exp(-λ·Δt)` of
    /// its weight. `0` disables decay (ticks become no-ops).
    pub lambda: f64,
    /// Strictly positive weight floor. Decay clamps here instead of
    /// driving weights to (or past) zero, so every aged edge remains
    /// drawable and the FSTable never underflows.
    pub floor: f64,
    /// Source neighborhoods decayed per [`RecencyDecay::tick`] — the
    /// amortization knob.
    pub batch_sources: usize,
}

impl Default for DecayConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            floor: 1e-6,
            batch_sources: 64,
        }
    }
}

impl DecayConfig {
    /// Validate the policy.
    pub fn validated(self) -> Result<Self, Error> {
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(Error::invalid_config(
                "decay lambda must be finite and >= 0",
            ));
        }
        if !self.floor.is_finite() || self.floor <= 0.0 {
            return Err(Error::invalid_config(
                "decay floor must be finite and strictly positive",
            ));
        }
        if self.batch_sources == 0 {
            return Err(Error::invalid_config("batch_sources must be at least 1"));
        }
        Ok(self)
    }
}

/// What one [`RecencyDecay::tick`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecayTick {
    /// Source neighborhoods visited this tick.
    pub sources: usize,
    /// Edges examined across those sources.
    pub scanned: usize,
    /// Edges whose weight actually shrank.
    pub decayed: usize,
    /// Edges clamped at the floor this tick.
    pub floored: usize,
    /// This tick reached the end of the directory: the sweep wrapped and
    /// the next tick starts a fresh pass.
    pub sweep_completed: bool,
}

/// The amortized recency-decay worker. One instance per store; keeps the
/// resume cursor between ticks.
pub struct RecencyDecay {
    cfg: DecayConfig,
    /// Resume strictly after this `(src, etype)` key; `None` starts a
    /// fresh sweep.
    cursor: Option<(u64, u16)>,
    batches: Arc<Counter>,
    sources: Arc<Counter>,
    scanned: Arc<Counter>,
    decayed: Arc<Counter>,
    floored: Arc<Counter>,
    sweeps: Arc<Counter>,
}

impl RecencyDecay {
    /// Build a worker, registering its counters as `temporal.*` in
    /// `registry` (pass the store's registry so decay telemetry lands next
    /// to sampling telemetry).
    pub fn new(cfg: DecayConfig, registry: &Registry) -> Result<Self, Error> {
        let cfg = cfg.validated()?;
        Ok(Self {
            cfg,
            cursor: None,
            batches: registry.counter("temporal.decay_batches"),
            sources: registry.counter("temporal.decay_sources"),
            scanned: registry.counter("temporal.scanned_edges"),
            decayed: registry.counter("temporal.decayed_edges"),
            floored: registry.counter("temporal.floored_edges"),
            sweeps: registry.counter("temporal.decay_sweeps"),
        })
    }

    /// The policy in effect.
    pub fn config(&self) -> &DecayConfig {
        &self.cfg
    }

    /// Where the next tick resumes (`None` = start of a sweep).
    pub fn cursor(&self) -> Option<(u64, u16)> {
        self.cursor
    }

    /// Decay up to `batch_sources` source neighborhoods at time `now`,
    /// resuming from the cursor. Timeless (`ts == 0`) edges are never
    /// touched; neither are edges stamped at or after `now`.
    pub fn tick(&mut self, store: &DynamicGraphStore, now: u64) -> DecayTick {
        let mut out = DecayTick::default();
        if self.cfg.lambda == 0.0 {
            return out;
        }
        // Census under the directory's shard locks: keys only, sorted so
        // the cursor is a total order and a wrapping sweep visits every
        // resident source exactly once (new sources racing in land in the
        // next sweep at the latest).
        let mut keys: Vec<(u64, u16)> = Vec::new();
        store.for_each_source(|src, etype, _len| {
            let key = (src.raw(), etype.0);
            if self.cursor.is_none_or(|cur| key > cur) {
                keys.push(key);
            }
        });
        keys.sort_unstable();
        let take = keys.len().min(self.cfg.batch_sources);
        for &(src, etype) in &keys[..take] {
            let o = store.decay_recency(
                VertexId(src),
                EdgeType(etype),
                now,
                self.cfg.lambda,
                self.cfg.floor,
            );
            out.sources += 1;
            out.scanned += o.scanned;
            out.decayed += o.decayed;
            out.floored += o.floored;
        }
        out.sweep_completed = take == keys.len();
        self.cursor = if out.sweep_completed {
            None
        } else {
            keys[..take].last().copied().or(self.cursor)
        };
        self.batches.inc();
        self.sources.add(out.sources as u64);
        self.scanned.add(out.scanned as u64);
        self.decayed.add(out.decayed as u64);
        self.floored.add(out.floored as u64);
        if out.sweep_completed {
            self.sweeps.inc();
        }
        out
    }

    /// Run ticks until one sweep completes; returns the aggregate. Handy
    /// for maintenance windows and tests; production interleaves
    /// [`RecencyDecay::tick`] with update traffic instead.
    pub fn run_sweep(&mut self, store: &DynamicGraphStore, now: u64) -> DecayTick {
        let mut total = DecayTick::default();
        loop {
            let t = self.tick(store, now);
            total.sources += t.sources;
            total.scanned += t.scanned;
            total.decayed += t.decayed;
            total.floored += t.floored;
            if t.sweep_completed {
                total.sweep_completed = true;
                return total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platod2gl_graph::{Edge, GraphStore};
    use platod2gl_storage::StoreConfig;

    const ET: EdgeType = EdgeType(0);

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn stamped_store(sources: u64) -> DynamicGraphStore {
        let store = DynamicGraphStore::new(StoreConfig::default());
        for s in 0..sources {
            // Edge ages spread across [0, 900]; one timeless edge per
            // source as the control group.
            for d in 1..=9u64 {
                store.insert_edge(Edge::new(v(s), v(1000 + d), 1.0).at(100 * d));
            }
            store.insert_edge(Edge::new(v(s), v(2000), 1.0));
        }
        store
    }

    #[test]
    fn config_validation_rejects_bad_policies() {
        assert!(DecayConfig::default().validated().is_ok());
        for bad in [
            DecayConfig {
                lambda: -1.0,
                ..DecayConfig::default()
            },
            DecayConfig {
                lambda: f64::NAN,
                ..DecayConfig::default()
            },
            DecayConfig {
                floor: 0.0,
                ..DecayConfig::default()
            },
            DecayConfig {
                batch_sources: 0,
                ..DecayConfig::default()
            },
        ] {
            assert!(bad.validated().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sweep_decays_stamped_edges_and_spares_timeless_ones() {
        let store = stamped_store(4);
        let registry = Registry::new();
        let mut worker = RecencyDecay::new(
            DecayConfig {
                lambda: 1e-3,
                floor: 1e-6,
                batch_sources: 64,
            },
            &registry,
        )
        .expect("valid policy");
        let total = worker.run_sweep(&store, 1_000);
        assert!(total.sweep_completed);
        assert_eq!(total.sources, 4);
        assert_eq!(total.decayed, 4 * 9, "every stamped edge shrank");
        for s in 0..4u64 {
            // The older the edge, the smaller the weight.
            let mut prev = 0.0;
            for d in 1..=9u64 {
                let w = store.edge_weight(v(s), v(1000 + d), ET).expect("present");
                let expect = (-1e-3 * (1_000 - 100 * d) as f64).exp();
                assert!((w - expect).abs() < 1e-12, "w={w} expect={expect}");
                assert!(w > prev);
                prev = w;
            }
            // Timeless control edge untouched.
            assert_eq!(store.edge_weight(v(s), v(2000), ET), Some(1.0));
        }
    }

    #[test]
    fn ticks_amortize_and_the_cursor_wraps() {
        let store = stamped_store(10);
        let registry = Registry::new();
        let mut worker = RecencyDecay::new(
            DecayConfig {
                batch_sources: 3,
                ..DecayConfig::default()
            },
            &registry,
        )
        .expect("valid policy");
        let mut sources = 0;
        let mut ticks = 0;
        loop {
            let t = worker.tick(&store, 1_000);
            assert!(t.sources <= 3, "tick exceeded its batch bound");
            sources += t.sources;
            ticks += 1;
            if t.sweep_completed {
                break;
            }
            assert!(worker.cursor().is_some());
        }
        assert_eq!(sources, 10, "each source visited exactly once per sweep");
        assert_eq!(ticks, 4, "10 sources at batch 3 = 4 ticks");
        assert_eq!(worker.cursor(), None, "sweep wrap resets the cursor");
        assert_eq!(registry.counter("temporal.decay_sweeps").get(), 1);
        assert_eq!(registry.counter("temporal.decay_sources").get(), 10);
    }

    #[test]
    fn aggressive_decay_clamps_at_the_floor_and_stays_samplable() {
        let store = stamped_store(1);
        let registry = Registry::new();
        let mut worker = RecencyDecay::new(
            DecayConfig {
                lambda: 10.0,
                floor: 1e-6,
                batch_sources: 64,
            },
            &registry,
        )
        .expect("valid policy");
        // Two sweeps: the second finds everything already at the floor.
        let first = worker.run_sweep(&store, 10_000);
        assert_eq!(first.floored, 9);
        let second = worker.run_sweep(&store, 10_000);
        assert_eq!(second.decayed, 0, "floored edges never decay further");
        for d in 1..=9u64 {
            // Prefix-sum readback noise: at the floor within a few ULPs.
            let w = store.edge_weight(v(0), v(1000 + d), ET).expect("present");
            assert!((w - 1e-6).abs() <= 1e-9 * 1e-6, "w={w}");
        }
        // The neighborhood still samples (weights all strictly positive).
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let picks = store.sample_neighbors(v(0), ET, 16, &mut rng);
        assert_eq!(picks.len(), 16);
    }

    #[test]
    fn zero_lambda_is_a_no_op() {
        let store = stamped_store(2);
        let registry = Registry::new();
        let mut worker = RecencyDecay::new(
            DecayConfig {
                lambda: 0.0,
                ..DecayConfig::default()
            },
            &registry,
        )
        .expect("valid policy");
        let t = worker.tick(&store, 10_000);
        assert_eq!(t, DecayTick::default());
        assert_eq!(store.edge_weight(v(0), v(1001), ET), Some(1.0));
    }
}
