//! K-hop fan-out sampling against a graph service.
//!
//! Expands a seed batch level by level through
//! [`GraphService::sample_many`], producing the padded node flow
//! GraphSAGE consumes: level `d+1` holds exactly
//! `levels[d].len() * fanouts[d]` vertices, isolated (or degraded) parents
//! self-padded — the tensor shapes stay static no matter what the graph or
//! the fault injector does. The service may be the in-process `Cluster` or
//! a `RemoteCluster` over TCP; the sampler is generic over the boundary.
//!
//! Three serving-path optimizations, all measured by the bench harness:
//!
//! * **frontier dedup** — a vertex appearing `m` times in a level is
//!   sampled once and its draw reused for every occurrence (each slot's
//!   marginal distribution is unchanged because the shared draw is itself
//!   weighted); hub-heavy frontiers collapse to a fraction of the RPCs;
//! * **batch coalescing** — a level's cache misses are issued as one
//!   [`GraphService::sample_many`] call, which a remote service turns into
//!   pipelined frames instead of per-vertex round trips;
//! * **neighbor cache** — draws are served from the epoch-versioned
//!   [`NeighborCache`] when a bounded-staleness entry exists, and misses
//!   refill it. Degraded responses (failed shards) are never cached, so a
//!   healed shard serves fresh samples immediately.

use crate::cache::NeighborCache;
use platod2gl_graph::{EdgeType, TimeWindow, VertexId};
use platod2gl_server::{GraphService, SampleRequest};
use rand::RngCore;
use std::collections::HashMap;

/// A k-hop sampler over one relation with per-hop fanouts.
#[derive(Clone, Debug)]
pub struct KHopSampler {
    pub etype: EdgeType,
    pub fanouts: Vec<usize>,
}

/// One sampled block plus serving-path accounting.
#[derive(Clone, Debug, Default)]
pub struct SampleOutcome {
    /// `levels[0]` are the seeds; `levels[d + 1]` has exactly
    /// `levels[d].len() * fanouts[d]` entries (self-padded).
    pub levels: Vec<Vec<VertexId>>,
    /// Sample requests answered degraded (failed shard): those slots are
    /// self-padded and the block counts as degraded.
    pub degraded_samples: u64,
    /// Distinct (vertex, level) expansions performed after dedup.
    pub distinct_sampled: u64,
    /// Requests actually issued to the cluster (cache misses).
    pub cluster_requests: u64,
    /// Expansions served by the neighbor cache.
    pub cache_served: u64,
}

impl KHopSampler {
    /// Build a sampler; `fanouts` must name at least one hop.
    pub fn new(etype: EdgeType, fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "zero fanout hop");
        Self { etype, fanouts }
    }

    /// Sample one padded block rooted at `seeds` (no time windows).
    pub fn sample_block<S: GraphService + ?Sized>(
        &self,
        service: &S,
        cache: &NeighborCache,
        seeds: &[VertexId],
        rng: &mut dyn RngCore,
    ) -> SampleOutcome {
        self.sample_block_windowed(service, cache, seeds, &[], rng)
    }

    /// Sample one padded block rooted at `seeds`, each seed under its own
    /// time window.
    ///
    /// `windows` is positionally parallel to `seeds` (`&[]` means
    /// unwindowed everywhere, the [`KHopSampler::sample_block`] behavior).
    /// A slot's window is inherited by every vertex it expands into, hop
    /// after hop — so a seed windowed at its event time never reaches an
    /// edge newer than that event, no matter the depth. Dedup and cache
    /// keys both fold the window in: the same hub under two windows is two
    /// distinct expansions.
    pub fn sample_block_windowed<S: GraphService + ?Sized>(
        &self,
        service: &S,
        cache: &NeighborCache,
        seeds: &[VertexId],
        windows: &[Option<TimeWindow>],
        rng: &mut dyn RngCore,
    ) -> SampleOutcome {
        assert!(
            windows.is_empty() || windows.len() == seeds.len(),
            "windows must be empty or parallel to seeds"
        );
        // Each sample issued below nests under this span, so a slow
        // request's capture shows which block expansion issued it.
        let _span = service.registry().span("pipeline.sample_block");
        let mut out = SampleOutcome {
            levels: Vec::with_capacity(self.fanouts.len() + 1),
            ..Default::default()
        };
        out.levels.push(seeds.to_vec());
        // Per-slot windows for the current level, parallel to
        // `out.levels[d]`.
        let mut level_windows: Vec<Option<TimeWindow>> = if windows.is_empty() {
            vec![None; seeds.len()]
        } else {
            windows.to_vec()
        };
        for (d, &fanout) in self.fanouts.iter().enumerate() {
            // Snapshot the version once per level: all of a level's cache
            // traffic is judged against the same point in time.
            let version = service.graph_version();
            let mut lists: HashMap<(VertexId, Option<TimeWindow>), Vec<VertexId>> =
                HashMap::with_capacity(out.levels[d].len());
            // Pass 1: dedup the frontier and answer what the cache can;
            // misses coalesce into one batch so a remote service ships the
            // whole level as pipelined frames, not per-vertex round trips.
            let mut misses: Vec<SampleRequest> = Vec::new();
            for (&v, &win) in out.levels[d].iter().zip(&level_windows) {
                if lists.contains_key(&(v, win)) {
                    continue;
                }
                out.distinct_sampled += 1;
                match cache.lookup_windowed(v, self.etype, fanout as u32, win, version) {
                    Some(cached) => {
                        out.cache_served += 1;
                        lists.insert((v, win), cached);
                    }
                    None => {
                        // Placeholder keeps later duplicates deduped; pass 2
                        // overwrites it with the real answer.
                        lists.insert((v, win), Vec::new());
                        let mut req = SampleRequest::new(v, self.etype, fanout);
                        if let Some(w) = win {
                            req = req.in_window(w);
                        }
                        misses.push(req);
                    }
                }
            }
            // Pass 2: one coalesced call for the level's misses.
            out.cluster_requests += misses.len() as u64;
            for (req, resp) in misses.iter().zip(service.sample_many(&misses, rng)) {
                if resp.degraded {
                    out.degraded_samples += 1;
                } else {
                    // Cache real answers only — including "no out-edges",
                    // which is knowledge; a degraded empty set is not.
                    cache.insert_windowed(
                        req.vertex,
                        self.etype,
                        fanout as u32,
                        req.window,
                        resp.neighbors.clone(),
                        version,
                    );
                }
                lists.insert((req.vertex, req.window), resp.neighbors);
            }
            let frontier = &out.levels[d];
            let mut next = Vec::with_capacity(frontier.len() * fanout);
            let mut next_windows = Vec::with_capacity(frontier.len() * fanout);
            for (i, &v) in frontier.iter().enumerate() {
                let win = level_windows[i];
                let n = &lists[&(v, win)];
                if n.is_empty() {
                    // Self-loop padding, the standard GraphSAGE fallback.
                    next.extend(std::iter::repeat_n(v, fanout));
                } else {
                    next.extend_from_slice(&n[..n.len().min(fanout)]);
                    // Short lists (possible under degradation) fill with
                    // uniform redraws from what we have.
                    for _ in n.len()..fanout {
                        next.push(n[rng.next_u64() as usize % n.len()]);
                    }
                }
                // Children inherit the parent slot's window.
                next_windows.extend(std::iter::repeat_n(win, fanout));
            }
            out.levels.push(next);
            level_windows = next_windows;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, NeighborCache};
    use platod2gl_graph::{Edge, GraphStore};
    use platod2gl_server::{Cluster, ClusterConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ET: EdgeType = EdgeType(0);

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn cluster_with_star() -> Cluster {
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(3)
                .build()
                .expect("valid config"),
        );
        // 0 -> 1..=5, each i -> i*10, i*10+1.
        for i in 1..=5u64 {
            c.insert_edge(Edge::new(v(0), v(i), 1.0));
            c.insert_edge(Edge::new(v(i), v(i * 10), 1.0));
            c.insert_edge(Edge::new(v(i), v(i * 10 + 1), 1.0));
        }
        c
    }

    #[test]
    fn block_shapes_are_static_and_padded() {
        let c = cluster_with_star();
        let cache = NeighborCache::new(CacheConfig::disabled());
        let sampler = KHopSampler::new(ET, vec![3, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        // Seed 999 is isolated: its whole subtree must be self-padding.
        let out = sampler.sample_block(&c, &cache, &[v(0), v(999)], &mut rng);
        assert_eq!(out.levels.len(), 3);
        assert_eq!(out.levels[1].len(), 2 * 3);
        assert_eq!(out.levels[2].len(), 6 * 2);
        assert!(out.levels[1][3..6].iter().all(|&u| u == v(999)));
        assert!(out.levels[2][6..12].iter().all(|&u| u == v(999)));
        for &u in &out.levels[1][..3] {
            assert!((1..=5).contains(&u.raw()));
        }
        assert_eq!(out.degraded_samples, 0);
    }

    #[test]
    fn frontier_dedup_collapses_duplicate_requests() {
        let c = cluster_with_star();
        let cache = NeighborCache::new(CacheConfig::disabled());
        let sampler = KHopSampler::new(ET, vec![4]);
        let mut rng = StdRng::seed_from_u64(2);
        let seeds = vec![v(0); 32];
        let out = sampler.sample_block(&c, &cache, &seeds, &mut rng);
        assert_eq!(
            out.distinct_sampled, 1,
            "32 copies of one seed = 1 expansion"
        );
        assert_eq!(out.cluster_requests, 1);
        assert_eq!(out.levels[1].len(), 32 * 4);
    }

    #[test]
    fn cache_serves_repeat_blocks_without_cluster_traffic() {
        let c = cluster_with_star();
        let cache = NeighborCache::new(CacheConfig {
            capacity: 1 << 10,
            shards: 2,
            max_staleness: 8,
        });
        let sampler = KHopSampler::new(ET, vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        let first = sampler.sample_block(&c, &cache, &[v(0)], &mut rng);
        assert!(first.cluster_requests > 0);
        assert_eq!(first.cache_served, 0);
        let again = sampler.sample_block(&c, &cache, &[v(0)], &mut rng);
        // Seed expansion is cached; hop-2 frontiers may differ (they are
        // the cached hop-1 draw, so they are identical -> fully served).
        assert_eq!(again.cluster_requests, 0, "{again:?}");
        assert_eq!(again.cache_served, again.distinct_sampled);
        assert_eq!(again.levels[1], first.levels[1]);
    }

    #[test]
    fn update_beyond_staleness_bound_invalidates() {
        let c = cluster_with_star();
        let cache = NeighborCache::new(CacheConfig {
            capacity: 1 << 10,
            shards: 2,
            max_staleness: 1,
        });
        let sampler = KHopSampler::new(ET, vec![2]);
        let mut rng = StdRng::seed_from_u64(4);
        sampler.sample_block(&c, &cache, &[v(0)], &mut rng);
        // Two update rounds push cached entries past the bound of 1.
        c.insert_edge(Edge::new(v(7), v(8), 1.0));
        c.insert_edge(Edge::new(v(8), v(9), 1.0));
        let out = sampler.sample_block(&c, &cache, &[v(0)], &mut rng);
        assert_eq!(out.cache_served, 0, "stale entry must not serve");
        assert!(out.cluster_requests > 0);
        assert!(cache.stats().stale_evictions > 0);
    }

    #[test]
    fn windowed_block_respects_time_and_propagates_hop_to_hop() {
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        );
        // 0 -> i at time 10*i; each i -> 100*i at time 10*i + 5.
        for i in 1..=9u64 {
            c.insert_edge(Edge::new(v(0), v(i), 1.0).at(10 * i));
            c.insert_edge(Edge::new(v(i), v(100 * i), 1.0).at(10 * i + 5));
        }
        let cache = NeighborCache::new(CacheConfig {
            capacity: 1 << 10,
            shards: 2,
            max_staleness: 8,
        });
        let sampler = KHopSampler::new(ET, vec![6, 4]);
        let mut rng = StdRng::seed_from_u64(11);
        let win = TimeWindow::until(50);
        for _ in 0..8 {
            let out = sampler.sample_block_windowed(&c, &cache, &[v(0)], &[Some(win)], &mut rng);
            // Hop 1: only edges stamped <= 50, i.e. dst 1..=5.
            for &u in &out.levels[1] {
                assert!(
                    (1..=5).contains(&u.raw()),
                    "future edge {} leaked into hop 1",
                    u.raw()
                );
            }
            // Hop 2 inherits the seed's window: i -> 100*i is stamped
            // 10*i + 5, in-window only for i <= 4 — a hop-2 slot is either
            // an allowed grandchild or self-loop padding.
            for (j, &u) in out.levels[2].iter().enumerate() {
                let parent = out.levels[1][j / 4];
                assert!(
                    u == parent || (u.raw() % 100 == 0 && u.raw() / 100 <= 4),
                    "future edge {} leaked into hop 2",
                    u.raw()
                );
            }
        }
        // The same seed unwindowed draws from the full neighborhood and
        // must not be served from the windowed entries.
        let unbounded = sampler.sample_block(&c, &cache, &[v(0)], &mut rng);
        assert!(unbounded.levels[1].iter().any(|&u| u.raw() > 5));
    }

    #[test]
    fn degraded_shard_pads_and_is_never_cached() {
        let c = cluster_with_star();
        let cache = NeighborCache::new(CacheConfig {
            capacity: 1 << 10,
            shards: 2,
            max_staleness: 8,
        });
        // Find a populated vertex on shard 1 and fail that shard.
        let dead = (1..=5u64).map(v).find(|&u| c.route(u) == 1);
        let Some(dead) = dead else {
            return; // routing put nothing on shard 1 at this scale
        };
        c.faults().fail_shard(1);
        let sampler = KHopSampler::new(ET, vec![3]);
        let mut rng = StdRng::seed_from_u64(5);
        let out = sampler.sample_block(&c, &cache, &[dead], &mut rng);
        assert_eq!(out.degraded_samples, 1);
        assert!(out.levels[1].iter().all(|&u| u == dead), "self-padded");
        // Heal and resample: the degraded answer must not have stuck.
        c.heal_shard(1);
        let out = sampler.sample_block(&c, &cache, &[dead], &mut rng);
        assert_eq!(out.degraded_samples, 0);
        assert!(out.levels[1].iter().all(|&u| u != dead), "real neighbors");
    }
}
