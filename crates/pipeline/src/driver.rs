//! The trainer driver: batching, prefetch, and per-stage telemetry.
//!
//! A training epoch is a three-stage pipeline:
//!
//! ```text
//!   sample (k-hop vs cluster+cache) -> gather (features) -> train (SGD)
//! ```
//!
//! Sample and gather are read-only against shared state (`&Cluster`,
//! `&NeighborCache`, `&dyn FeatureProvider`) so they can run on worker
//! threads; train mutates the model and always runs on the caller's
//! thread. With `prefetch_depth > 0` the workers produce finished
//! [`Block`]s into a bounded channel — when the trainer falls behind, the
//! channel fills and the workers block on `send`, which is the
//! backpressure bound: at most `prefetch_depth + workers` blocks exist
//! beyond the one being trained.

use crate::cache::{CacheConfig, CacheStats, NeighborCache};
use crate::sampler::KHopSampler;
use platod2gl_gnn::{gather_features, FeatureProvider, Matrix, SageNet};
use platod2gl_graph::{EdgeType, Error, TimeWindow, VertexId};
use platod2gl_obs::{Counter, Histogram};
use platod2gl_server::{Cluster, GraphService, HistogramSnapshot};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline shape: what to sample, how to batch, how far to run ahead.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Relation to expand over.
    pub etype: EdgeType,
    /// Per-hop fanouts; must match the model's
    /// [`SageNetConfig::fanouts`](platod2gl_gnn::SageNetConfig).
    pub fanouts: Vec<usize>,
    /// Seeds per mini-batch.
    pub batch_size: usize,
    /// Bounded channel capacity between workers and the trainer.
    /// `0` disables prefetch: sample/gather/train run inline.
    pub prefetch_depth: usize,
    /// Producer threads when prefetching.
    pub workers: usize,
    /// Neighbor-cache shape ([`CacheConfig::disabled`] turns it off).
    pub cache: CacheConfig,
    /// Base RNG seed; worker streams derive from `(seed, epoch, worker)`.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            etype: EdgeType::DEFAULT,
            fanouts: vec![5, 5],
            batch_size: 64,
            prefetch_depth: 4,
            workers: 2,
            cache: CacheConfig::default(),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl PipelineConfig {
    /// Start building a validated configuration.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`PipelineConfig`] that validates at [`build`] time.
///
/// [`build`]: PipelineConfigBuilder::build
#[derive(Clone, Debug)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Relation to expand over.
    pub fn etype(mut self, etype: EdgeType) -> Self {
        self.config.etype = etype;
        self
    }

    /// Per-hop fanouts.
    pub fn fanouts(mut self, fanouts: Vec<usize>) -> Self {
        self.config.fanouts = fanouts;
        self
    }

    /// Seeds per mini-batch.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.config.batch_size = n;
        self
    }

    /// Bounded channel capacity between workers and the trainer.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.config.prefetch_depth = depth;
        self
    }

    /// Producer threads when prefetching.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Neighbor-cache shape.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<PipelineConfig, Error> {
        let c = self.config;
        if c.fanouts.is_empty() {
            return Err(Error::invalid_config("fanouts must name at least one hop"));
        }
        if c.fanouts.contains(&0) {
            return Err(Error::invalid_config("every hop fanout must be non-zero"));
        }
        if c.batch_size == 0 {
            return Err(Error::invalid_config("batch_size must be at least 1"));
        }
        if c.cache.capacity > 0 && c.cache.shards == 0 {
            return Err(Error::invalid_config(
                "cache.shards must be at least 1 when the cache is enabled",
            ));
        }
        if c.cache.max_staleness == u64::MAX {
            return Err(Error::invalid_config(
                "cache.max_staleness must be a finite bound (u64::MAX reads as unbounded)",
            ));
        }
        Ok(c)
    }
}

/// One mini-batch of a windowed epoch: seeds, labels, and per-seed time
/// windows (empty = unwindowed batch).
pub type WindowedBatch = (Vec<VertexId>, Vec<usize>, Vec<Option<TimeWindow>>);

/// A fully materialized mini-batch, ready for `train_step_features`.
pub struct Block {
    /// Class labels for the seed vertices.
    pub labels: Vec<usize>,
    /// Per-level feature matrices (`feats[0]` = seeds).
    pub feats: Vec<Matrix>,
    /// Sample requests in this block answered by a degraded shard.
    pub degraded_samples: u64,
}

/// Result of one epoch (or one `run_batches` call).
#[derive(Clone, Debug, Default)]
pub struct EpochReport {
    /// Mini-batches trained.
    pub batches: u64,
    /// Batches containing at least one degraded sample.
    pub degraded_batches: u64,
    /// Mean cross-entropy loss over the batches.
    pub mean_loss: f64,
    /// Mean training accuracy over the batches.
    pub mean_accuracy: f64,
    /// Wall-clock time for the whole call.
    pub elapsed: Duration,
}

impl EpochReport {
    /// Batches per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.batches as f64 / self.elapsed.as_secs_f64()
    }
}

/// Cumulative pipeline telemetry, serializable for the bench harness.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    pub sample: HistogramSnapshot,
    pub gather: HistogramSnapshot,
    pub train: HistogramSnapshot,
    pub cache: CacheStats,
    /// Distinct frontier expansions after dedup.
    pub distinct_sampled: u64,
    /// Requests issued to the cluster (dedup + cache misses only).
    pub cluster_requests: u64,
    /// Frontier slots before dedup (what a naive sampler would issue).
    pub frontier_slots: u64,
}

impl PipelineStats {
    /// Hand-rolled JSON object (the workspace vendors no serde_json).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sample\":{},\"gather\":{},\"train\":{},",
                "\"cache\":{{\"hits\":{},\"stale_hits\":{},\"misses\":{},",
                "\"hit_rate\":{:.4},\"stale_evictions\":{}}},",
                "\"distinct_sampled\":{},\"cluster_requests\":{},",
                "\"frontier_slots\":{}}}"
            ),
            self.sample.to_json(),
            self.gather.to_json(),
            self.train.to_json(),
            self.cache.hits,
            self.cache.stale_hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.stale_evictions,
            self.distinct_sampled,
            self.cluster_requests,
            self.frontier_slots,
        )
    }
}

/// Drives mini-batch GraphSAGE training against a live, mutating graph
/// service — the in-process [`Cluster`] (the default) or any other
/// [`GraphService`], such as the TCP `RemoteCluster` client; the pipeline
/// is generic over that boundary and runs unmodified against either.
///
/// All telemetry records into the service's observability registry
/// ([`GraphService::registry`]) under `pipeline.*` names, so one snapshot
/// covers the whole serving + training stack; [`TrainingPipeline::stats`]
/// remains as a typed view over those handles.
pub struct TrainingPipeline<'a, S: GraphService = Cluster> {
    service: &'a S,
    cfg: PipelineConfig,
    sampler: KHopSampler,
    cache: NeighborCache,
    sample_lat: Arc<Histogram>,
    gather_lat: Arc<Histogram>,
    train_lat: Arc<Histogram>,
    batches: Arc<Counter>,
    degraded_batches: Arc<Counter>,
    distinct_sampled: Arc<Counter>,
    cluster_requests: Arc<Counter>,
    frontier_slots: Arc<Counter>,
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl<'a, S: GraphService> TrainingPipeline<'a, S> {
    /// Build a pipeline over `service` with its own cache instance. Stage
    /// telemetry registers into the service's registry as `pipeline.*`.
    pub fn new(service: &'a S, cfg: PipelineConfig) -> Self {
        let sampler = KHopSampler::new(cfg.etype, cfg.fanouts.clone());
        let registry = service.registry();
        let cache = NeighborCache::with_registry(cfg.cache, registry);
        Self {
            service,
            cfg,
            sampler,
            cache,
            sample_lat: registry.histogram("pipeline.sample_ns"),
            gather_lat: registry.histogram("pipeline.gather_ns"),
            train_lat: registry.histogram("pipeline.train_ns"),
            batches: registry.counter("pipeline.batches"),
            degraded_batches: registry.counter("pipeline.degraded_batches"),
            distinct_sampled: registry.counter("pipeline.distinct_sampled"),
            cluster_requests: registry.counter("pipeline.cluster_requests"),
            frontier_slots: registry.counter("pipeline.frontier_slots"),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The neighbor cache (for inspection in tests and benches).
    pub fn cache(&self) -> &NeighborCache {
        &self.cache
    }

    /// Cumulative telemetry across all epochs run so far.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            sample: self.sample_lat.snapshot(),
            gather: self.gather_lat.snapshot(),
            train: self.train_lat.snapshot(),
            cache: self.cache.stats(),
            distinct_sampled: self.distinct_sampled.get(),
            cluster_requests: self.cluster_requests.get(),
            frontier_slots: self.frontier_slots.get(),
        }
    }

    /// Sample + gather one batch into a trainable [`Block`]. `windows` is
    /// positionally parallel to `seeds` (`&[]` = unwindowed).
    fn produce_block(
        &self,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        labels: &[usize],
        windows: &[Option<TimeWindow>],
        rng: &mut dyn RngCore,
    ) -> Block {
        let t = Instant::now();
        let outcome = {
            let _span = self.service.registry().span("pipeline.sample");
            self.sampler
                .sample_block_windowed(self.service, &self.cache, seeds, windows, rng)
        };
        self.sample_lat.record(t.elapsed());
        self.distinct_sampled.add(outcome.distinct_sampled);
        self.cluster_requests.add(outcome.cluster_requests);
        let slots: u64 = outcome.levels[..outcome.levels.len() - 1]
            .iter()
            .map(|l| l.len() as u64)
            .sum();
        self.frontier_slots.add(slots);

        let t = Instant::now();
        let _span = self.service.registry().span("pipeline.gather");
        let dim = provider.dim();
        let feats = outcome
            .levels
            .iter()
            .map(|level| gather_features(provider, level, dim))
            .collect();
        self.gather_lat.record(t.elapsed());
        Block {
            labels: labels.to_vec(),
            feats,
            degraded_samples: outcome.degraded_samples,
        }
    }

    /// Train on one materialized block, updating the running report.
    fn train_block(&self, net: &mut SageNet, block: Block, report: &mut EpochReport) {
        let t = Instant::now();
        let _span = self.service.registry().span("pipeline.train_step");
        let stats = net.train_step_features(block.feats, &block.labels);
        self.train_lat.record(t.elapsed());
        self.batches.inc();
        report.batches += 1;
        if block.degraded_samples > 0 {
            self.degraded_batches.inc();
            report.degraded_batches += 1;
        }
        report.mean_loss += stats.loss;
        report.mean_accuracy += stats.accuracy;
    }

    /// Run one epoch: shuffle `(seeds, labels)`, chunk into mini-batches,
    /// and train on every batch (prefetched if configured).
    pub fn run_epoch(
        &self,
        net: &mut SageNet,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        labels: &[usize],
        epoch: u64,
    ) -> EpochReport {
        assert_eq!(seeds.len(), labels.len(), "one label per seed");
        let batches = self.shuffled_batches(seeds, labels, &[], epoch);
        self.run_batches(
            net,
            provider,
            batches.into_iter().map(|(s, l, _)| (s, l)).collect(),
            epoch,
        )
    }

    /// Run one *temporal* epoch: like [`TrainingPipeline::run_epoch`], but
    /// seed `i` samples only edges no newer than `seed_times[i]` — the
    /// time-respecting contract, enforced down every hop. The shuffle is
    /// seeded identically to `run_epoch`, so a windowed epoch and its
    /// shuffled-time ablation visit seeds in the same order.
    pub fn run_epoch_windowed(
        &self,
        net: &mut SageNet,
        provider: &dyn FeatureProvider,
        seeds: &[VertexId],
        labels: &[usize],
        seed_times: &[u64],
        epoch: u64,
    ) -> EpochReport {
        assert_eq!(seeds.len(), labels.len(), "one label per seed");
        assert_eq!(seeds.len(), seed_times.len(), "one event time per seed");
        let windows: Vec<Option<TimeWindow>> = seed_times
            .iter()
            .map(|&t| Some(TimeWindow::until(t)))
            .collect();
        let batches = self.shuffled_batches(seeds, labels, &windows, epoch);
        self.run_batches_windowed(net, provider, batches, epoch)
    }

    fn shuffled_batches(
        &self,
        seeds: &[VertexId],
        labels: &[usize],
        windows: &[Option<TimeWindow>],
        epoch: u64,
    ) -> Vec<WindowedBatch> {
        let mut order: Vec<usize> = (0..seeds.len()).collect();
        let mut rng = StdRng::seed_from_u64(mix64(self.cfg.seed ^ mix64(epoch)));
        order.shuffle(&mut rng);
        order
            .chunks(self.cfg.batch_size.max(1))
            .map(|chunk| {
                (
                    chunk.iter().map(|&i| seeds[i]).collect(),
                    chunk.iter().map(|&i| labels[i]).collect(),
                    if windows.is_empty() {
                        Vec::new()
                    } else {
                        chunk.iter().map(|&i| windows[i]).collect()
                    },
                )
            })
            .collect()
    }

    /// Train on an explicit batch list. Public so tests can interleave
    /// fault injection deterministically between two halves of an epoch.
    pub fn run_batches(
        &self,
        net: &mut SageNet,
        provider: &dyn FeatureProvider,
        batches: Vec<(Vec<VertexId>, Vec<usize>)>,
        epoch: u64,
    ) -> EpochReport {
        self.run_batches_windowed(
            net,
            provider,
            batches
                .into_iter()
                .map(|(s, l)| (s, l, Vec::new()))
                .collect(),
            epoch,
        )
    }

    /// [`TrainingPipeline::run_batches`] with per-seed time windows (an
    /// empty window vector means that batch is unwindowed).
    pub fn run_batches_windowed(
        &self,
        net: &mut SageNet,
        provider: &dyn FeatureProvider,
        batches: Vec<WindowedBatch>,
        epoch: u64,
    ) -> EpochReport {
        assert_eq!(
            net.config().fanouts,
            self.cfg.fanouts,
            "model and pipeline fanouts must agree"
        );
        let _span = self.service.registry().span("pipeline.run_batches");
        let started = Instant::now();
        let mut report = EpochReport::default();
        if batches.is_empty() {
            return report;
        }
        if self.cfg.prefetch_depth == 0 || self.cfg.workers == 0 {
            let mut rng = StdRng::seed_from_u64(mix64(self.cfg.seed ^ mix64(epoch) ^ 0x53796e63));
            for (seeds, labels, windows) in &batches {
                let block = self.produce_block(provider, seeds, labels, windows, &mut rng);
                self.train_block(net, block, &mut report);
            }
        } else {
            let workers = self.cfg.workers.min(batches.len());
            let (tx, rx) = sync_channel::<Block>(self.cfg.prefetch_depth);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let batches = &batches;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(mix64(
                            self.cfg.seed ^ mix64(epoch) ^ mix64(w as u64 + 1),
                        ));
                        for (seeds, labels, windows) in batches.iter().skip(w).step_by(workers) {
                            let block =
                                self.produce_block(provider, seeds, labels, windows, &mut rng);
                            // Trainer hung up (panic): just stop producing.
                            if tx.send(block).is_err() {
                                return;
                            }
                        }
                    });
                }
                // Drop the template sender so `rx` closes when the last
                // worker finishes — otherwise the consumer never exits.
                drop(tx);
                while let Ok(block) = rx.recv() {
                    self.train_block(net, block, &mut report);
                }
            });
        }
        if report.batches > 0 {
            report.mean_loss /= report.batches as f64;
            report.mean_accuracy /= report.batches as f64;
        }
        report.elapsed = started.elapsed();
        report
    }
}
