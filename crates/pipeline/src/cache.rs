//! Epoch-versioned neighbor cache with bounded staleness.
//!
//! The sampling path dominates dynamic-graph GNN training (the motivation
//! for the paper's FTS index and the GLISP/FAST pipelines in PAPERS.md):
//! every k-hop expansion re-asks the cluster for the same hub vertices over
//! and over. This cache keeps recent sampled neighbor lists keyed by
//! `(vertex, etype, fanout)` and invalidates them with the cluster's
//! [graph version](platod2gl_server::Cluster::graph_version) rather than a
//! wall clock: an entry inserted at version `v` may be served while
//! `now - v <= max_staleness`, i.e. while at most `max_staleness` update
//! rounds landed since the sample was drawn. That gives *bounded-staleness*
//! reads under a concurrent update stream — the trainer never consumes a
//! neighborhood more than a configured number of versions old, and a quiet
//! graph caches forever.
//!
//! Eviction is a two-generation (segmented) LRU: lookups promote entries to
//! the hot generation, inserts land hot, and when the hot generation fills
//! half a shard's budget the cold generation is dropped wholesale. Every
//! operation is O(1) and the cache is sharded by key hash so prefetch
//! workers do not serialize on one lock.

use platod2gl_graph::{EdgeType, TimeWindow, VertexId};
use platod2gl_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache sizing and staleness policy.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum cached entries across all shards. `0` disables the cache
    /// (every lookup misses, inserts are dropped).
    pub capacity: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// How many graph versions an entry may lag behind the cluster before
    /// it stops being served: `0` means entries die on the first update
    /// round after insertion, `k` means reads may be up to `k` update
    /// rounds stale.
    pub max_staleness: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 15,
            shards: 8,
            max_staleness: 4,
        }
    }
}

impl CacheConfig {
    /// A disabled cache (all lookups miss).
    pub fn disabled() -> Self {
        Self {
            capacity: 0,
            ..Self::default()
        }
    }
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an entry at the current graph version.
    pub hits: u64,
    /// Lookups served from an entry older than the current version but
    /// within the staleness bound.
    pub stale_hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Entries dropped because they exceeded the staleness bound.
    pub stale_evictions: u64,
    /// Entries dropped by generation rotation (capacity pressure).
    pub capacity_evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.stale_hits + self.misses
    }

    /// Fraction of lookups served from cache (fresh or bounded-stale).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.stale_hits) as f64 / lookups as f64
    }
}

/// Cache key. The time window is part of the key: a windowed sample is a
/// *different* population than an unwindowed one over the same `(vertex,
/// etype, fanout)`, and serving one for the other would leak future edges
/// into a temporal batch (or starve an unwindowed batch of them).
type Key = (VertexId, EdgeType, u32, Option<TimeWindow>);

struct Entry {
    neighbors: Vec<VertexId>,
    /// Graph version at which the sample was drawn.
    version: u64,
}

/// One locked shard: a two-generation segmented LRU.
struct Segment {
    hot: HashMap<Key, Entry>,
    cold: HashMap<Key, Entry>,
}

/// Sharded, epoch-versioned neighbor cache.
///
/// Counters live in the shared observability registry when built with
/// [`NeighborCache::with_registry`] (names `pipeline.cache.*`), so one
/// snapshot shows cache behavior next to cluster and storage metrics;
/// [`NeighborCache::new`] keeps them private to this instance.
pub struct NeighborCache {
    cfg: CacheConfig,
    /// Entry budget of one shard's hot generation (half the shard budget).
    half_cap: usize,
    segments: Vec<Mutex<Segment>>,
    hits: Arc<Counter>,
    stale_hits: Arc<Counter>,
    misses: Arc<Counter>,
    stale_evictions: Arc<Counter>,
    capacity_evictions: Arc<Counter>,
    insertions: Arc<Counter>,
}

/// splitmix64 finalizer (the same mix the shard router uses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn key_hash(key: &Key) -> u64 {
    let base = mix(key.0.raw() ^ (u64::from(key.1 .0) << 48) ^ (u64::from(key.2) << 32));
    match key.3 {
        None => base,
        // Mix both bounds in so adjacent windows land on different shards.
        Some(w) => mix(base ^ mix(w.min_ts) ^ w.max_ts),
    }
}

impl NeighborCache {
    /// Build a cache with instance-private counters; `shards` is clamped to
    /// at least 1.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Build a cache whose counters are registered as `pipeline.cache.*`
    /// in `registry`.
    pub fn with_registry(cfg: CacheConfig, registry: &Registry) -> Self {
        Self::build(cfg, Some(registry))
    }

    fn build(cfg: CacheConfig, registry: Option<&Registry>) -> Self {
        let shards = cfg.shards.max(1);
        let half_cap = (cfg.capacity / shards / 2).max(1);
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Arc::new(Counter::default()),
        };
        Self {
            cfg,
            half_cap,
            segments: (0..shards)
                .map(|_| {
                    Mutex::new(Segment {
                        hot: HashMap::new(),
                        cold: HashMap::new(),
                    })
                })
                .collect(),
            hits: counter("pipeline.cache.hits"),
            stale_hits: counter("pipeline.cache.stale_hits"),
            misses: counter("pipeline.cache.misses"),
            stale_evictions: counter("pipeline.cache.stale_evictions"),
            capacity_evictions: counter("pipeline.cache.capacity_evictions"),
            insertions: counter("pipeline.cache.insertions"),
        }
    }

    /// Whether the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.cfg.capacity > 0
    }

    /// The configured staleness bound.
    pub fn max_staleness(&self) -> u64 {
        self.cfg.max_staleness
    }

    /// Entries currently resident (sum over generations and shards).
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                let seg = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                seg.hot.len() + seg.cold.len()
            })
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn segment(&self, key: &Key) -> std::sync::MutexGuard<'_, Segment> {
        let idx = (key_hash(key) % self.segments.len() as u64) as usize;
        self.segments[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// `true` when an entry drawn at `version` may still be served at
    /// graph version `now`.
    fn servable(&self, version: u64, now: u64) -> bool {
        now.saturating_sub(version) <= self.cfg.max_staleness
    }

    /// Rotate generations when the hot one is full; returns entries dropped.
    fn maybe_rotate(&self, seg: &mut Segment) {
        if seg.hot.len() >= self.half_cap {
            let dropped = seg.cold.len();
            seg.cold = std::mem::take(&mut seg.hot);
            if dropped > 0 {
                self.capacity_evictions.add(dropped as u64);
            }
        }
    }

    /// Look up a sampled neighbor list for `(v, etype, fanout)` at the
    /// current graph version `now`. Serves entries within the staleness
    /// bound (promoting them to the hot generation) and drops entries
    /// beyond it. An unwindowed sample is `window: None`; see
    /// [`NeighborCache::lookup_windowed`] for the temporal path.
    pub fn lookup(
        &self,
        v: VertexId,
        etype: EdgeType,
        fanout: u32,
        now: u64,
    ) -> Option<Vec<VertexId>> {
        self.lookup_windowed(v, etype, fanout, None, now)
    }

    /// [`NeighborCache::lookup`] with the time window folded into the key:
    /// windowed and unwindowed samples of the same vertex never alias.
    pub fn lookup_windowed(
        &self,
        v: VertexId,
        etype: EdgeType,
        fanout: u32,
        window: Option<TimeWindow>,
        now: u64,
    ) -> Option<Vec<VertexId>> {
        if !self.enabled() {
            self.misses.inc();
            return None;
        }
        let key = (v, etype, fanout, window);
        let mut seg = self.segment(&key);
        if let Some(entry) = seg.hot.get(&key) {
            if self.servable(entry.version, now) {
                let counter = if entry.version >= now {
                    &self.hits
                } else {
                    &self.stale_hits
                };
                counter.inc();
                return Some(entry.neighbors.clone());
            }
            seg.hot.remove(&key);
            self.stale_evictions.inc();
            self.misses.inc();
            return None;
        }
        if let Some(entry) = seg.cold.remove(&key) {
            if self.servable(entry.version, now) {
                let counter = if entry.version >= now {
                    &self.hits
                } else {
                    &self.stale_hits
                };
                counter.inc();
                let neighbors = entry.neighbors.clone();
                seg.hot.insert(key, entry);
                self.maybe_rotate(&mut seg);
                return Some(neighbors);
            }
            self.stale_evictions.inc();
        }
        self.misses.inc();
        None
    }

    /// Insert a neighbor list sampled at graph version `version` (no time
    /// window).
    pub fn insert(
        &self,
        v: VertexId,
        etype: EdgeType,
        fanout: u32,
        neighbors: Vec<VertexId>,
        version: u64,
    ) {
        self.insert_windowed(v, etype, fanout, None, neighbors, version)
    }

    /// [`NeighborCache::insert`] under a windowed key.
    pub fn insert_windowed(
        &self,
        v: VertexId,
        etype: EdgeType,
        fanout: u32,
        window: Option<TimeWindow>,
        neighbors: Vec<VertexId>,
        version: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let key = (v, etype, fanout, window);
        let mut seg = self.segment(&key);
        seg.cold.remove(&key);
        seg.hot.insert(key, Entry { neighbors, version });
        self.maybe_rotate(&mut seg);
        self.insertions.inc();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            stale_hits: self.stale_hits.get(),
            misses: self.misses.get(),
            stale_evictions: self.stale_evictions.get(),
            capacity_evictions: self.capacity_evictions.get(),
            insertions: self.insertions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ET: EdgeType = EdgeType(0);

    fn v(x: u64) -> VertexId {
        VertexId(x)
    }

    fn cache(capacity: usize, max_staleness: u64) -> NeighborCache {
        NeighborCache::new(CacheConfig {
            capacity,
            shards: 2,
            max_staleness,
        })
    }

    #[test]
    fn serves_within_staleness_bound_only() {
        let c = cache(64, 2);
        c.insert(v(1), ET, 4, vec![v(10), v(11)], 5);
        // Fresh at the insertion version.
        assert_eq!(c.lookup(v(1), ET, 4, 5), Some(vec![v(10), v(11)]));
        // Stale-but-bounded at versions 6 and 7.
        assert!(c.lookup(v(1), ET, 4, 6).is_some());
        assert!(c.lookup(v(1), ET, 4, 7).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.stale_hits, 2);
        // Beyond the bound: must miss and evict.
        assert_eq!(c.lookup(v(1), ET, 4, 8), None);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.stale_evictions, 1);
        // Evicted for good — a later in-bound version cannot resurrect it.
        assert_eq!(c.lookup(v(1), ET, 4, 6), None);
    }

    #[test]
    fn key_includes_etype_and_fanout() {
        let c = cache(64, 10);
        c.insert(v(1), ET, 4, vec![v(10)], 0);
        assert!(c.lookup(v(1), EdgeType(1), 4, 0).is_none());
        assert!(c.lookup(v(1), ET, 8, 0).is_none());
        assert!(c.lookup(v(1), ET, 4, 0).is_some());
    }

    #[test]
    fn windowed_and_unwindowed_entries_never_alias() {
        let c = cache(64, 10);
        let win = TimeWindow::new(100, 200);
        let other = TimeWindow::new(100, 201);
        // Same (vertex, etype, fanout), three distinct populations.
        c.insert(v(1), ET, 4, vec![v(10)], 0);
        c.insert_windowed(v(1), ET, 4, Some(win), vec![v(20)], 0);
        // An unwindowed lookup must not see the windowed entry and vice
        // versa — aliasing here would leak future edges into a temporal
        // batch.
        assert_eq!(c.lookup(v(1), ET, 4, 0), Some(vec![v(10)]));
        assert_eq!(
            c.lookup_windowed(v(1), ET, 4, Some(win), 0),
            Some(vec![v(20)])
        );
        // A *different* window is a different key too.
        assert!(c.lookup_windowed(v(1), ET, 4, Some(other), 0).is_none());
        // Inserting the windowed entry did not clobber the unwindowed one.
        assert_eq!(c.lookup(v(1), ET, 4, 0), Some(vec![v(10)]));
    }

    #[test]
    fn disabled_cache_never_serves() {
        let c = cache(0, 10);
        c.insert(v(1), ET, 4, vec![v(10)], 0);
        assert!(c.lookup(v(1), ET, 4, 0).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn capacity_rotation_bounds_residency() {
        // capacity 8 over 2 shards -> hot budget 2 per shard, total
        // residency can never exceed capacity.
        let c = cache(8, 100);
        for i in 0..1_000u64 {
            c.insert(v(i), ET, 4, vec![v(i + 1)], 0);
        }
        assert!(c.len() <= 8, "resident {} > capacity", c.len());
        assert!(c.stats().capacity_evictions > 0);
    }

    #[test]
    fn lookups_promote_across_generations() {
        let c = NeighborCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
            max_staleness: 100,
        });
        // hot budget = 4. Fill hot, rotate it cold, then keep touching one
        // key: it must survive rotations that drop untouched keys.
        for i in 0..4u64 {
            c.insert(v(i), ET, 4, vec![v(100 + i)], 0);
        }
        for i in 4..12u64 {
            assert!(c.lookup(v(0), ET, 4, 0).is_some(), "key 0 at insert {i}");
            c.insert(v(i), ET, 4, vec![v(100 + i)], 0);
        }
        assert!(c.lookup(v(0), ET, 4, 0).is_some());
        assert!(
            c.lookup(v(5), ET, 4, 0).is_none(),
            "untouched key rotated out"
        );
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c = cache(1 << 10, 4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = v((t * 37 + i) % 128);
                        if c.lookup(key, ET, 4, i / 100).is_none() {
                            c.insert(key, ET, 4, vec![v(i)], i / 100);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.lookups(), 8_000);
        assert!(s.hits + s.stale_hits > 0);
    }
}
