//! # Mini-batch training pipeline
//!
//! End-to-end mini-batch GNN training over the live sharded cluster —
//! the serving loop of PlatoD2GL's training plane, built from three
//! cooperating pieces:
//!
//! * [`KHopSampler`] — expands seed batches level by level through the
//!   cluster's weighted neighbor sampling, deduplicating repeated
//!   frontier vertices and self-padding isolated or degraded ones so the
//!   resulting node flow always has static GraphSAGE shapes.
//! * [`NeighborCache`] — an epoch-versioned, sharded two-generation LRU
//!   keyed by `(vertex, etype, fanout)`. Entries carry the cluster's
//!   monotone graph version at fill time and are servable only while
//!   `now - version <= max_staleness`, giving **bounded-staleness**
//!   reads under concurrent graph updates.
//! * [`TrainingPipeline`] — batches seeds, runs sample+gather on a pool
//!   of prefetch workers feeding a bounded channel (backpressure: at most
//!   `prefetch_depth + workers` blocks in flight), trains on the caller's
//!   thread, and reports per-stage latency histograms, cache hit rates,
//!   and degraded-batch counts.
//!
//! The pipeline is read-only against the cluster, so a writer thread can
//! stream `apply_batch_sharded` updates concurrently — exactly the
//! dynamic-graph training regime the paper targets.

mod cache;
mod driver;
mod sampler;

pub use cache::{CacheConfig, CacheStats, NeighborCache};
pub use driver::{
    Block, EpochReport, PipelineConfig, PipelineConfigBuilder, PipelineStats, TrainingPipeline,
    WindowedBatch,
};
pub use sampler::{KHopSampler, SampleOutcome};
