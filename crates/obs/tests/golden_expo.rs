//! Golden-file test for both exposition formats.
//!
//! Builds a fully deterministic registry (fixed counter/gauge values,
//! histogram observations given as exact nanosecond values, no spans —
//! span timestamps come from a monotonic clock and would not be stable)
//! and compares the rendered JSON and Prometheus text byte-for-byte
//! against checked-in golden files.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p platod2gl-obs --test golden_expo`

use platod2gl_obs::Registry;
use std::path::PathBuf;

fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("cluster.requests").add(1024);
    r.counter("samtree.leaf_ops").add(77);
    r.counter("wal.appends").add(3);
    r.gauge("cluster.graph_version").set(12);
    r.gauge("storage.edges").set(-1); // gauges may go negative
    let h = r.histogram("cluster.sample_latency_ns");
    // One observation per distinct bucket, plus repeats: exps 6, 9, 9, 13.
    h.record_ns(100);
    h.record_ns(1_000);
    h.record_ns(1_023);
    h.record_ns(15_000);
    r
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "exposition drifted from {} — run with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn prometheus_exposition_matches_golden() {
    check(
        "snapshot.prom",
        &golden_registry().snapshot().to_prometheus(),
    );
}

#[test]
fn json_exposition_matches_golden() {
    check("snapshot.json", &golden_registry().snapshot().to_json());
}

#[test]
fn exposition_is_stable_across_snapshots() {
    // Same registry, two snapshots: identical output (name-sorted, no
    // iteration-order leakage from the internal maps).
    let r = golden_registry();
    assert_eq!(r.snapshot().to_json(), r.snapshot().to_json());
    assert_eq!(r.snapshot().to_prometheus(), r.snapshot().to_prometheus());
}
