//! Registry under contention: 8 writer threads hammer counters, gauges,
//! and histograms — resolving handles by name on every iteration, the
//! worst case for the registry's name map — while a reader concurrently
//! takes snapshots. Snapshots must be internally consistent (counter
//! values monotone across reads) and no increment may be lost.

use platod2gl_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const ITERS: u64 = 50_000;

#[test]
fn eight_writers_one_snapshotting_reader_lose_nothing() {
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let registry = Arc::clone(&registry);
            s.spawn(move || {
                for i in 0..ITERS {
                    // Re-resolve by name every iteration: hammers the
                    // registry map, not just the atomics.
                    registry.counter("stress.shared").inc();
                    registry
                        .counter(if t % 2 == 0 {
                            "stress.even"
                        } else {
                            "stress.odd"
                        })
                        .add(2);
                    registry.gauge("stress.gauge").add(1);
                    registry.histogram("stress.lat_ns").record_ns(i + 1);
                }
            });
        }

        // Reader: snapshot continuously until writers finish; the shared
        // counter must never move backwards between consecutive snapshots.
        let reader = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = registry.snapshot();
                    let now = snap.counter("stress.shared").unwrap_or(0);
                    assert!(
                        now >= last,
                        "counter went backwards under concurrency: {last} -> {now}"
                    );
                    last = now;
                    reads += 1;
                }
                reads
            })
        };

        // Writers are joined by scope exit order: spawn order is writers
        // first, so signal the reader only after its turn comes. Easier:
        // busy-wait on the shared counter reaching the final total.
        let total = WRITERS as u64 * ITERS;
        while registry.counter("stress.shared").get() < total {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let reads = reader.join().unwrap();
        assert!(reads > 0, "reader never snapshotted");
    });

    let snap = registry.snapshot();
    let total = WRITERS as u64 * ITERS;
    assert_eq!(snap.counter("stress.shared"), Some(total));
    assert_eq!(snap.counter("stress.even"), Some(4 * ITERS * 2));
    assert_eq!(snap.counter("stress.odd"), Some(4 * ITERS * 2));
    assert_eq!(snap.gauge("stress.gauge"), Some(total as i64));
    let (_, hist) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "stress.lat_ns")
        .expect("histogram registered");
    assert_eq!(hist.count, total);
    assert_eq!(hist.max_ns, ITERS);
    // Sum of 1..=ITERS per writer.
    assert_eq!(hist.sum_ns, WRITERS as u64 * (ITERS * (ITERS + 1) / 2));
}
