//! Hot-path metric primitives: sharded-atomic counters and plain gauges.
//!
//! A counter increment is the single most frequent observability operation
//! on the serving path (every routed request, every samtree op). A lone
//! `AtomicU64` turns that into a cache-line ping-pong between shard worker
//! threads, so [`Counter`] stripes its value across cache-line-padded
//! atomics indexed by a per-thread slot: increments touch a thread-local
//! line, reads sum the stripes. Reads are O(stripes) — cheap, but meant
//! for snapshots, not inner loops.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripe count; power of two so the thread slot maps with a mask.
const STRIPES: usize = 8;

/// One cache line per stripe so concurrent writers never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Index of the calling thread's stripe: threads get a round-robin slot on
/// first use and keep it for life, spreading writers across the stripes.
fn stripe_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s) & (STRIPES - 1)
}

/// A monotonically increasing counter with a striped-atomic hot path.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all stripes. Concurrent increments may
    /// or may not be included, but nothing is ever lost or double-counted.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (queue depth, resident edges, version).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counter_add_batches() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.add(5);
        assert_eq!(g.get(), 12);
    }
}
