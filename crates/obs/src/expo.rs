//! Exposition: render an [`ObsSnapshot`] as Prometheus text or JSON.
//!
//! Both formats are emitted by hand — the workspace vendors no JSON
//! serializer — and both are deterministic for a given snapshot (metric
//! entries are name-sorted), so they can be golden-file tested.

use crate::hist::HistogramSnapshot;
use crate::registry::ObsSnapshot;
use crate::slow::SlowOpRecord;
use crate::span::SpanRecord;
use std::fmt::Write;

/// Map a registry metric name to a Prometheus metric name: prefix with
/// `plato_`, lowercase, and replace every character outside `[a-z0-9_]`
/// (dots, dashes) with `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("plato_");
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus name for a duration histogram. The registry convention is a
/// `_ns` suffix; the exposition renders bucket bounds and sums in seconds,
/// so per the Prometheus naming rules the series carries the `_seconds`
/// unit suffix instead.
fn prom_hist_name(name: &str) -> String {
    let base = name.strip_suffix("_ns").unwrap_or(name);
    let mut p = prom_name(base);
    if !p.ends_with("_seconds") {
        p.push_str("_seconds");
    }
    p
}

/// Hand-written help strings for the load-bearing metrics; everything else
/// falls back to a generated line naming the registry metric.
fn known_help(name: &str) -> Option<&'static str> {
    Some(match name {
        "cluster.requests" => "Sample requests routed by the cluster front door",
        "cluster.degraded_responses" => "Sample requests answered degraded (shard down)",
        "cluster.sample_latency_ns" => "End-to-end cluster sample request latency",
        "cluster.update_latency_ns" => "End-to-end cluster update latency",
        "cluster.graph_version" => "Monotonic graph version, bumped per applied update round",
        "graph.mem.samtree_bytes" => "Resident heap bytes of samtree topology across shards",
        "graph.mem.attr_bytes" => "Resident heap bytes of vertex attribute blobs across shards",
        "graph.mem.wal_bytes" => "Write-ahead log bytes since the last checkpoint",
        "obs.spans_dropped" => "Span records evicted from the tracer ring before export",
        "obs.slow_ops" => "Operations captured by the slow-op log",
        "samtree.leaf_ops" => "Samtree leaf-level edge operations",
        "samtree.sample_requests" => "Neighbor-sampling requests served by samtree stores",
        "storage.edges" => "Resident edges across shards",
        "wal.appends" => "WAL record appends",
        _ => return None,
    })
}

/// Write the `# HELP` line for one metric (`kind` feeds the fallback).
fn help_line(out: &mut String, prom: &str, name: &str, kind: &str) {
    match known_help(name) {
        Some(help) => {
            let _ = writeln!(out, "# HELP {prom} {help}");
        }
        None => {
            let _ = writeln!(out, "# HELP {prom} PlatoD2GL {kind} {name}");
        }
    }
}

/// Write one scalar (counter or gauge) series: HELP, TYPE, then one sample
/// line per row. A `None` server label renders the bare single-process
/// form; `Some(label)` adds `{server="label"}`. Single-process and fleet
/// exposition share this emitter, so the merged fleet output can never
/// drift from the golden-tested conventions (counter `_total` suffix,
/// curated HELP text, HELP-before-TYPE ordering).
fn emit_scalar(out: &mut String, name: &str, kind: &str, rows: &[(Option<&str>, String)]) {
    let p = if kind == "counter" {
        format!("{}_total", prom_name(name))
    } else {
        prom_name(name)
    };
    help_line(out, &p, name, kind);
    let _ = writeln!(out, "# TYPE {p} {kind}");
    for (server, value) in rows {
        match server {
            Some(s) => {
                let _ = writeln!(out, "{p}{{server=\"{s}\"}} {value}");
            }
            None => {
                let _ = writeln!(out, "{p} {value}");
            }
        }
    }
}

/// Write one histogram series (cumulative `_bucket` lines in seconds plus
/// `_sum`/`_count`) per row, sharing HELP/TYPE. Same label convention as
/// [`emit_scalar`]; the `server` label precedes `le` so fleet output stays
/// deterministic.
fn emit_histogram(out: &mut String, name: &str, rows: &[(Option<&str>, &HistogramSnapshot)]) {
    let p = prom_hist_name(name);
    help_line(out, &p, name, "histogram");
    let _ = writeln!(out, "# TYPE {p} histogram");
    for (server, h) in rows {
        let labels = |le: &str| match server {
            Some(s) => format!("{{server=\"{s}\",le=\"{le}\"}}"),
            None => format!("{{le=\"{le}\"}}"),
        };
        let suffix = match server {
            Some(s) => format!("{{server=\"{s}\"}}"),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for &(exp, n) in &h.buckets {
            cumulative += n;
            // Bucket upper bound 2^(exp+1) ns, rendered in seconds.
            let le = 2f64.powi(exp as i32 + 1) / 1e9;
            let _ = writeln!(out, "{p}_bucket{} {cumulative}", labels(&le.to_string()));
        }
        let _ = writeln!(out, "{p}_bucket{} {}", labels("+Inf"), h.count);
        let _ = writeln!(out, "{p}_sum{suffix} {}", h.sum_ns as f64 / 1e9);
        let _ = writeln!(out, "{p}_count{suffix} {}", h.count);
    }
}

/// Merge N per-server snapshots into one Prometheus exposition. Every
/// metric name appearing on any server gets one HELP/TYPE block followed
/// by a `{server="<label>"}` sample per member (member order preserved)
/// and a `{server="fleet"}` aggregate: counters and gauges sum, histograms
/// merge exactly via [`HistogramSnapshot::merge`] (log2 buckets align by
/// exponent, so fleet percentiles are computed from true total counts, not
/// averaged per-server estimates). Output is deterministic for a given
/// member list, so it is golden-testable like the single-process format.
pub fn fleet_prometheus(members: &[(String, ObsSnapshot)]) -> String {
    use std::collections::BTreeMap;
    let mut counters: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, Vec<(&str, i64)>> = BTreeMap::new();
    let mut hists: BTreeMap<&str, Vec<(&str, &HistogramSnapshot)>> = BTreeMap::new();
    for (server, snap) in members {
        for (name, v) in &snap.counters {
            counters.entry(name).or_default().push((server, *v));
        }
        for (name, v) in &snap.gauges {
            gauges.entry(name).or_default().push((server, *v));
        }
        for (name, h) in &snap.histograms {
            hists.entry(name).or_default().push((server, h));
        }
    }
    let mut out = String::new();
    for (name, rows) in &counters {
        let total: u64 = rows.iter().map(|&(_, v)| v).sum();
        let mut series: Vec<(Option<&str>, String)> = rows
            .iter()
            .map(|&(s, v)| (Some(s), v.to_string()))
            .collect();
        series.push((Some("fleet"), total.to_string()));
        emit_scalar(&mut out, name, "counter", &series);
    }
    for (name, rows) in &gauges {
        let total: i64 = rows.iter().map(|&(_, v)| v).sum();
        let mut series: Vec<(Option<&str>, String)> = rows
            .iter()
            .map(|&(s, v)| (Some(s), v.to_string()))
            .collect();
        series.push((Some("fleet"), total.to_string()));
        emit_scalar(&mut out, name, "gauge", &series);
    }
    for (name, rows) in &hists {
        let mut merged = HistogramSnapshot::default();
        for &(_, h) in rows {
            merged.merge(h);
        }
        let mut series: Vec<(Option<&str>, &HistogramSnapshot)> =
            rows.iter().map(|&(s, h)| (Some(s), h)).collect();
        series.push((Some("fleet"), &merged));
        emit_histogram(&mut out, name, &series);
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ObsSnapshot {
    /// Render in the Prometheus text exposition format. Counters get a
    /// `_total` suffix; histograms expand into cumulative
    /// `_bucket{le="..."}` series (bucket upper bounds in seconds) plus
    /// `_sum` and `_count`. Spans are not exposed here — they are trace
    /// data, not time series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            emit_scalar(&mut out, name, "counter", &[(None, value.to_string())]);
        }
        for (name, value) in &self.gauges {
            emit_scalar(&mut out, name, "gauge", &[(None, value.to_string())]);
        }
        for (name, h) in &self.histograms {
            emit_histogram(&mut out, name, &[(None, h)]);
        }
        out
    }

    /// Render as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"spans":[..]}`.
    /// Histogram values use the same shape as
    /// [`HistogramSnapshot::to_json`], so existing consumers of the bench
    /// report format parse unchanged.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), h.to_json());
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl SpanRecord {
    /// Render as one JSON object:
    /// `{"name":..,"id":..,"parent":..,"trace_id":..,"remote_parent":..,
    /// "start_ns":..,"duration_ns":..}`.
    pub fn to_json(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let remote = match self.remote_parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"trace_id\":{},\"remote_parent\":{},\
             \"start_ns\":{},\"duration_ns\":{}}}",
            json_escape(self.name),
            self.id,
            parent,
            self.trace_id,
            remote,
            self.start_ns,
            self.duration_ns
        )
    }
}

impl SlowOpRecord {
    /// Render as one JSON object with the span tree inlined (root first).
    pub fn to_json(&self) -> String {
        let trace = match self.trace_id {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let mut out = format!(
            "{{\"op\":\"{}\",\"trace_id\":{},\"duration_ns\":{},\"detail\":\"{}\",\"spans\":[",
            json_escape(self.op),
            trace,
            self.duration_ns,
            json_escape(&self.detail)
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Re-exported so exposition consumers can name the histogram shape
/// without importing the `hist` module path.
pub type HistogramJson = HistogramSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use std::time::Duration;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("cluster.requests"), "plato_cluster_requests");
        assert_eq!(prom_name("WAL.append-bytes"), "plato_wal_append_bytes");
    }

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let r = Registry::new();
        r.counter("cluster.requests").add(42);
        r.gauge("storage.edges").set(17);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE plato_cluster_requests_total counter"));
        assert!(text.contains("plato_cluster_requests_total 42\n"));
        assert!(text.contains("# TYPE plato_storage_edges gauge"));
        assert!(text.contains("plato_storage_edges 17\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_ns");
        h.record(Duration::from_nanos(3)); // bucket exp 1
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1000)); // bucket exp 9
        let text = r.snapshot().to_prometheus();
        // `_ns` histograms are rendered in seconds and so take the
        // `_seconds` unit suffix.
        assert!(
            text.contains("# TYPE plato_lat_seconds histogram"),
            "{text}"
        );
        assert!(!text.contains("plato_lat_ns"), "{text}");
        // exp 1 -> le = 2^2 ns = 4e-9 s, cumulative 2.
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"0.000000004\"} 2"),
            "{text}"
        );
        // exp 9 -> le = 2^10 ns, cumulative 3.
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"0.000001024\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("plato_lat_seconds_count 3"), "{text}");
    }

    #[test]
    fn every_series_gets_a_help_line() {
        let r = Registry::new();
        r.counter("cluster.requests").inc();
        r.counter("made.up_counter").inc();
        r.gauge("storage.edges").set(1);
        r.histogram("cluster.sample_latency_ns")
            .record(Duration::from_micros(5));
        let text = r.snapshot().to_prometheus();
        // Known names get the curated text; unknown names the fallback.
        assert!(
            text.contains(
                "# HELP plato_cluster_requests_total Sample requests \
                 routed by the cluster front door"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP plato_made_up_counter_total PlatoD2GL counter made.up_counter"),
            "{text}"
        );
        assert!(
            text.contains("# HELP plato_storage_edges Resident edges across shards"),
            "{text}"
        );
        assert!(
            text.contains(
                "# HELP plato_cluster_sample_latency_seconds End-to-end \
                 cluster sample request latency"
            ),
            "{text}"
        );
        // HELP precedes TYPE for each series.
        for series in [
            "plato_cluster_requests_total",
            "plato_cluster_sample_latency_seconds",
        ] {
            let help = text.find(&format!("# HELP {series} ")).expect(series);
            let typ = text.find(&format!("# TYPE {series} ")).expect(series);
            assert!(help < typ, "HELP must precede TYPE for {series}");
        }
    }

    #[test]
    fn fleet_exposition_labels_members_and_merges_exactly() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("cluster.requests").add(10);
        b.counter("cluster.requests").add(32);
        b.counter("only.on_b").add(1);
        a.gauge("storage.edges").set(5);
        b.gauge("storage.edges").set(7);
        a.histogram("lat_ns").record(Duration::from_nanos(3));
        b.histogram("lat_ns").record(Duration::from_nanos(3));
        b.histogram("lat_ns").record(Duration::from_nanos(1000));
        let text = fleet_prometheus(&[
            ("s1".to_string(), a.snapshot()),
            ("s2".to_string(), b.snapshot()),
        ]);
        // Per-server samples plus the summed fleet aggregate, one shared
        // HELP/TYPE block with the curated single-process text.
        assert!(
            text.contains(
                "# HELP plato_cluster_requests_total Sample requests \
                 routed by the cluster front door"
            ),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE plato_cluster_requests_total counter")
                .count(),
            1
        );
        assert!(
            text.contains("plato_cluster_requests_total{server=\"s1\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("plato_cluster_requests_total{server=\"s2\"} 32"),
            "{text}"
        );
        assert!(
            text.contains("plato_cluster_requests_total{server=\"fleet\"} 42"),
            "{text}"
        );
        // A metric present on one member still gets a fleet aggregate.
        assert!(
            text.contains("plato_only_on_b_total{server=\"fleet\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("plato_storage_edges{server=\"fleet\"} 12"),
            "{text}"
        );
        // Histogram buckets merge by exponent: both exp-1 observations
        // land in one fleet bucket, cumulative over the exp-9 one.
        assert!(
            text.contains("plato_lat_seconds_bucket{server=\"fleet\",le=\"0.000000004\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("plato_lat_seconds_bucket{server=\"fleet\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("plato_lat_seconds_count{server=\"s1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("plato_lat_seconds_count{server=\"fleet\"} 3"),
            "{text}"
        );
        // Deterministic: same members, same bytes.
        let again = fleet_prometheus(&[
            ("s1".to_string(), a.snapshot()),
            ("s2".to_string(), b.snapshot()),
        ]);
        assert_eq!(text, again);
    }

    #[test]
    fn slow_op_record_renders_span_tree_json() {
        let r = Registry::new();
        let root_id;
        {
            let root = r.span("cluster.sample");
            root_id = root.id();
            drop(r.span("samtree.sample"));
        }
        let rec = crate::slow::SlowOpRecord {
            op: "cluster.sample",
            trace_id: Some(7),
            detail: "vertex=1 shard=0".to_string(),
            duration_ns: 123,
            spans: crate::slow::span_subtree(&r.tracer().recent(), root_id),
        };
        let json = rec.to_json();
        assert!(json.starts_with("{\"op\":\"cluster.sample\",\"trace_id\":7,"));
        assert!(json.contains("\"detail\":\"vertex=1 shard=0\""), "{json}");
        assert!(json.contains("\"name\":\"cluster.sample\""), "{json}");
        assert!(json.contains("\"name\":\"samtree.sample\""), "{json}");
    }

    #[test]
    fn json_has_all_sections() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(2);
        r.histogram("h").record(Duration::from_nanos(5));
        drop(r.span("unit"));
        let json = r.snapshot().to_json();
        assert!(
            json.starts_with("{\"counters\":{\"c\":1,\"obs.slow_ops\":0,\"obs.spans_dropped\":0}"),
            "{json}"
        );
        assert!(json.contains("\"gauges\":{\"g\":2}"), "{json}");
        assert!(
            json.contains("\"histograms\":{\"h\":{\"count\":1"),
            "{json}"
        );
        assert!(
            json.contains("\"spans\":[{\"name\":\"unit\",\"id\":1,\"parent\":null"),
            "{json}"
        );
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::new();
        r.counter("weird\"name\\here").inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\here\":1"), "{json}");
    }
}
