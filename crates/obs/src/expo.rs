//! Exposition: render an [`ObsSnapshot`] as Prometheus text or JSON.
//!
//! Both formats are emitted by hand — the workspace vendors no JSON
//! serializer — and both are deterministic for a given snapshot (metric
//! entries are name-sorted), so they can be golden-file tested.

use crate::hist::HistogramSnapshot;
use crate::registry::ObsSnapshot;
use crate::slow::SlowOpRecord;
use crate::span::SpanRecord;
use std::fmt::Write;

/// Map a registry metric name to a Prometheus metric name: prefix with
/// `plato_`, lowercase, and replace every character outside `[a-z0-9_]`
/// (dots, dashes) with `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("plato_");
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus name for a duration histogram. The registry convention is a
/// `_ns` suffix; the exposition renders bucket bounds and sums in seconds,
/// so per the Prometheus naming rules the series carries the `_seconds`
/// unit suffix instead.
fn prom_hist_name(name: &str) -> String {
    let base = name.strip_suffix("_ns").unwrap_or(name);
    let mut p = prom_name(base);
    if !p.ends_with("_seconds") {
        p.push_str("_seconds");
    }
    p
}

/// Hand-written help strings for the load-bearing metrics; everything else
/// falls back to a generated line naming the registry metric.
fn known_help(name: &str) -> Option<&'static str> {
    Some(match name {
        "cluster.requests" => "Sample requests routed by the cluster front door",
        "cluster.degraded_responses" => "Sample requests answered degraded (shard down)",
        "cluster.sample_latency_ns" => "End-to-end cluster sample request latency",
        "cluster.update_latency_ns" => "End-to-end cluster update latency",
        "cluster.graph_version" => "Monotonic graph version, bumped per applied update round",
        "graph.mem.samtree_bytes" => "Resident heap bytes of samtree topology across shards",
        "graph.mem.attr_bytes" => "Resident heap bytes of vertex attribute blobs across shards",
        "graph.mem.wal_bytes" => "Write-ahead log bytes since the last checkpoint",
        "obs.spans_dropped" => "Span records evicted from the tracer ring before export",
        "obs.slow_ops" => "Operations captured by the slow-op log",
        "samtree.leaf_ops" => "Samtree leaf-level edge operations",
        "samtree.sample_requests" => "Neighbor-sampling requests served by samtree stores",
        "storage.edges" => "Resident edges across shards",
        "wal.appends" => "WAL record appends",
        _ => return None,
    })
}

/// Write the `# HELP` line for one metric (`kind` feeds the fallback).
fn help_line(out: &mut String, prom: &str, name: &str, kind: &str) {
    match known_help(name) {
        Some(help) => {
            let _ = writeln!(out, "# HELP {prom} {help}");
        }
        None => {
            let _ = writeln!(out, "# HELP {prom} PlatoD2GL {kind} {name}");
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ObsSnapshot {
    /// Render in the Prometheus text exposition format. Counters get a
    /// `_total` suffix; histograms expand into cumulative
    /// `_bucket{le="..."}` series (bucket upper bounds in seconds) plus
    /// `_sum` and `_count`. Spans are not exposed here — they are trace
    /// data, not time series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = format!("{}_total", prom_name(name));
            help_line(&mut out, &p, name, "counter");
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, value) in &self.gauges {
            let p = prom_name(name);
            help_line(&mut out, &p, name, "gauge");
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, h) in &self.histograms {
            let p = prom_hist_name(name);
            help_line(&mut out, &p, name, "histogram");
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for &(exp, n) in &h.buckets {
                cumulative += n;
                // Bucket upper bound 2^(exp+1) ns, rendered in seconds.
                let le = 2f64.powi(exp as i32 + 1) / 1e9;
                let _ = writeln!(out, "{p}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{p}_sum {}", h.sum_ns as f64 / 1e9);
            let _ = writeln!(out, "{p}_count {}", h.count);
        }
        out
    }

    /// Render as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"spans":[..]}`.
    /// Histogram values use the same shape as
    /// [`HistogramSnapshot::to_json`], so existing consumers of the bench
    /// report format parse unchanged.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), h.to_json());
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl SpanRecord {
    /// Render as one JSON object:
    /// `{"name":..,"id":..,"parent":..,"start_ns":..,"duration_ns":..}`.
    pub fn to_json(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"start_ns\":{},\"duration_ns\":{}}}",
            json_escape(self.name),
            self.id,
            parent,
            self.start_ns,
            self.duration_ns
        )
    }
}

impl SlowOpRecord {
    /// Render as one JSON object with the span tree inlined (root first).
    pub fn to_json(&self) -> String {
        let trace = match self.trace_id {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let mut out = format!(
            "{{\"op\":\"{}\",\"trace_id\":{},\"duration_ns\":{},\"detail\":\"{}\",\"spans\":[",
            json_escape(self.op),
            trace,
            self.duration_ns,
            json_escape(&self.detail)
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Re-exported so exposition consumers can name the histogram shape
/// without importing the `hist` module path.
pub type HistogramJson = HistogramSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use std::time::Duration;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("cluster.requests"), "plato_cluster_requests");
        assert_eq!(prom_name("WAL.append-bytes"), "plato_wal_append_bytes");
    }

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let r = Registry::new();
        r.counter("cluster.requests").add(42);
        r.gauge("storage.edges").set(17);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE plato_cluster_requests_total counter"));
        assert!(text.contains("plato_cluster_requests_total 42\n"));
        assert!(text.contains("# TYPE plato_storage_edges gauge"));
        assert!(text.contains("plato_storage_edges 17\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_ns");
        h.record(Duration::from_nanos(3)); // bucket exp 1
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1000)); // bucket exp 9
        let text = r.snapshot().to_prometheus();
        // `_ns` histograms are rendered in seconds and so take the
        // `_seconds` unit suffix.
        assert!(
            text.contains("# TYPE plato_lat_seconds histogram"),
            "{text}"
        );
        assert!(!text.contains("plato_lat_ns"), "{text}");
        // exp 1 -> le = 2^2 ns = 4e-9 s, cumulative 2.
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"0.000000004\"} 2"),
            "{text}"
        );
        // exp 9 -> le = 2^10 ns, cumulative 3.
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"0.000001024\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("plato_lat_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("plato_lat_seconds_count 3"), "{text}");
    }

    #[test]
    fn every_series_gets_a_help_line() {
        let r = Registry::new();
        r.counter("cluster.requests").inc();
        r.counter("made.up_counter").inc();
        r.gauge("storage.edges").set(1);
        r.histogram("cluster.sample_latency_ns")
            .record(Duration::from_micros(5));
        let text = r.snapshot().to_prometheus();
        // Known names get the curated text; unknown names the fallback.
        assert!(
            text.contains(
                "# HELP plato_cluster_requests_total Sample requests \
                 routed by the cluster front door"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP plato_made_up_counter_total PlatoD2GL counter made.up_counter"),
            "{text}"
        );
        assert!(
            text.contains("# HELP plato_storage_edges Resident edges across shards"),
            "{text}"
        );
        assert!(
            text.contains(
                "# HELP plato_cluster_sample_latency_seconds End-to-end \
                 cluster sample request latency"
            ),
            "{text}"
        );
        // HELP precedes TYPE for each series.
        for series in [
            "plato_cluster_requests_total",
            "plato_cluster_sample_latency_seconds",
        ] {
            let help = text.find(&format!("# HELP {series} ")).expect(series);
            let typ = text.find(&format!("# TYPE {series} ")).expect(series);
            assert!(help < typ, "HELP must precede TYPE for {series}");
        }
    }

    #[test]
    fn slow_op_record_renders_span_tree_json() {
        let r = Registry::new();
        let root_id;
        {
            let root = r.span("cluster.sample");
            root_id = root.id();
            drop(r.span("samtree.sample"));
        }
        let rec = crate::slow::SlowOpRecord {
            op: "cluster.sample",
            trace_id: Some(7),
            detail: "vertex=1 shard=0".to_string(),
            duration_ns: 123,
            spans: crate::slow::span_subtree(&r.tracer().recent(), root_id),
        };
        let json = rec.to_json();
        assert!(json.starts_with("{\"op\":\"cluster.sample\",\"trace_id\":7,"));
        assert!(json.contains("\"detail\":\"vertex=1 shard=0\""), "{json}");
        assert!(json.contains("\"name\":\"cluster.sample\""), "{json}");
        assert!(json.contains("\"name\":\"samtree.sample\""), "{json}");
    }

    #[test]
    fn json_has_all_sections() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(2);
        r.histogram("h").record(Duration::from_nanos(5));
        drop(r.span("unit"));
        let json = r.snapshot().to_json();
        assert!(
            json.starts_with("{\"counters\":{\"c\":1,\"obs.slow_ops\":0,\"obs.spans_dropped\":0}"),
            "{json}"
        );
        assert!(json.contains("\"gauges\":{\"g\":2}"), "{json}");
        assert!(
            json.contains("\"histograms\":{\"h\":{\"count\":1"),
            "{json}"
        );
        assert!(
            json.contains("\"spans\":[{\"name\":\"unit\",\"id\":1,\"parent\":null"),
            "{json}"
        );
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = Registry::new();
        r.counter("weird\"name\\here").inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\here\":1"), "{json}");
    }
}
