//! Slow-operation log: a bounded ring of over-threshold operations, each
//! captured with its span tree and request provenance.
//!
//! Latency histograms say *that* the p99 moved; they cannot say *why one
//! request* was slow. The slow log closes that gap: when an instrumented
//! operation (today: `Cluster::sample`) finishes above a configurable
//! threshold, the caller snapshots the spans belonging to that request —
//! [`span_subtree`] walks the tracer ring from the request's root span —
//! and records them together with a human-readable provenance line
//! (vertex, shard, fanout, degradation) and the caller-supplied trace id.
//! The ring keeps the most recent captures; `GET /debug/slow` on the admin
//! server serves it live.
//!
//! The threshold is an atomic so operators can retune it on a running
//! cluster without locks on the request path: the fast path is one relaxed
//! load plus a comparison, and only actually-slow requests pay for the
//! span walk and the ring mutex.

use crate::metrics::Counter;
use crate::span::SpanRecord;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default slow-op ring capacity: enough history to debug a bad minute
/// without retaining a whole bad day.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// One captured slow operation.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowOpRecord {
    /// Static operation name, e.g. `"cluster.sample"`.
    pub op: &'static str,
    /// Caller-supplied request trace id, if the request carried one.
    pub trace_id: Option<u64>,
    /// Request provenance (vertex, shard, fanout, degradation, ...).
    pub detail: String,
    /// End-to-end duration in nanoseconds.
    pub duration_ns: u64,
    /// The operation's span tree (root first, entry order), as recovered
    /// from the tracer ring at capture time.
    pub spans: Vec<SpanRecord>,
}

/// Bounded ring of [`SlowOpRecord`]s with an atomically tunable threshold.
///
/// Created disabled (`threshold = u64::MAX`); [`SlowLog::set_threshold`]
/// arms it. One lives in every [`Registry`](crate::Registry).
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    captured: Arc<Counter>,
    capacity: usize,
    ring: Mutex<VecDeque<SlowOpRecord>>,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::with_counter(DEFAULT_SLOW_CAPACITY, Arc::default())
    }
}

impl SlowLog {
    /// Build a log that tallies captures into `captured` (the registry
    /// wires its `obs.slow_ops` counter here).
    pub(crate) fn with_counter(capacity: usize, captured: Arc<Counter>) -> Self {
        Self {
            threshold_ns: AtomicU64::new(u64::MAX),
            captured,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Arm the log: operations at or above `threshold` should be recorded.
    pub fn set_threshold(&self, threshold: Duration) {
        let ns = threshold.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current threshold in nanoseconds (`u64::MAX` when disabled).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Whether an operation of this duration qualifies as slow. This is
    /// the request-path check: one relaxed load and a compare.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        elapsed.as_nanos() >= u128::from(self.threshold_ns())
    }

    /// Append a capture, evicting the oldest if the ring is full.
    pub fn record(&self, record: SlowOpRecord) {
        self.captured.inc();
        let mut ring = self.ring.lock().expect("slow ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The most recent captures, oldest first.
    pub fn recent(&self) -> Vec<SlowOpRecord> {
        self.ring
            .lock()
            .expect("slow ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Total operations ever captured (including evicted ones).
    pub fn captured(&self) -> u64 {
        self.captured.get()
    }
}

/// Extract the span subtree rooted at `root_id` from a tracer ring dump.
///
/// Relies on the tracer's id discipline: ids are assigned at span *entry*,
/// monotonically, so a parent's id is always smaller than its children's.
/// Sorting by id therefore yields parents before children and one forward
/// pass suffices; the result is in entry order (root first).
pub fn span_subtree(spans: &[SpanRecord], root_id: u64) -> Vec<SpanRecord> {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| s.id);
    let mut members = BTreeSet::new();
    let mut out = Vec::new();
    for s in sorted {
        if s.id == root_id || s.parent.is_some_and(|p| members.contains(&p)) {
            members.insert(s.id);
            out.push(s.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTracer;

    fn rec(op: &'static str, duration_ns: u64) -> SlowOpRecord {
        SlowOpRecord {
            op,
            trace_id: None,
            detail: String::new(),
            duration_ns,
            spans: Vec::new(),
        }
    }

    #[test]
    fn disabled_by_default_and_armed_by_threshold() {
        let log = SlowLog::default();
        assert!(!log.is_slow(Duration::from_secs(3600)), "starts disabled");
        log.set_threshold(Duration::from_millis(5));
        assert!(!log.is_slow(Duration::from_millis(4)));
        assert!(log.is_slow(Duration::from_millis(5)), "threshold inclusive");
        assert!(log.is_slow(Duration::from_millis(50)));
    }

    #[test]
    fn ring_is_bounded_and_counter_keeps_totals() {
        let log = SlowLog::with_counter(3, Arc::default());
        for i in 0..7 {
            log.record(rec("op", i));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].duration_ns, 4, "oldest surviving capture");
        assert_eq!(recent[2].duration_ns, 6);
        assert_eq!(log.captured(), 7, "evictions still counted");
    }

    #[test]
    fn subtree_extracts_only_descendants() {
        let t = SpanTracer::default();
        let root_id;
        {
            let root = t.span("root");
            root_id = root.id();
            {
                let _child = t.span("child");
                drop(t.span("grandchild"));
            }
            drop(root);
        }
        // A second, unrelated tree recorded after the first.
        {
            let _other = t.span("other_root");
            drop(t.span("other_child"));
        }
        let tree = span_subtree(&t.recent(), root_id);
        let names: Vec<&str> = tree.iter().map(|s| s.name).collect();
        assert_eq!(names, ["root", "child", "grandchild"], "entry order");
        assert_eq!(tree[0].parent, None);
        assert_eq!(tree[1].parent, Some(tree[0].id));
        assert_eq!(tree[2].parent, Some(tree[1].id));
    }

    #[test]
    fn subtree_of_unknown_root_is_empty() {
        let t = SpanTracer::default();
        drop(t.span("solo"));
        assert!(span_subtree(&t.recent(), 999).is_empty());
    }
}
