//! Lock-free log2 latency histograms.
//!
//! Production graph services watch tail latency (the paper's Fig. 9/10
//! numbers are exactly such measurements); this module gives every
//! subsystem a cheap always-on recorder: one atomic increment per
//! observation into power-of-two nanosecond buckets, with percentile
//! estimates read on demand. Formerly `crates/server/src/latency.rs`;
//! it moved here so storage, WAL, and pipeline stages record through the
//! same type the server uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` ns; bucket 63 is the overflow bucket (> ~4.6 h).
const BUCKETS: usize = 64;

/// A concurrent histogram over durations with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A point-in-time, serializable view of a [`Histogram`]: exact
/// count/mean/sum/max plus log2-resolution percentiles and the non-empty
/// bucket counts, so stage and cluster histograms can be dumped into bench
/// JSON instead of ad-hoc prints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact mean in nanoseconds (not bucketed).
    pub mean_ns: u64,
    /// p50 upper bound in nanoseconds (log2 bucket resolution).
    pub p50_ns: u64,
    /// p95 upper bound in nanoseconds.
    pub p95_ns: u64,
    /// p99 upper bound in nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum observation in nanoseconds.
    pub max_ns: u64,
    /// Exact sum of observations in nanoseconds (drives Prometheus `_sum`).
    pub sum_ns: u64,
    /// Non-empty buckets as `(log2_lower_bound, count)`: bucket `e` holds
    /// durations in `[2^e, 2^(e+1))` ns.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Merge `other` into `self`, exactly: log2 bucket counts, `count`,
    /// and `sum_ns` add (a merged bucket holds the true total of both
    /// sides — log2 buckets from different processes align by exponent,
    /// so merging loses nothing the individual snapshots had); `max_ns`
    /// takes the max; `mean_ns` and the percentiles are recomputed from
    /// the merged totals. This is what lets a fleet admin plane fold N
    /// per-server histograms into one without a resolution cliff.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: std::collections::BTreeMap<u32, u64> =
            self.buckets.iter().copied().collect();
        for &(exp, n) in &other.buckets {
            *merged.entry(exp).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.mean_ns = self.sum_ns.checked_div(self.count).unwrap_or(0);
        self.p50_ns = self.bucket_quantile(0.5);
        self.p95_ns = self.bucket_quantile(0.95);
        self.p99_ns = self.bucket_quantile(0.99);
    }

    /// Upper bound of the bucket containing quantile `q`, computed from
    /// the snapshot's sparse buckets — the same walk [`Histogram::quantile`]
    /// does over its live buckets, so merged snapshots report percentiles
    /// identically to a histogram that recorded every observation itself.
    fn bucket_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(exp, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return if exp + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (exp + 1)
                };
            }
        }
        u64::MAX
    }

    /// Render as a JSON object (the workspace vendors no JSON serializer,
    /// so the report format is emitted by hand).
    pub fn to_json(&self) -> String {
        let mut buckets = String::from("[");
        for (i, (exp, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{exp},{n}]"));
        }
        buckets.push(']');
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{},\"buckets\":{}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns,
            self.sum_ns, buckets
        )
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one observation given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Exact maximum recorded duration (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]`
    /// (log2-resolution estimate; zero when empty).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q));
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((n as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let hi = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return Duration::from_nanos(hi);
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    /// Serializable snapshot: count, exact mean/sum/max, p50/p95/p99 and
    /// the non-empty bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean_ns: self.mean().as_nanos().min(u128::from(u64::MAX)) as u64,
            p50_ns: self.quantile(0.5).as_nanos().min(u128::from(u64::MAX)) as u64,
            p95_ns: self.quantile(0.95).as_nanos().min(u128::from(u64::MAX)) as u64,
            p99_ns: self.quantile(0.99).as_nanos().min(u128::from(u64::MAX)) as u64,
            max_ns: self.max_ns.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn buckets_bound_the_observation() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(1000)); // bucket [512, 1024)
        let p = h.quantile(1.0);
        assert!(p >= Duration::from_nanos(1000), "{p:?}");
        assert!(p <= Duration::from_nanos(2048), "{p:?}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for us in [1u64, 10, 100, 1_000, 10_000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50:?} {p90:?} {p99:?}");
        // p99 must sit in the top decade.
        assert!(p99 >= Duration::from_micros(10_000));
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        assert_eq!(h.mean(), Duration::from_nanos(200));
        assert_eq!(h.sum_ns(), 400);
    }

    #[test]
    fn snapshot_is_serializable_and_consistent() {
        let h = Histogram::new();
        for us in [1u64, 50, 50, 2_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max_ns, 2_000_000);
        assert_eq!(s.mean_ns, h.mean().as_nanos() as u64);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        // Bucket counts must sum to the total count.
        assert_eq!(s.buckets.iter().map(|(_, n)| n).sum::<u64>(), 4);
        // Every bucket's lower bound must bound the max.
        for (exp, _) in &s.buckets {
            assert!(1u64 << exp <= s.max_ns);
        }
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"count\":4"), "{json}");
        assert!(json.contains("\"max_ns\":2000000"), "{json}");
        assert!(json.contains("\"sum_ns\":2101000"), "{json}");
        assert!(json.contains("\"buckets\":[["), "{json}");
    }

    #[test]
    fn merge_is_exact_and_sum_preserving() {
        // Two processes each record part of a workload; merging their
        // snapshots must equal the snapshot of one histogram that saw it
        // all — buckets, count, sum, max, mean, and percentiles.
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for us in [1u64, 5, 50, 800] {
            a.record(Duration::from_micros(us));
            whole.record(Duration::from_micros(us));
        }
        for us in [2u64, 50, 50, 9_000, 9_001] {
            b.record(Duration::from_micros(us));
            whole.record(Duration::from_micros(us));
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        for ns in [100u64, 4_000, 1 << 40] {
            h.record(Duration::from_nanos(ns));
        }
        let snap = h.snapshot();
        let mut merged = snap.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, snap);
        let mut from_empty = HistogramSnapshot::default();
        from_empty.merge(&snap);
        assert_eq!(from_empty, snap);
    }

    #[test]
    fn merge_associativity_across_three_servers() {
        let hs: Vec<Histogram> = (0..3).map(|_| Histogram::new()).collect();
        for (i, h) in hs.iter().enumerate() {
            for k in 0..50u64 {
                h.record(Duration::from_nanos((i as u64 + 1) * 1000 + k * 97));
            }
        }
        let mut left = hs[0].snapshot();
        left.merge(&hs[1].snapshot());
        left.merge(&hs[2].snapshot());
        let mut right = hs[1].snapshot();
        right.merge(&hs[2].snapshot());
        let mut first = hs[0].snapshot();
        first.merge(&right);
        assert_eq!(left, first);
        assert_eq!(left.count, 150);
    }

    #[test]
    fn concurrent_recording() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        h.record(Duration::from_nanos(i + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
