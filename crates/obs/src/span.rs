//! Lightweight span tracing: enter/exit timing with parent linkage.
//!
//! A [`SpanTracer`] hands out RAII [`SpanGuard`]s. Entering a span stamps
//! a monotonic start offset and pushes the span onto a thread-local stack
//! (so nested spans record their parent); dropping the guard measures the
//! duration and appends a [`SpanRecord`] to a bounded ring buffer of the
//! most recent completions. The ring is deliberately small and mutex-
//! guarded: span completion is orders of magnitude rarer than counter
//! increments (one per batch/checkpoint/epoch, not one per edge), so a
//! short critical section beats the complexity of a lock-free ring.

use crate::metrics::Counter;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"wal.checkpoint"`.
    pub name: &'static str,
    /// Unique id within this tracer (monotonic from 1).
    pub id: u64,
    /// Id of the span that was active on this thread when this span
    /// started, if any.
    pub parent: Option<u64>,
    /// Distributed trace this span belongs to (`0` = untraced). Children
    /// inherit the trace of their parent; roots take it from an explicit
    /// [`SpanTracer::span_traced`] / [`SpanTracer::span_remote`] call.
    pub trace_id: u64,
    /// Span id of the *remote* parent — the caller's span in another
    /// process — when this span is the server-side root of a cross-process
    /// request. Remote ids live in the caller's tracer id space; trace
    /// reassembly resolves them per fleet member.
    pub remote_parent: Option<u64>,
    /// Start offset in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub duration_ns: u64,
}

/// Cross-process trace context: carried in v2 wire frames so a server can
/// link its root span back to the client span that issued the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Distributed trace id (never 0 on the wire).
    pub trace_id: u64,
    /// The caller's span id, to become the callee root's `remote_parent`.
    pub parent_span: u64,
}

thread_local! {
    /// Stack of (tracer epoch id, span id, trace id) for parent linkage.
    /// The tracer epoch distinguishes spans from different tracers
    /// interleaved on one thread; a span only parents spans of the same
    /// tracer. The trace id rides along so children inherit their parent's
    /// trace and [`current_trace_context`] can read the ambient context.
    static ACTIVE: RefCell<Vec<(u64, u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active traced span on this thread, as a wire-ready
/// [`TraceContext`]. Scans the active-span stack top-down for the first
/// entry with a nonzero trace id, across tracers: an RPC client embedded
/// in a fleet node picks up the trace opened by the serving dispatch even
/// though the two sides use different registries.
pub fn current_trace_context() -> Option<TraceContext> {
    ACTIVE.with(|stack| {
        stack
            .borrow()
            .iter()
            .rev()
            .find(|&&(_, _, trace)| trace != 0)
            .map(|&(_, id, trace)| TraceContext {
                trace_id: trace,
                parent_span: id,
            })
    })
}

/// Process-wide tracer instance counter (keys the thread-local stack).
static NEXT_TRACER: AtomicU64 = AtomicU64::new(1);

/// Records recent spans into a bounded ring buffer.
#[derive(Debug)]
pub struct SpanTracer {
    tracer_id: u64,
    epoch: Instant,
    next_id: AtomicU64,
    started: AtomicU64,
    finished: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: Arc<Counter>,
}

/// Default ring capacity: enough to hold every span of a short run and the
/// recent tail of a long one.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

impl Default for SpanTracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanTracer {
    /// Create a tracer retaining the `capacity` most recent spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_drop_counter(capacity, Arc::default())
    }

    /// Like [`SpanTracer::with_capacity`], tallying ring evictions into
    /// `dropped` (the registry wires its `obs.spans_dropped` counter here,
    /// so silent trace loss is visible in every snapshot).
    pub fn with_drop_counter(capacity: usize, dropped: Arc<Counter>) -> Self {
        Self {
            tracer_id: NEXT_TRACER.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            started: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped,
        }
    }

    /// Enter a span; it completes (and is recorded) when the guard drops.
    /// Inherits the trace id of its parent span, if any.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.enter(name, None, None, None)
    }

    /// Enter a span that *starts* trace `trace_id` (a client-side trace
    /// root). Children opened under it inherit the trace.
    pub fn span_traced(&self, name: &'static str, trace_id: u64) -> SpanGuard<'_> {
        self.enter(name, Some(trace_id), None, None)
    }

    /// Enter the server-side root of a cross-process request: the span
    /// joins trace `trace_id` and records `remote_parent` — the caller's
    /// span id in *its* process — for later cross-process stitching.
    pub fn span_remote(
        &self,
        name: &'static str,
        trace_id: u64,
        remote_parent: u64,
    ) -> SpanGuard<'_> {
        self.enter(name, Some(trace_id), None, Some(remote_parent))
    }

    /// Enter a span with an explicit local parent, for work handed to
    /// another thread (the thread-local stack cannot see across threads).
    /// The span is pushed onto this thread's stack, so nested spans link
    /// under it as usual.
    pub fn span_with_parent(
        &self,
        name: &'static str,
        parent: u64,
        trace_id: u64,
    ) -> SpanGuard<'_> {
        self.enter(name, Some(trace_id), Some(parent), None)
    }

    fn enter(
        &self,
        name: &'static str,
        trace_id: Option<u64>,
        explicit_parent: Option<u64>,
        remote_parent: Option<u64>,
    ) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.started.fetch_add(1, Ordering::Relaxed);
        let (parent, trace_id) = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let inherited = stack
                .iter()
                .rev()
                .find(|(t, _, _)| *t == self.tracer_id)
                .map(|&(_, id, trace)| (id, trace));
            let parent = explicit_parent.or(inherited.map(|(id, _)| id));
            let trace = trace_id.unwrap_or_else(|| inherited.map_or(0, |(_, t)| t));
            stack.push((self.tracer_id, id, trace));
            (parent, trace)
        });
        SpanGuard {
            tracer: self,
            name,
            id,
            parent,
            trace_id,
            remote_parent,
            start: Instant::now(),
        }
    }

    /// Spans entered so far.
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Spans completed so far (including any evicted from the ring).
    pub fn finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Completed spans evicted from the ring before anyone read them.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The most recent completed spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("span ring")
            .iter()
            .cloned()
            .collect()
    }

    fn complete(&self, record: SpanRecord) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the top of the stack; a guard moved across threads
            // or dropped out of order is removed wherever it sits.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id, _)| t == self.tracer_id && id == record.id)
            {
                stack.remove(pos);
            }
        });
        self.finished.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("span ring");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(record);
    }
}

/// RAII guard for an in-flight span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a SpanTracer,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    trace_id: u64,
    remote_parent: Option<u64>,
    start: Instant,
}

impl SpanGuard<'_> {
    /// This span's id (usable as an explicit parent reference).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to (`0` = untraced).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let duration_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let start_ns = self
            .start
            .duration_since(self.tracer.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        self.tracer.complete(SpanRecord {
            name: self.name,
            id: self.id,
            parent: self.parent,
            trace_id: self.trace_id,
            remote_parent: self.remote_parent,
            start_ns,
            duration_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_parent_linkage() {
        let t = SpanTracer::default();
        {
            let outer = t.span("outer");
            let inner = t.span("inner");
            assert_eq!(t.recent().len(), 0, "nothing recorded until drop");
            drop(inner);
            drop(outer);
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 2);
        // Inner completes first; its parent is outer.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert!(spans[1].duration_ns >= spans[0].duration_ns);
        assert_eq!(t.started(), 2);
        assert_eq!(t.finished(), 2);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let t = SpanTracer::default();
        let outer = t.span("outer");
        let outer_id = outer.id();
        t.span("a");
        t.span("b");
        drop(outer);
        let spans = t.recent();
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].parent, Some(outer_id));
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = SpanTracer::with_capacity(4);
        for i in 0..10 {
            let _g = t.span(if i % 2 == 0 { "even" } else { "odd" });
        }
        let spans = t.recent();
        assert_eq!(spans.len(), 4);
        assert_eq!(t.finished(), 10);
        assert_eq!(t.dropped(), 6, "evictions are tallied");
        // Oldest-first: ids 7..=10 survive.
        assert_eq!(spans.first().map(|s| s.id), Some(7));
        assert_eq!(spans.last().map(|s| s.id), Some(10));
    }

    #[test]
    fn external_drop_counter_observes_evictions() {
        let dropped = Arc::new(Counter::new());
        let t = SpanTracer::with_drop_counter(2, Arc::clone(&dropped));
        for _ in 0..5 {
            let _g = t.span("s");
        }
        assert_eq!(dropped.get(), 3);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn two_tracers_do_not_cross_parent() {
        let a = SpanTracer::default();
        let b = SpanTracer::default();
        let ga = a.span("a_outer");
        let gb = b.span("b_only");
        drop(gb);
        drop(ga);
        assert_eq!(b.recent()[0].parent, None, "b must not parent under a");
    }

    #[test]
    fn parent_linkage_is_thread_local_and_tracer_local() {
        let a = SpanTracer::default();
        let b = SpanTracer::default();
        // Main thread holds an `a` root open across the worker's lifetime.
        let root = a.span("a_root");
        std::thread::scope(|s| {
            s.spawn(|| {
                // Same tracer, different thread: no inherited parent.
                drop(a.span("a_worker"));
                // Interleave both tracers on this thread; each child must
                // link under its own tracer's root only.
                let ra = a.span("a_inner_root");
                let rb = b.span("b_root");
                drop(a.span("a_child"));
                drop(b.span("b_child"));
                drop(rb);
                drop(ra);
            });
        });
        drop(root);
        let sa = a.recent();
        let by_name = |spans: &[SpanRecord], n: &str| {
            spans.iter().find(|s| s.name == n).cloned().expect("span")
        };
        assert_eq!(
            by_name(&sa, "a_worker").parent,
            None,
            "parent stack is thread-local: the open a_root on the main \
             thread must not parent a worker-thread span"
        );
        let a_inner = by_name(&sa, "a_inner_root");
        assert_eq!(by_name(&sa, "a_child").parent, Some(a_inner.id));
        let sb = b.recent();
        let b_root = by_name(&sb, "b_root");
        assert_eq!(
            b_root.parent, None,
            "tracer b must not parent under tracer a's open span"
        );
        assert_eq!(by_name(&sb, "b_child").parent, Some(b_root.id));
    }

    #[test]
    fn children_inherit_the_trace_and_context_is_readable() {
        let t = SpanTracer::default();
        assert_eq!(current_trace_context(), None);
        let root = t.span_traced("root", 77);
        let ctx = current_trace_context().expect("ambient context");
        assert_eq!(ctx.trace_id, 77);
        assert_eq!(ctx.parent_span, root.id());
        {
            let child = t.span("child");
            // The innermost traced span wins.
            assert_eq!(
                current_trace_context().map(|c| c.parent_span),
                Some(child.id())
            );
        }
        drop(root);
        assert_eq!(current_trace_context(), None);
        let spans = t.recent();
        assert_eq!(spans[0].name, "child");
        assert_eq!(spans[0].trace_id, 77, "children inherit the trace");
        assert_eq!(spans[1].trace_id, 77);
        assert_eq!(spans[1].remote_parent, None);
    }

    #[test]
    fn remote_root_records_the_callers_span() {
        let t = SpanTracer::default();
        {
            let _server_root = t.span_remote("rpc.server.request", 9, 41);
            drop(t.span("inner"));
        }
        let spans = t.recent();
        assert_eq!(spans[1].name, "rpc.server.request");
        assert_eq!(spans[1].remote_parent, Some(41));
        assert_eq!(spans[1].trace_id, 9);
        assert_eq!(spans[1].parent, None, "remote parent is not a local id");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[0].trace_id, 9);
    }

    #[test]
    fn explicit_parent_bridges_threads() {
        let t = SpanTracer::default();
        let root = t.span_traced("fan_out", 5);
        let (root_id, trace) = (root.id(), root.trace_id());
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = t.span_with_parent("group", root_id, trace);
                assert_eq!(
                    current_trace_context().map(|c| c.parent_span),
                    Some(g.id()),
                    "explicit-parent spans join the thread's stack"
                );
                drop(t.span("leaf"));
            });
        });
        drop(root);
        let by_name = |spans: &[SpanRecord], n: &str| {
            spans.iter().find(|s| s.name == n).cloned().expect("span")
        };
        let spans = t.recent();
        let group = by_name(&spans, "group");
        assert_eq!(group.parent, Some(root_id));
        assert_eq!(group.trace_id, 5);
        assert_eq!(by_name(&spans, "leaf").parent, Some(group.id));
        assert_eq!(by_name(&spans, "leaf").trace_id, 5);
    }

    #[test]
    fn concurrent_span_recording() {
        let t = SpanTracer::with_capacity(1024);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _outer = t.span("outer");
                        let _inner = t.span("inner");
                    }
                });
            }
        });
        assert_eq!(t.finished(), 1600);
        assert_eq!(t.recent().len(), 1024);
    }
}
