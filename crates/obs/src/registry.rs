//! The metrics registry: named counters, gauges, and histograms plus a
//! span tracer, snapshotted as one unit.
//!
//! Lock discipline: the name → handle maps are behind `RwLock`s that are
//! taken only at registration and snapshot time. Components resolve their
//! handles once (an `Arc<Counter>` etc.) and keep them, so the hot path is
//! pure striped-atomic arithmetic — no lock, no map lookup, no string
//! hashing.
//!
//! Registries are per-instance, not global: each [`Cluster`] owns one and
//! lends it to the storage, WAL, and pipeline layers stacked on top, so
//! concurrently running tests (or tenants) never see each other's counts.
//!
//! [`Cluster`]: ../platod2gl_server/struct.Cluster.html

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use crate::slow::{SlowLog, DEFAULT_SLOW_CAPACITY};
use crate::span::{SpanGuard, SpanRecord, SpanTracer, DEFAULT_SPAN_CAPACITY};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A named-metric registry with an attached span tracer and slow-op log.
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    tracer: SpanTracer,
    slow: SlowLog,
}

impl Default for Registry {
    /// An empty registry with the observability-of-observability counters
    /// pre-registered: `obs.spans_dropped` (tracer ring evictions) and
    /// `obs.slow_ops` (slow-log captures) appear in every snapshot from
    /// the start, so trace loss is never silent.
    fn default() -> Self {
        let spans_dropped = Arc::new(Counter::default());
        let slow_ops = Arc::new(Counter::default());
        let mut counters = BTreeMap::new();
        counters.insert("obs.spans_dropped".to_string(), Arc::clone(&spans_dropped));
        counters.insert("obs.slow_ops".to_string(), Arc::clone(&slow_ops));
        Registry {
            counters: RwLock::new(counters),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            tracer: SpanTracer::with_drop_counter(DEFAULT_SPAN_CAPACITY, spans_dropped),
            slow: SlowLog::with_counter(DEFAULT_SLOW_CAPACITY, slow_ops),
        }
    }
}

/// Resolve `name` in one of the registry's maps, registering a fresh
/// default metric on first use. Double-checked so the common case is a
/// read lock.
fn get_or_register<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().expect("registry map").get(name) {
        return Arc::clone(existing);
    }
    let mut map = map.write().expect("registry map");
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (or register) the counter named `name`. Names are
    /// dot-separated lowercase paths, e.g. `"cluster.requests"`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name)
    }

    /// Resolve (or register) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name)
    }

    /// Resolve (or register) the histogram named `name`. Histograms of
    /// durations end in `_ns` by convention.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_register(&self.histograms, name)
    }

    /// Enter a tracing span (records into the ring buffer on drop).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.tracer.span(name)
    }

    /// Enter a span that starts distributed trace `trace_id` (see
    /// [`SpanTracer::span_traced`]).
    pub fn span_traced(&self, name: &'static str, trace_id: u64) -> SpanGuard<'_> {
        self.tracer.span_traced(name, trace_id)
    }

    /// Enter the server-side root of a cross-process request (see
    /// [`SpanTracer::span_remote`]).
    pub fn span_remote(
        &self,
        name: &'static str,
        trace_id: u64,
        remote_parent: u64,
    ) -> SpanGuard<'_> {
        self.tracer.span_remote(name, trace_id, remote_parent)
    }

    /// Enter a span under an explicit local parent, for cross-thread
    /// fan-out (see [`SpanTracer::span_with_parent`]).
    pub fn span_with_parent(
        &self,
        name: &'static str,
        parent: u64,
        trace_id: u64,
    ) -> SpanGuard<'_> {
        self.tracer.span_with_parent(name, parent, trace_id)
    }

    /// The span tracer, for direct inspection.
    pub fn tracer(&self) -> &SpanTracer {
        &self.tracer
    }

    /// The slow-op log (disabled until a threshold is set).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// Point-in-time snapshot of every registered metric plus the recent
    /// spans, suitable for JSON or Prometheus exposition.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry map")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry map")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry map")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            spans: self.tracer.recent(),
        }
    }
}

/// A point-in-time view of a whole [`Registry`]. Metric entries are sorted
/// by name (the maps are BTree-ordered), which makes exposition output
/// deterministic and golden-testable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Recent completed spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

impl ObsSnapshot {
    /// Look up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("x.hits"), Some(7));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(-5);
        r.histogram("h_ns").record(Duration::from_micros(3));
        drop(r.span("phase"));
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(1));
        assert_eq!(s.gauge("g"), Some(-5));
        assert_eq!(s.histogram("h_ns").map(|h| h.count), Some(1));
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "phase");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        r.counter("m.middle").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "a.first",
                "m.middle",
                "obs.slow_ops",
                "obs.spans_dropped",
                "z.last"
            ]
        );
    }

    #[test]
    fn obs_meta_counters_are_pre_registered_and_wired() {
        let r = Registry::new();
        let s = r.snapshot();
        assert_eq!(s.counter("obs.spans_dropped"), Some(0));
        assert_eq!(s.counter("obs.slow_ops"), Some(0));
        // The tracer's eviction counter is the registered one.
        for _ in 0..(crate::span::DEFAULT_SPAN_CAPACITY + 3) {
            drop(r.span("spin"));
        }
        assert_eq!(r.snapshot().counter("obs.spans_dropped"), Some(3));
    }

    #[test]
    fn missing_names_read_none() {
        let r = Registry::new();
        let s = r.snapshot();
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.gauge("nope"), None);
        assert!(s.histogram("nope").is_none());
    }
}
