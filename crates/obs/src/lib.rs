//! Unified observability for PlatoD2GL: one registry per cluster, shared
//! by every layer stacked on it.
//!
//! The paper's results are *measurements* — per-stage update and sampling
//! latencies on billion-scale graphs (Sec. VIII) — and production
//! deployments of PlatoGL-style systems run on per-component counters.
//! Before this crate the repo had three disjoint stat mechanisms (server
//! latency histograms, `TrafficStats` atomics, hand-rolled pipeline JSON);
//! none could show a single run end-to-end. This crate replaces them with:
//!
//! * [`Counter`] / [`Gauge`] — sharded-atomic counters (cache-line-striped
//!   hot path) and plain gauges;
//! * [`Histogram`] — the log2 latency histogram formerly in
//!   `crates/server/src/latency.rs`, now shared by storage, WAL, server,
//!   and pipeline;
//! * [`SpanTracer`] — enter/exit spans with monotonic timing, parent
//!   linkage, and a ring buffer of recent completions;
//! * [`SlowLog`] — a bounded ring of over-threshold operations, each
//!   captured with its span tree ([`span_subtree`]) and request
//!   provenance, so a single slow request is explainable after the fact;
//! * [`Registry`] — names → handles; components resolve their handles once
//!   and the hot path never touches a lock or a map;
//! * [`ObsSnapshot`] — a point-in-time view with two exposition formats:
//!   Prometheus text ([`ObsSnapshot::to_prometheus`]) and the JSON report
//!   shape ([`ObsSnapshot::to_json`]).
//!
//! Naming convention: dot-separated lowercase paths rooted at the
//! subsystem (`samtree.leaf_splits`, `wal.append_bytes`,
//! `pipeline.cache.hits`); duration histograms end in `_ns`.

mod expo;
mod export;
mod hist;
mod metrics;
mod registry;
mod slow;
mod span;

pub use expo::{fleet_prometheus, HistogramJson};
pub use export::{ExportedSpan, RegistryExport, SlowOpExport};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{ObsSnapshot, Registry};
pub use slow::{span_subtree, SlowLog, SlowOpRecord, DEFAULT_SLOW_CAPACITY};
pub use span::{
    current_trace_context, SpanGuard, SpanRecord, SpanTracer, TraceContext, DEFAULT_SPAN_CAPACITY,
};
