//! Owned, process-portable views of a registry for cross-process
//! introspection.
//!
//! The in-process types ([`SpanRecord`], [`SlowOpRecord`]) hold `&'static
//! str` names — cheap inside one process, meaningless across a wire. The
//! `Exported*` mirrors here own their strings, so the rpc layer can encode
//! them into `SpanExport`/`ObsExport` reply frames and a fleet admin plane
//! can reassemble spans and merge metrics from every member.

use crate::hist::HistogramSnapshot;
use crate::registry::Registry;
use crate::slow::SlowOpRecord;
use crate::span::SpanRecord;
use std::fmt::Write;

/// One completed span with an owned name: the wire form of [`SpanRecord`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportedSpan {
    /// Span name.
    pub name: String,
    /// Span id, unique within the *origin process's* tracer.
    pub id: u64,
    /// Local parent span id, if any.
    pub parent: Option<u64>,
    /// Distributed trace id (`0` = untraced).
    pub trace_id: u64,
    /// The remote caller's span id when this span is a server-side root.
    pub remote_parent: Option<u64>,
    /// Start offset in nanoseconds since the origin tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
}

impl From<&SpanRecord> for ExportedSpan {
    fn from(s: &SpanRecord) -> Self {
        ExportedSpan {
            name: s.name.to_string(),
            id: s.id,
            parent: s.parent,
            trace_id: s.trace_id,
            remote_parent: s.remote_parent,
            start_ns: s.start_ns,
            duration_ns: s.duration_ns,
        }
    }
}

impl ExportedSpan {
    /// Render as one JSON object (same keys as [`SpanRecord::to_json`]).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| match v {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"trace_id\":{},\"remote_parent\":{},\
             \"start_ns\":{},\"duration_ns\":{}}}",
            crate::expo::json_escape(&self.name),
            self.id,
            opt(self.parent),
            self.trace_id,
            opt(self.remote_parent),
            self.start_ns,
            self.duration_ns
        )
    }
}

/// One slow-op capture with owned strings: the wire form of
/// [`SlowOpRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct SlowOpExport {
    /// Operation name.
    pub op: String,
    /// Trace id carried by the slow request, if any.
    pub trace_id: Option<u64>,
    /// Request provenance detail.
    pub detail: String,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// The captured span subtree, root first.
    pub spans: Vec<ExportedSpan>,
}

impl From<&SlowOpRecord> for SlowOpExport {
    fn from(r: &SlowOpRecord) -> Self {
        SlowOpExport {
            op: r.op.to_string(),
            trace_id: r.trace_id,
            detail: r.detail.clone(),
            duration_ns: r.duration_ns,
            spans: r.spans.iter().map(ExportedSpan::from).collect(),
        }
    }
}

impl SlowOpExport {
    /// Render as one JSON object, optionally tagged with the server it
    /// came from (the fleet-merged slow log carries provenance).
    pub fn to_json_tagged(&self, server: Option<&str>) -> String {
        let trace = match self.trace_id {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let mut out = String::from("{");
        if let Some(s) = server {
            let _ = write!(out, "\"server\":\"{}\",", crate::expo::json_escape(s));
        }
        let _ = write!(
            out,
            "\"op\":\"{}\",\"trace_id\":{},\"duration_ns\":{},\"detail\":\"{}\",\"spans\":[",
            crate::expo::json_escape(&self.op),
            trace,
            self.duration_ns,
            crate::expo::json_escape(&self.detail)
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Everything one process exports for fleet-wide telemetry aggregation:
/// metric values (with full histogram buckets, so merging is exact) plus
/// the recent slow-op captures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistryExport {
    /// Counter values by name, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name, name-sorted (buckets included).
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Recent slow-op captures, oldest first.
    pub slow: Vec<SlowOpExport>,
}

impl Registry {
    /// Assemble the full cross-process export: the metric snapshot plus
    /// the slow-op log, in owned form.
    pub fn export(&self) -> RegistryExport {
        let snap = self.snapshot();
        RegistryExport {
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
            slow: self
                .slow_log()
                .recent()
                .iter()
                .map(SlowOpExport::from)
                .collect(),
        }
    }

    /// Every recent span belonging to trace `trace_id`, in completion
    /// order, as owned records ready for a `SpanExport` reply. Serving
    /// this needs no new state: the tracer ring already holds the spans,
    /// the trace id is now part of each record.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<ExportedSpan> {
        self.tracer()
            .recent()
            .iter()
            .filter(|s| trace_id != 0 && s.trace_id == trace_id)
            .map(ExportedSpan::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_spans_filters_the_ring_by_trace() {
        let r = Registry::new();
        {
            let _root = r.span_traced("traced_root", 42);
            drop(r.span("traced_child"));
        }
        drop(r.span("untraced"));
        {
            let _other = r.span_traced("other_trace", 43);
        }
        let spans = r.trace_spans(42);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["traced_child", "traced_root"]);
        assert!(spans.iter().all(|s| s.trace_id == 42));
        assert!(r.trace_spans(0).is_empty(), "trace 0 means untraced");
    }

    #[test]
    fn export_carries_metrics_and_slow_ops_in_owned_form() {
        let r = Registry::new();
        r.counter("c.hits").add(3);
        r.gauge("g.depth").set(-2);
        r.histogram("h_ns").record(Duration::from_micros(9));
        r.slow_log().set_threshold(Duration::from_nanos(1));
        let root_id = {
            let root = r.span_traced("slow_op", 9);
            root.id()
        };
        r.slow_log().record(SlowOpRecord {
            op: "slow_op",
            trace_id: Some(9),
            detail: "vertex=1".to_string(),
            duration_ns: 5_000_000,
            spans: crate::slow::span_subtree(&r.tracer().recent(), root_id),
        });
        let e = r.export();
        assert_eq!(
            e.counters.iter().find(|(n, _)| n == "c.hits"),
            Some(&("c.hits".to_string(), 3))
        );
        assert_eq!(e.gauges, vec![("g.depth".to_string(), -2)]);
        assert_eq!(e.histograms.len(), 1);
        assert_eq!(e.histograms[0].1.count, 1);
        assert_eq!(e.slow.len(), 1);
        assert_eq!(e.slow[0].op, "slow_op");
        assert_eq!(e.slow[0].trace_id, Some(9));
        assert_eq!(e.slow[0].spans.len(), 1);
        assert_eq!(e.slow[0].spans[0].trace_id, 9);
        let json = e.slow[0].to_json_tagged(Some("s1"));
        assert!(
            json.starts_with("{\"server\":\"s1\",\"op\":\"slow_op\""),
            "{json}"
        );
    }
}
