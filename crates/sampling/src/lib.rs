//! # Weighted-sampling indexes
//!
//! PlatoD2GL compares three index structures for weighted neighbor sampling
//! (paper Sec. II-B, Sec. V and Table II):
//!
//! * [`CsTable`] — the *cumulative sum table* used by PlatoGL's ITS method:
//!   one `f64` per element, `O(log n)` sampling, but `O(n)` maintenance for
//!   in-place updates and deletions. PlatoD2GL still uses CSTables in samtree
//!   *internal* nodes, where updates are rare (paper Table V).
//! * [`AliasTable`] — the classic alias method most prior systems adopt:
//!   `O(1)` sampling but a full `O(n)` rebuild on any change and twice the
//!   memory (a probability and an alias per element).
//! * `FsTable` (from `platod2gl-fenwick`) — the paper's contribution,
//!   `O(log n)` for everything.
//!
//! All three implement [`WeightedIndex`], so the samtree, the baselines and
//! the benchmarks can swap them freely.

mod alias;
mod cstable;

pub use alias::AliasTable;
pub use cstable::CsTable;

use platod2gl_fenwick::FsTable;
use rand::Rng;

/// A structure that can draw an index `i` with probability `w_i / Σw`.
pub trait WeightedIndex {
    /// Number of elements indexed.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all weights.
    fn total(&self) -> f64;

    /// Draw the index owning residual mass `r ∈ [0, total())`.
    ///
    /// Deterministic given `r`; the random draw lives in
    /// [`sample`](Self::sample). Splitting the two lets the samtree thread a
    /// single random number down through multiple levels of tables, exactly
    /// as Sec. V-C describes.
    fn sample_with(&self, r: f64) -> usize;

    /// Draw an index at random, weighted by the stored weights.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if self.is_empty() || total <= 0.0 {
            return None;
        }
        Some(self.sample_with(rng.random_range(0.0..total)))
    }
}

impl WeightedIndex for FsTable {
    fn len(&self) -> usize {
        FsTable::len(self)
    }

    fn total(&self) -> f64 {
        FsTable::total(self)
    }

    fn sample_with(&self, r: f64) -> usize {
        FsTable::sample_with(self, r)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical<S: WeightedIndex>(s: &S, draws: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; s.len()];
        for _ in 0..draws {
            counts[s.sample(&mut rng).unwrap()] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    /// All three index structures must agree on the sampling distribution.
    #[test]
    fn all_indexes_sample_the_same_distribution() {
        let w = [4.0, 1.0, 3.0, 2.0];
        let total: f64 = w.iter().sum();
        let fs = FsTable::from_weights(&w);
        let cs = CsTable::from_weights(&w);
        let al = AliasTable::from_weights(&w);
        for freqs in [
            empirical(&fs, 30_000),
            empirical(&cs, 30_000),
            empirical(&al, 30_000),
        ] {
            for (i, f) in freqs.iter().enumerate() {
                let expected = w[i] / total;
                assert!((f - expected).abs() < 0.02, "index {i}: {f} vs {expected}");
            }
        }
    }

    #[test]
    fn sample_on_empty_returns_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(FsTable::new().sample(&mut rng).is_none());
        assert!(CsTable::new().sample(&mut rng).is_none());
    }

    #[test]
    fn sample_with_agreement_between_fs_and_cs() {
        // ITS over a CSTable and FTS over an FSTable define the same mapping
        // from residual mass to index.
        let w: Vec<f64> = (0..50).map(|x| ((x * 13) % 7) as f64 + 0.25).collect();
        let fs = FsTable::from_weights(&w);
        let cs = CsTable::from_weights(&w);
        let total = cs.total();
        for k in 0..500 {
            let r = total * (k as f64 + 0.5) / 500.0;
            assert_eq!(fs.sample_with(r), cs.sample_with(r), "r={r}");
        }
    }
}
