//! The alias method (Walker/Vose) — the memory-expensive sampler the paper
//! attributes to most prior deep-graph-learning systems (Sec. V challenges,
//! refs [34][25]) and the sampler our AliGraph-like baseline uses.

use crate::WeightedIndex;
use platod2gl_mem::DeepSize;

/// An alias table: `O(1)` sampling, `O(n)` construction, and **2×** the
/// memory of a CSTable/FSTable (one probability plus one alias per element).
///
/// There is no incremental maintenance: any weight change rebuilds the whole
/// table, which is why it is hopeless for dynamic graphs.
#[derive(Clone, Debug, Default)]
pub struct AliasTable {
    /// Acceptance probability of each slot (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Fallback index taken when the acceptance draw fails.
    alias: Vec<u32>,
    total: f64,
}

impl AliasTable {
    /// Build with Vose's `O(n)` algorithm.
    pub fn from_weights(weights: &[f64]) -> Self {
        let n = weights.len();
        if n == 0 {
            return Self::default();
        }
        let total: f64 = weights.iter().sum();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        // Scale so the average weight is 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = large.pop().expect("checked non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias, total }
    }

    /// Number of elements indexed.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl WeightedIndex for AliasTable {
    fn len(&self) -> usize {
        AliasTable::len(self)
    }

    fn total(&self) -> f64 {
        self.total
    }

    /// Maps the residual mass to (slot, acceptance draw): the integer part
    /// of `r * n / total` picks the slot, the fractional part drives the
    /// accept/alias decision — the standard one-uniform alias draw.
    fn sample_with(&self, r: f64) -> usize {
        debug_assert!(!self.is_empty());
        let n = self.len();
        let x = (r / self.total * n as f64).min(n as f64 - 1e-9);
        let slot = x as usize;
        let frac = x - slot as f64;
        if frac < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

impl DeepSize for AliasTable {
    fn heap_bytes(&self) -> usize {
        self.prob.capacity() * std::mem::size_of::<f64>()
            + self.alias.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::from_weights(&[1.0; 8]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[t.sample(&mut rng).unwrap()] += 1;
        }
        for c in counts {
            let f = c as f64 / 80_000.0;
            assert!((f - 0.125).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_weights_sample_proportionally() {
        let w = [8.0, 1.0, 1.0];
        let t = AliasTable::from_weights(&w);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[t.sample(&mut rng).unwrap()] += 1;
        }
        assert!((counts[0] as f64 / 50_000.0 - 0.8).abs() < 0.02);
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let t = AliasTable::from_weights(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng).unwrap();
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn singleton_always_sampled() {
        let t = AliasTable::from_weights(&[0.7]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), Some(0));
    }

    #[test]
    fn empty_table() {
        let t = AliasTable::from_weights(&[]);
        assert!(t.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), None);
    }

    #[test]
    fn memory_is_double_a_cstable() {
        use crate::CsTable;
        let w = vec![1.0; 1024];
        let alias = AliasTable::from_weights(&w);
        let cs = CsTable::from_weights(&w);
        // 12 bytes/element (f64 + u32) vs 8 bytes/element.
        assert_eq!(alias.heap_bytes(), 1024 * 12);
        assert_eq!(cs.heap_bytes(), 1024 * 8);
    }
}
