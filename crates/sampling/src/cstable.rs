//! The cumulative sum table (CSTable) and the Inverse Transform Sampling
//! (ITS) search — the indexing structure PlatoGL uses everywhere and
//! PlatoD2GL keeps only for samtree internal nodes.

use crate::WeightedIndex;
use platod2gl_mem::DeepSize;

/// A cumulative sum table: entry `i` is the strict prefix sum
/// `Σ_{j=0}^{i} w_j` (paper Eq. 2).
///
/// Sampling is a binary search (`O(log n)`), but any change to an element at
/// position `i` forces rewriting every entry after `i` — the `O(n)`
/// maintenance cost that motivates the FSTable (paper Table II):
///
/// | operation | cost |
/// |---|---|
/// | new insertion (append) | `O(1)` amortized |
/// | in-place weight update | `O(n)` |
/// | deletion | `O(n)` |
/// | weighted sample (ITS) | `O(log n)` |
///
/// ```
/// use platod2gl_sampling::{CsTable, WeightedIndex};
///
/// let mut t = CsTable::from_weights(&[1.0, 2.0, 3.0]);
/// assert_eq!(t.its_search(0.5), 0);  // cumulative boundaries: 1, 3, 6
/// assert_eq!(t.its_search(2.9), 1);
/// t.set(0, 4.0);                     // O(n): rewrites every later entry
/// assert_eq!(t.total(), 9.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsTable {
    cumsum: Vec<f64>,
}

impl CsTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self { cumsum: Vec::new() }
    }

    /// Create an empty table with room for `cap` weights.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cumsum: Vec::with_capacity(cap),
        }
    }

    /// Build from raw weights in `O(n)`.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut cumsum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumsum.push(acc);
        }
        Self { cumsum }
    }

    /// Number of weights stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.cumsum.len()
    }

    /// Whether the table holds no weights.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cumsum.is_empty()
    }

    /// The strict prefix sum `C[i]`.
    #[inline]
    pub fn prefix_sum(&self, i: usize) -> f64 {
        self.cumsum[i]
    }

    /// Recover the raw weight at `i` in `O(1)`.
    pub fn get(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumsum[0]
        } else {
            self.cumsum[i] - self.cumsum[i - 1]
        }
    }

    /// Append a weight — the one cheap maintenance case, `O(1)` amortized.
    pub fn push(&mut self, weight: f64) {
        let prev = self.cumsum.last().copied().unwrap_or(0.0);
        self.cumsum.push(prev + weight);
    }

    /// In-place update: set `w_i` to `weight`. `O(n)` — every entry at or
    /// after `i` must be rewritten.
    pub fn set(&mut self, i: usize, weight: f64) {
        let delta = weight - self.get(i);
        for c in &mut self.cumsum[i..] {
            *c += delta;
        }
    }

    /// In-place update: add `delta` to `w_i`. `O(n)`.
    pub fn add(&mut self, i: usize, delta: f64) {
        for c in &mut self.cumsum[i..] {
            *c += delta;
        }
    }

    /// Insert a weight at position `i`, shifting later elements. `O(n)`.
    ///
    /// Needed by samtree internal nodes, whose ID lists are ordered: a child
    /// split inserts the new child's weight next to its sibling's.
    pub fn insert(&mut self, i: usize, weight: f64) {
        debug_assert!(i <= self.len());
        let below = if i == 0 { 0.0 } else { self.cumsum[i - 1] };
        self.cumsum.insert(i, below + weight);
        for c in &mut self.cumsum[i + 1..] {
            *c += weight;
        }
    }

    /// Remove the element at position `i`, shifting later elements. `O(n)`.
    pub fn remove(&mut self, i: usize) -> f64 {
        let w = self.get(i);
        self.cumsum.remove(i);
        for c in &mut self.cumsum[i..] {
            *c -= w;
        }
        w
    }

    /// Multiply every weight by `factor` in `O(n)` (prefix sums are linear
    /// in the weights).
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.cumsum {
            *c *= factor;
        }
    }

    /// Recover all raw weights.
    pub fn weights(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Rebuild from recovered weights, clearing floating-point drift.
    pub fn rebuild(&mut self) {
        let w = self.weights();
        *self = Self::from_weights(&w);
    }

    /// ITS search: the smallest `i` with `C[i] > r` (paper Sec. II-B),
    /// `O(log n)` binary search.
    pub fn its_search(&self, r: f64) -> usize {
        debug_assert!(!self.is_empty());
        let mut lo = 0usize;
        let mut hi = self.cumsum.len() - 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cumsum[mid] > r {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

impl WeightedIndex for CsTable {
    fn len(&self) -> usize {
        CsTable::len(self)
    }

    fn total(&self) -> f64 {
        self.cumsum.last().copied().unwrap_or(0.0)
    }

    fn sample_with(&self, r: f64) -> usize {
        self.its_search(r)
    }
}

impl DeepSize for CsTable {
    fn heap_bytes(&self) -> usize {
        self.cumsum.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn from_weights_builds_strict_prefix_sums() {
        // Fig. 3 example: weights of v1's first leaf are 0.1 and 0.4.
        let t = CsTable::from_weights(&[0.1, 0.4]);
        assert!((t.prefix_sum(0) - 0.1).abs() < EPS);
        assert!((t.prefix_sum(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn push_extends_cumsum() {
        let mut t = CsTable::new();
        t.push(2.0);
        t.push(3.0);
        t.push(1.0);
        assert_eq!(t.weights(), vec![2.0, 3.0, 1.0]);
        assert!((t.total() - 6.0).abs() < EPS);
    }

    #[test]
    fn set_rewrites_suffix() {
        let mut t = CsTable::from_weights(&[1.0, 2.0, 3.0, 4.0]);
        t.set(1, 5.0);
        assert_eq!(t.weights(), vec![1.0, 5.0, 3.0, 4.0]);
        assert!((t.total() - 13.0).abs() < EPS);
    }

    #[test]
    fn insert_and_remove_shift_elements() {
        let mut t = CsTable::from_weights(&[1.0, 3.0]);
        t.insert(1, 2.0);
        assert_eq!(t.weights(), vec![1.0, 2.0, 3.0]);
        t.insert(0, 0.5);
        assert_eq!(t.weights(), vec![0.5, 1.0, 2.0, 3.0]);
        t.insert(4, 9.0);
        assert_eq!(t.weights(), vec![0.5, 1.0, 2.0, 3.0, 9.0]);
        let removed = t.remove(2);
        assert!((removed - 2.0).abs() < EPS);
        assert_eq!(t.weights(), vec![0.5, 1.0, 3.0, 9.0]);
    }

    #[test]
    fn its_search_finds_smallest_entry_above_r() {
        let t = CsTable::from_weights(&[1.0, 2.0, 3.0, 4.0]);
        // boundaries: 1, 3, 6, 10
        assert_eq!(t.its_search(0.0), 0);
        assert_eq!(t.its_search(0.999), 0);
        assert_eq!(t.its_search(1.0), 1);
        assert_eq!(t.its_search(2.999), 1);
        assert_eq!(t.its_search(3.0), 2);
        assert_eq!(t.its_search(6.0), 3);
        assert_eq!(t.its_search(9.999), 3);
    }

    #[test]
    fn get_recovers_weights() {
        let w = [0.25, 4.0, 0.0, 1.5];
        let t = CsTable::from_weights(&w);
        for (i, &x) in w.iter().enumerate() {
            assert!((t.get(i) - x).abs() < EPS);
        }
    }

    #[test]
    fn scale_multiplies_all_weights() {
        let mut t = CsTable::from_weights(&[1.0, 2.0, 3.0]);
        t.scale(0.5);
        assert_eq!(t.weights(), vec![0.5, 1.0, 1.5]);
        assert!((t.total() - 3.0).abs() < EPS);
    }

    #[test]
    fn rebuild_clears_drift() {
        let mut t = CsTable::from_weights(&[0.1; 32]);
        for i in 0..32 {
            t.add(i, 1e-3);
            t.add(i, -1e-3);
        }
        t.rebuild();
        for w in t.weights() {
            assert!((w - 0.1).abs() < EPS);
        }
    }

    #[test]
    fn deep_size_counts_capacity() {
        let mut t = CsTable::with_capacity(8);
        t.push(1.0);
        assert_eq!(t.heap_bytes(), 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ops_match_reference_vec(
            init in proptest::collection::vec(0.0f64..10.0, 1..50),
            ops in proptest::collection::vec((0usize..4, 0usize..100, 0.0f64..10.0), 0..60),
        ) {
            let mut reference = init.clone();
            let mut t = CsTable::from_weights(&init);
            for (kind, idx, w) in ops {
                match kind {
                    0 => { reference.push(w); t.push(w); }
                    1 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference[i] = w;
                        t.set(i, w);
                    }
                    2 if !reference.is_empty() => {
                        let i = idx % reference.len();
                        reference.remove(i);
                        t.remove(i);
                    }
                    3 => {
                        let i = idx % (reference.len() + 1);
                        reference.insert(i, w);
                        t.insert(i, w);
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(t.len(), reference.len());
            let got = t.weights();
            for (a, b) in got.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
