//! Criterion bench for Table V. The table itself is an operation-count
//! distribution, printed during setup; the timed kernel is the instrumented
//! ingest whose counters produce it, across node capacities.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use platod2gl::DatasetProfile;
use platod2gl_bench::{build_graph, d2gl_with};

fn bench_distribution(c: &mut Criterion) {
    let profile = DatasetProfile::wechat().scaled_to_edges(30_000);
    println!("\nTable V grid (WeChat @ 30k directed edges):");
    println!(
        "  {:>9} {:>12} {:>14} {:>8}",
        "capacity", "leaf ops", "non-leaf ops", "leaf %"
    );
    for capacity in [64usize, 128, 256, 512, 1024] {
        let store = d2gl_with(capacity, 0, true);
        build_graph(&store, &profile, 8);
        let stats = store.op_stats();
        println!(
            "  {:>9} {:>12} {:>14} {:>7.2}%",
            capacity,
            stats.leaf_ops,
            stats.internal_ops,
            stats.leaf_fraction() * 100.0
        );
    }
    let mut group = c.benchmark_group("table05_instrumented_ingest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for capacity in [64usize, 256, 1024] {
        group.bench_function(BenchmarkId::from_parameter(capacity), |b| {
            b.iter_batched(
                || d2gl_with(capacity, 0, true),
                |store| build_graph(&store, &profile, 8),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
