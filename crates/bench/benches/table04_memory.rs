//! Criterion bench for Table IV. Memory is not a timing quantity, so this
//! bench (a) prints the Table IV byte grid once during setup and (b) times
//! the deep-size accounting walk itself, which is the measurable kernel.
//! The full-scale grid lives in `report_table04_memory`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platod2gl::{human_bytes, GraphStore};
use platod2gl_bench::{build_graph, datasets, Engine};

fn bench_memory(c: &mut Criterion) {
    let profile = &datasets(30_000)[0]; // OGBN-like
    let stores: Vec<(Engine, Box<dyn GraphStore>)> = Engine::ALL
        .iter()
        .map(|&e| {
            let s = e.build();
            build_graph(s.as_ref(), profile, 8);
            (e, s)
        })
        .collect();
    println!("\nTable IV grid ({} @ 30k directed edges):", profile.name);
    for (engine, store) in &stores {
        println!(
            "  {:<10} {:>12} ({} edges)",
            engine.name(),
            human_bytes(store.topology_bytes()),
            store.num_edges()
        );
    }
    let mut group = c.benchmark_group("table04_memory_accounting");
    group.sample_size(10);
    for (engine, store) in &stores {
        group.bench_function(BenchmarkId::from_parameter(engine.name()), |b| {
            b.iter(|| std::hint::black_box(store.topology_bytes()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
