//! Criterion bench for Fig. 8: time cost of graph building, per dataset and
//! engine, at a reduced stable scale (the full grid lives in
//! `report_fig08_build`).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use platod2gl_bench::{build_graph, datasets, Engine};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for profile in datasets(20_000) {
        for engine in Engine::ALL {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), &profile.name),
                &profile,
                |b, profile| {
                    b.iter_batched(
                        || engine.build(),
                        |store| build_graph(store.as_ref(), profile, 8),
                        BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
