//! Criterion bench for Table II: maintenance and sampling cost of the two
//! weighted-sampling indexes (ITS/CSTable vs FTS/FSTable) as the element
//! count grows. The shape to look for: CSTable in-place/delete cost grows
//! linearly with n; everything else stays near-flat (logarithmic).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use platod2gl::{CsTable, FsTable};

fn bench_inplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("table02_inplace_update");
    for exp in [8u32, 12, 16] {
        let n = 1usize << exp;
        let weights = vec![1.0f64; n];
        group.bench_with_input(BenchmarkId::new("CSTable", n), &weights, |b, w| {
            let mut cs = CsTable::from_weights(w);
            b.iter(|| cs.add(3, 1e-12));
        });
        group.bench_with_input(BenchmarkId::new("FSTable", n), &weights, |b, w| {
            let mut fs = FsTable::from_weights(w);
            b.iter(|| fs.add(3, 1e-12));
        });
    }
    group.finish();
}

fn bench_insert_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("table02_new_insertion");
    for exp in [8u32, 12, 16] {
        let n = 1usize << exp;
        let weights = vec![1.0f64; n];
        group.bench_with_input(BenchmarkId::new("CSTable", n), &weights, |b, w| {
            b.iter_batched_ref(
                || CsTable::from_weights(w),
                |cs| cs.push(1.0),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("FSTable", n), &weights, |b, w| {
            b.iter_batched_ref(
                || FsTable::from_weights(w),
                |fs| fs.push(1.0),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("table02_deletion");
    for exp in [8u32, 12, 16] {
        let n = 1usize << exp;
        let weights = vec![1.0f64; n];
        group.bench_with_input(BenchmarkId::new("CSTable", n), &weights, |b, w| {
            b.iter_batched_ref(
                || CsTable::from_weights(w),
                |cs| cs.remove(0),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("FSTable", n), &weights, |b, w| {
            b.iter_batched_ref(
                || FsTable::from_weights(w),
                |fs| fs.swap_delete(0),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("table02_sampling");
    for exp in [8u32, 12, 16] {
        let n = 1usize << exp;
        let weights = vec![1.0f64; n];
        let cs = CsTable::from_weights(&weights);
        let fs = FsTable::from_weights(&weights);
        group.bench_function(BenchmarkId::new("ITS", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                std::hint::black_box(cs.its_search(i as f64 + 0.5))
            });
        });
        group.bench_function(BenchmarkId::new("FTS", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % n;
                std::hint::black_box(fs.sample_with(i as f64 + 0.5))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inplace,
    bench_insert_append,
    bench_delete,
    bench_sample
);
criterion_main!(benches);
