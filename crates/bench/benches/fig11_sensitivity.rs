//! Criterion bench for Fig. 11: PlatoD2GL parameter sensitivity — batch
//! size (a), samtree node capacity (b), thread count (c) and α-Split
//! slackness (d) — on the WeChat profile.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use platod2gl::DatasetProfile;
use platod2gl_bench::{build_graph, d2gl_with, update_batches};

fn profile() -> DatasetProfile {
    DatasetProfile::wechat().scaled_to_edges(30_000)
}

/// Fig. 11a: update latency vs batch size.
fn bench_batch_size(c: &mut Criterion) {
    let profile = profile();
    let mut group = c.benchmark_group("fig11a_batch_size");
    group.sample_size(10);
    for exp in [10u32, 12, 14] {
        let store = d2gl_with(256, 0, true);
        build_graph(&store, &profile, 8);
        let batches = update_batches(&profile, 1 << exp, 8, 3);
        group.bench_function(BenchmarkId::from_parameter(format!("2^{exp}")), |b| {
            let mut i = 0usize;
            b.iter(|| {
                store.apply_batch_parallel(&batches[i % batches.len()], 1);
                i += 1;
            });
        });
    }
    group.finish();
}

/// Fig. 11b: update latency vs samtree node capacity.
fn bench_capacity(c: &mut Criterion) {
    let profile = profile();
    let mut group = c.benchmark_group("fig11b_node_capacity");
    group.sample_size(10);
    for capacity in [64usize, 256, 1024] {
        let store = d2gl_with(capacity, 0, true);
        build_graph(&store, &profile, 8);
        let batches = update_batches(&profile, 1 << 12, 8, 3);
        group.bench_function(BenchmarkId::from_parameter(capacity), |b| {
            let mut i = 0usize;
            b.iter(|| {
                store.apply_batch_parallel(&batches[i % batches.len()], 1);
                i += 1;
            });
        });
    }
    group.finish();
}

/// Fig. 11c: concurrent update latency vs worker threads.
fn bench_threads(c: &mut Criterion) {
    let profile = profile();
    let mut group = c.benchmark_group("fig11c_threads_batch4096");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let store = d2gl_with(256, 0, true);
        build_graph(&store, &profile, 8);
        let batches = update_batches(&profile, 1 << 12, 8, 3);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let mut i = 0usize;
            b.iter(|| {
                store.apply_batch_parallel(&batches[i % batches.len()], threads);
                i += 1;
            });
        });
    }
    group.finish();
}

/// Fig. 11d: full build time vs α-Split slackness.
fn bench_alpha(c: &mut Criterion) {
    let profile = profile();
    let mut group = c.benchmark_group("fig11d_alpha");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for alpha in [0usize, 8, 32] {
        group.bench_function(BenchmarkId::from_parameter(alpha), |b| {
            b.iter_batched(
                || d2gl_with(256, alpha, true),
                |store| build_graph(&store, &profile, 8),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_size,
    bench_capacity,
    bench_threads,
    bench_alpha
);
criterion_main!(benches);
