//! Criterion bench for Fig. 9: dynamic-update batch latency on the WeChat
//! profile, PlatoGL vs PlatoD2GL, across batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use platod2gl::DatasetProfile;
use platod2gl_bench::{build_graph, update_batches, Engine};

fn bench_updates(c: &mut Criterion) {
    let profile = DatasetProfile::wechat().scaled_to_edges(30_000);
    let mut group = c.benchmark_group("fig09_updates_wechat");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for engine in [Engine::PlatoGl, Engine::PlatoD2Gl] {
        for exp in [10u32, 12, 14] {
            let batch = 1usize << exp;
            // Build once; updates mutate but keep the graph near its
            // steady-state size (inserts mostly collide, deletes offset).
            let store = engine.build();
            build_graph(store.as_ref(), &profile, 8);
            let batches = update_batches(&profile, batch, 8, 77);
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("2^{exp}")),
                &batches,
                |b, batches| {
                    let mut i = 0usize;
                    b.iter(|| {
                        store.apply_batch(&batches[i % batches.len()]);
                        i += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
