//! Criterion bench for Fig. 10: neighbor sampling (a-c) and 2-hop subgraph
//! sampling (d-f) latency per engine, on the OGBN-like profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platod2gl::{DatasetProfile, EdgeType, GraphStore, NeighborSampler, SubgraphSampler};
use platod2gl_bench::{build_graph, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_stores(profile: &DatasetProfile) -> Vec<(Engine, Box<dyn GraphStore>)> {
    Engine::ALL
        .iter()
        .map(|&e| {
            let s = e.build();
            build_graph(s.as_ref(), profile, 8);
            (e, s)
        })
        .collect()
}

fn bench_neighbor(c: &mut Criterion) {
    let profile = DatasetProfile::ogbn().scaled_to_edges(40_000);
    let stores = build_stores(&profile);
    let seeds = profile.sample_sources(256, 5);
    let sampler = NeighborSampler::new(EdgeType(0), 50);
    let mut group = c.benchmark_group("fig10_neighbor_sampling_batch256");
    group.sample_size(20);
    for (engine, store) in &stores {
        group.bench_function(BenchmarkId::from_parameter(engine.name()), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| std::hint::black_box(sampler.sample(store.as_ref(), &seeds, &mut rng)));
        });
    }
    group.finish();
}

fn bench_subgraph(c: &mut Criterion) {
    let profile = DatasetProfile::ogbn().scaled_to_edges(40_000);
    let stores = build_stores(&profile);
    let seeds = profile.sample_sources(64, 5);
    let sampler = SubgraphSampler::new(EdgeType(0), vec![10, 10]);
    let mut group = c.benchmark_group("fig10_subgraph_sampling_batch64");
    group.sample_size(20);
    for (engine, store) in &stores {
        group.bench_function(BenchmarkId::from_parameter(engine.name()), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| std::hint::black_box(sampler.sample(store.as_ref(), &seeds, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighbor, bench_subgraph);
criterion_main!(benches);
