//! Serving-core trail: connection-churn throughput of the threaded vs
//! event-loop RPC backends at 64/512/2048 concurrent connections, plus a
//! 10k-accept endurance phase; writes BENCH_8.json.
//! Run: cargo run -p platod2gl-bench --release --bin report_rpc

fn main() {
    platod2gl_bench::experiments::rpc_report();
}
