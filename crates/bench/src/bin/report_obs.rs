//! Unified observability snapshot for a full-stack training run: per-
//! subsystem metric digest, hot-path latency table, then the Prometheus
//! and JSON expositions. Run: cargo run -p platod2gl-bench --release --bin report_obs

fn main() {
    platod2gl_bench::experiments::obs_report();
}
