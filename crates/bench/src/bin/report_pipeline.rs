//! Mini-batch training pipeline throughput: prefetch on/off x neighbor
//! cache on/off under streaming updates and simulated per-shard RPC
//! latency. Run: cargo run -p platod2gl-bench --release --bin report_pipeline

fn main() {
    platod2gl_bench::experiments::pipeline_throughput();
}
