//! Report binary for the paper's fig11_sensitivity experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_fig11_sensitivity

fn main() {
    platod2gl_bench::experiments::fig11_sensitivity();
}
