//! Standing perf-trail entry point. Each PR lands one machine-readable
//! `BENCH_<n>.json`; this bin regenerates the current PR's file and then
//! prints the accumulated trail — every `BENCH_*.json` in the working
//! directory, in PR order, one JSON line each — so a regression is a
//! one-command diff against the numbers the previous PRs shipped with.
//!
//! When a PR adds a new report, point the call below at its report fn.
//! Run: cargo run -p platod2gl-bench --release --bin report_bench

fn main() {
    // Current PR's report (PR 9: tracing overhead, BENCH_9.json).
    platod2gl_bench::experiments::obs_overhead_report();

    let mut trail: Vec<(u32, String)> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().to_string_lossy().into_owned();
            let n = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, name))
        })
        .collect();
    trail.sort_unstable();

    println!("\n=== Perf trail ({} report(s)) ===", trail.len());
    for (_, name) in &trail {
        match std::fs::read_to_string(name) {
            Ok(body) => print!("{name}: {body}"),
            Err(e) => println!("{name}: unreadable ({e})"),
        }
    }
}
