//! Temporal plane: windowed vs unwindowed k-hop sampling throughput and
//! the recency-decay sweep rate; writes BENCH_10.json.
//! Run: cargo run -p platod2gl-bench --release --bin report_temporal

fn main() {
    platod2gl_bench::experiments::temporal_report();
}
