//! Tracing-overhead trail: pipelined sampling throughput with trace
//! context on every batch vs none, served by the event-loop backend;
//! writes BENCH_9.json (verify.sh gates overhead_ratio >= 0.9).
//! Run: cargo run -p platod2gl-bench --release --bin report_obs_overhead

fn main() {
    platod2gl_bench::experiments::obs_overhead_report();
}
