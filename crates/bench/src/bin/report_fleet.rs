//! Scale-out trail: fleet sampling throughput at 1/2/3 servers vs one
//! remote server, under a uniform modeled shard latency; writes
//! BENCH_7.json. Run: cargo run -p platod2gl-bench --release --bin report_fleet

fn main() {
    platod2gl_bench::experiments::fleet_report();
}
