//! Report binary for the paper's table05_distribution experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_table05_distribution

fn main() {
    platod2gl_bench::experiments::table05_distribution();
}
