//! Regenerate every table and figure of the paper's evaluation section.
//! Run: cargo run -p platod2gl-bench --release --bin report_all

fn main() {
    platod2gl_bench::experiments::run_all();
}
