//! Report binary for the paper's fig08_build experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_fig08_build

fn main() {
    platod2gl_bench::experiments::fig08_build();
}
