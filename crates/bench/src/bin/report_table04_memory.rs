//! Report binary for the paper's table04_memory experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_table04_memory

fn main() {
    platod2gl_bench::experiments::table04_memory();
}
