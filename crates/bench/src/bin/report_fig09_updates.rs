//! Report binary for the paper's fig09_updates experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_fig09_updates

fn main() {
    platod2gl_bench::experiments::fig09_updates();
}
