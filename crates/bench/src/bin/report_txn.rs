//! Transactional write plane throughput: validated `apply_txn` vs the raw
//! sharded batch path, across batch sizes; writes BENCH_6.json.
//! Run: cargo run -p platod2gl-bench --release --bin report_txn

fn main() {
    platod2gl_bench::experiments::txn_report();
}
