//! Report binary for the paper's fig10_sampling experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_fig10_sampling

fn main() {
    platod2gl_bench::experiments::fig10_sampling();
}
