//! Ablations of PlatoD2GL's design choices beyond the paper's figures.
//! Run: cargo run -p platod2gl-bench --release --bin report_ablations

fn main() {
    platod2gl_bench::experiments::ablations();
}
