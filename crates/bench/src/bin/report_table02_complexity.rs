//! Report binary for the paper's table02_complexity experiment.
//! Run: cargo run -p platod2gl-bench --release --bin report_table02_complexity

fn main() {
    platod2gl_bench::experiments::table02_complexity();
}
