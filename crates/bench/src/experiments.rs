//! The full experiment grid, one function per table/figure. Report binaries
//! are thin wrappers; `report_all` runs everything in paper order.

use crate::{
    build_graph, d2gl_with, datasets, header, ms, row, scale_edges, time_batches, update_batches,
    Engine,
};
use platod2gl::{
    human_bytes, CsTable, DatasetProfile, EdgeType, FsTable, GraphStore, NeighborSampler,
    SubgraphSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Fig. 8: time cost of graph building, 3 datasets x 4 engines.
pub fn fig08_build() {
    println!("\n=== Fig. 8: time cost of graph building (seconds) ===");
    let mut ds = datasets(scale_edges());
    // Fourth column: WeChat at degree-preserving scale, the hub regime the
    // production graph lives in (see DatasetProfile::wechat_hub).
    ds.push(DatasetProfile::wechat_hub(scale_edges()));
    header(&["engine", "OGBN", "Reddit", "WeChat", "WeChat-hub"]);
    let mut d2gl_secs = vec![0.0; ds.len()];
    let mut best_other = vec![f64::INFINITY; ds.len()];
    for engine in Engine::ALL {
        let mut cells = Vec::new();
        for (i, profile) in ds.iter().enumerate() {
            let store = engine.build();
            let t = build_graph(store.as_ref(), profile, 8).as_secs_f64();
            if engine == Engine::PlatoD2Gl {
                d2gl_secs[i] = t;
            } else if engine != Engine::PlatoD2GlNoCp {
                best_other[i] = best_other[i].min(t);
            }
            cells.push(format!("{t:.2}"));
        }
        row(engine.name(), &cells);
    }
    for (i, profile) in ds.iter().enumerate() {
        println!(
            "  {}: PlatoD2GL is {:.1}x faster than the best baseline",
            profile.name,
            best_other[i] / d2gl_secs[i].max(1e-9)
        );
    }
}

/// Fig. 9: dynamic update time vs batch size on WeChat (PlatoGL vs
/// PlatoD2GL), milliseconds per batch.
pub fn fig09_updates() {
    println!(
        "\n=== Fig. 9: dynamic updates on WeChat (degree-preserving scale), time (ms) vs batch size ==="
    );
    // The production graph's hubs hold up to millions of distinct
    // neighbors; `wechat_hub` keeps that regime at laptop scale (see
    // DatasetProfile::wechat_hub docs).
    let profile = DatasetProfile::wechat_hub(scale_edges());
    header(&["batch", "PlatoGL", "PlatoD2GL", "speedup"]);
    for exp in [10u32, 11, 12, 13, 14, 15, 16] {
        let batch = 1usize << exp;
        let num_batches = (1 << 18) / batch.max(1);
        let num_batches = num_batches.clamp(2, 32);
        let mut cells = Vec::new();
        let mut times = Vec::new();
        for engine in [Engine::PlatoGl, Engine::PlatoD2Gl] {
            let store = engine.build();
            build_graph(store.as_ref(), &profile, 8);
            let batches = update_batches(&profile, batch, num_batches, 77);
            let t = time_batches(store.as_ref(), &batches);
            times.push(t.as_secs_f64());
            cells.push(ms(t));
        }
        cells.push(format!("{:.1}x", times[0] / times[1].max(1e-12)));
        row(&format!("2^{exp}"), &cells);
    }
}

/// Table II (empirical): per-operation cost of the two sampling indexes as
/// the element count grows — the measured counterpart of the complexity
/// table.
pub fn table02_complexity() {
    println!("\n=== Table II (measured): ns/op of index maintenance & sampling ===");
    header(&["n", "op", "ITS/CSTable", "FTS/FSTable"]);
    for exp in [8u32, 10, 12, 14, 16] {
        let n = 1usize << exp;
        let weights = vec![1.0f64; n];
        // In-place update at the front (worst case for CSTable).
        let mut cs = CsTable::from_weights(&weights);
        let mut fs = FsTable::from_weights(&weights);
        let iters = 2_000;
        let t0 = Instant::now();
        for i in 0..iters {
            cs.add(i % 8, 1e-9);
        }
        let cs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        let t0 = Instant::now();
        for i in 0..iters {
            fs.add(i % 8, 1e-9);
        }
        let fs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        row(
            &format!("2^{exp}"),
            &[
                "in-place".into(),
                format!("{cs_t:.0}"),
                format!("{fs_t:.0}"),
            ],
        );
        // Deletion (bounded by the table size so it never drains empty).
        let mut cs = CsTable::from_weights(&weights);
        let mut fs = FsTable::from_weights(&weights);
        let iters = (n / 2).min(1_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            cs.remove(0);
        }
        let cs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        let t0 = Instant::now();
        for _ in 0..iters {
            fs.swap_delete(0);
        }
        let fs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        row(
            "",
            &["delete".into(), format!("{cs_t:.0}"), format!("{fs_t:.0}")],
        );
        // Sampling.
        let cs = CsTable::from_weights(&weights);
        let fs = FsTable::from_weights(&weights);
        let iters = 20_000;
        let t0 = Instant::now();
        for i in 0..iters {
            std::hint::black_box(cs.its_search((i % n) as f64 + 0.5));
        }
        let cs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        let t0 = Instant::now();
        for i in 0..iters {
            std::hint::black_box(fs.sample_with((i % n) as f64 + 0.5));
        }
        let fs_t = t0.elapsed().as_nanos() as f64 / iters as f64;
        row(
            "",
            &["sample".into(), format!("{cs_t:.0}"), format!("{fs_t:.0}")],
        );
    }
    println!("  expectation: ITS in-place/delete grow linearly with n; all else logarithmic");
}

/// Table IV: memory cost after graph building.
pub fn table04_memory() {
    println!("\n=== Table IV: memory cost after graph building ===");
    let mut ds = datasets(scale_edges());
    ds.push(DatasetProfile::wechat_hub(scale_edges()));
    header(&["engine", "OGBN", "Reddit", "WeChat", "WeChat-hub"]);
    let mut grid = vec![vec![0usize; ds.len()]; Engine::ALL.len()];
    for (ei, engine) in Engine::ALL.iter().enumerate() {
        let mut cells = Vec::new();
        for (di, profile) in ds.iter().enumerate() {
            let store = engine.build();
            build_graph(store.as_ref(), profile, 8);
            grid[ei][di] = store.topology_bytes();
            cells.push(human_bytes(grid[ei][di]));
        }
        row(engine.name(), &cells);
    }
    for (di, profile) in ds.iter().enumerate() {
        let d2gl = grid[2][di] as f64;
        let second_best = grid[0][di].min(grid[1][di]) as f64;
        let no_cp = grid[3][di] as f64;
        println!(
            "  {}: {:.1}% below second-best, {:.1}% below w/o CP",
            profile.name,
            (1.0 - d2gl / second_best) * 100.0,
            (1.0 - d2gl / no_cp) * 100.0
        );
    }
}

/// Table V: distribution of updating operations across leaf / non-leaf
/// nodes while building the WeChat graph, by node capacity.
pub fn table05_distribution() {
    println!("\n=== Table V: update-op distribution on WeChat by node capacity ===");
    let profile = DatasetProfile::wechat_hub(scale_edges());
    header(&["capacity", "leaf ops", "non-leaf ops", "leaf %"]);
    for capacity in [64usize, 128, 256, 512, 1024] {
        let store = d2gl_with(capacity, 0, true);
        build_graph(&store, &profile, 8);
        let stats = store.op_stats();
        row(
            &capacity.to_string(),
            &[
                stats.leaf_ops.to_string(),
                stats.internal_ops.to_string(),
                format!("{:.2}%", stats.leaf_fraction() * 100.0),
            ],
        );
    }
}

/// Fig. 10a-c: neighbor sampling (50 neighbors per vertex) time vs batch
/// size, per dataset; Fig. 10d-f: 2-hop subgraph sampling.
pub fn fig10_sampling() {
    let ds = datasets(scale_edges());
    let engines = [
        Engine::AliGraph,
        Engine::PlatoGl,
        Engine::PlatoD2Gl,
        Engine::PlatoD2GlNoCp,
    ];

    println!("\n=== Fig. 10a-c: neighbor sampling (50 neighbors), time (ms) vs batch ===");
    for profile in &ds {
        println!("\n--- {} ---", profile.name);
        let stores: Vec<Box<dyn GraphStore>> = engines
            .iter()
            .map(|e| {
                let s = e.build();
                build_graph(s.as_ref(), profile, 8);
                s
            })
            .collect();
        header(&["batch", "AliGraph", "PlatoGL", "PlatoD2GL", "w/o CP"]);
        for exp in [8u32, 10, 12, 14] {
            let batch_size = 1usize << exp;
            let seeds = profile.sample_sources(batch_size, 5);
            let sampler = NeighborSampler::new(EdgeType(0), 50);
            let mut cells = Vec::new();
            for store in &stores {
                let mut rng = StdRng::seed_from_u64(9);
                let t = Instant::now();
                std::hint::black_box(sampler.sample(store.as_ref(), &seeds, &mut rng));
                cells.push(ms(t.elapsed()));
            }
            row(&format!("2^{exp}"), &cells);
        }
    }

    println!("\n=== Fig. 10d-f: 2-hop subgraph sampling (fanout 10x10), time (ms) vs batch ===");
    for profile in &ds {
        println!("\n--- {} ---", profile.name);
        let stores: Vec<Box<dyn GraphStore>> = engines
            .iter()
            .map(|e| {
                let s = e.build();
                build_graph(s.as_ref(), profile, 8);
                s
            })
            .collect();
        header(&["batch", "AliGraph", "PlatoGL", "PlatoD2GL", "w/o CP"]);
        for exp in [6u32, 8, 10, 12] {
            let batch_size = 1usize << exp;
            let seeds = profile.sample_sources(batch_size, 5);
            let sampler = SubgraphSampler::new(EdgeType(0), vec![10, 10]);
            let mut cells = Vec::new();
            for store in &stores {
                let mut rng = StdRng::seed_from_u64(9);
                let t = Instant::now();
                std::hint::black_box(sampler.sample(store.as_ref(), &seeds, &mut rng));
                cells.push(ms(t.elapsed()));
            }
            row(&format!("2^{exp}"), &cells);
        }
    }
}

/// Fig. 11: parameter sensitivity of PlatoD2GL on WeChat.
pub fn fig11_sensitivity() {
    let profile = DatasetProfile::wechat_hub(scale_edges());

    // (a) insertion time vs batch size.
    println!("\n=== Fig. 11a: dynamic insertion time (ms) vs batch size ===");
    header(&["batch", "time (ms)"]);
    for exp in [10u32, 12, 14, 16, 17] {
        let batch = 1usize << exp;
        let store = d2gl_with(256, 0, true);
        build_graph(&store, &profile, 8);
        let batches = update_batches(&profile, batch, 4, 3);
        let t = time_batches(&store, &batches);
        row(&format!("2^{exp}"), &[ms(t)]);
    }

    // (b) insertion time vs samtree node capacity.
    println!("\n=== Fig. 11b: dynamic insertion time (ms) vs node capacity ===");
    header(&["capacity", "time (ms)"]);
    for capacity in [64usize, 128, 256, 512, 1024] {
        let store = d2gl_with(capacity, 0, true);
        build_graph(&store, &profile, 8);
        let batches = update_batches(&profile, 1 << 14, 4, 3);
        let t = time_batches(&store, &batches);
        row(&capacity.to_string(), &[ms(t)]);
    }

    // (c) concurrent update time vs threads.
    println!("\n=== Fig. 11c: concurrent dynamic update time (ms) vs threads ===");
    header(&["threads", "batch 2^12", "batch 2^13", "batch 2^14"]);
    for threads in [1usize, 2, 4, 8, 16] {
        let mut cells = Vec::new();
        for exp in [12u32, 13, 14] {
            let store = d2gl_with(256, 0, true);
            build_graph(&store, &profile, 8);
            let batches = update_batches(&profile, 1 << exp, 4, 3);
            let t = Instant::now();
            for b in &batches {
                store.apply_batch_parallel(b, threads);
            }
            cells.push(ms(t.elapsed() / batches.len() as u32));
        }
        row(&threads.to_string(), &cells);
    }

    // (d) insertion time vs slackness alpha.
    println!("\n=== Fig. 11d: dynamic insertion time vs slackness alpha ===");
    header(&["alpha", "build (ms)"]);
    for alpha in [0usize, 4, 8, 16, 32] {
        let store = d2gl_with(256, alpha, true);
        let t = build_graph(&store, &profile, 8);
        row(&alpha.to_string(), &[ms(t)]);
    }
}

/// Ablations of PlatoD2GL's own design choices (beyond the paper's
/// figures): bottom-up bulk loading vs edge-at-a-time ingest, and the
/// Appendix-B grouped/batched update path vs naive per-op application.
pub fn ablations() {
    use platod2gl::DynamicGraphStore;
    let profile = DatasetProfile::wechat_hub(scale_edges());

    println!("\n=== Ablation: bulk bottom-up load vs incremental ingest ===");
    header(&["method", "time (s)", "edges"]);
    let edges: Vec<_> = profile.edge_stream(8).collect();
    let t = Instant::now();
    let store = DynamicGraphStore::with_defaults();
    store.bulk_build(edges.iter().copied());
    row(
        "bulk_build",
        &[
            format!("{:.2}", t.elapsed().as_secs_f64()),
            store.num_edges().to_string(),
        ],
    );
    let t = Instant::now();
    let store = DynamicGraphStore::with_defaults();
    for e in &edges {
        store.insert_edge(*e);
    }
    row(
        "incremental",
        &[
            format!("{:.2}", t.elapsed().as_secs_f64()),
            store.num_edges().to_string(),
        ],
    );

    println!("\n=== Ablation: grouped batch path (App. B) vs naive per-op ===");
    header(&["method", "ms / 16k-batch"]);
    let batches = update_batches(&profile, 1 << 14, 8, 3);
    let store = DynamicGraphStore::with_defaults();
    build_graph(&store, &profile, 8);
    let t = Instant::now();
    for b in &batches {
        store.apply_batch_parallel(b, 1); // sort + group + leaf-run batching
    }
    row("grouped", &[ms(t.elapsed() / batches.len() as u32)]);
    let store = DynamicGraphStore::with_defaults();
    build_graph(&store, &profile, 8);
    let t = Instant::now();
    for b in &batches {
        for op in b {
            store.apply(op); // one directory lookup + descent per op
        }
    }
    row("per-op", &[ms(t.elapsed() / batches.len() as u32)]);
    println!(
        "  note: grouping pays off when batches concentrate many ops per source\n\
         \x20 (and it is what makes multi-threaded application race-free);\n\
         \x20 with ~1-2 ops per tree the sort overhead can exceed the saving."
    );

    println!("\n=== Ablation: leaf index FSTable (paper) vs CSTable, by node capacity ===");
    use platod2gl::{LeafIndex, SamTreeConfig, StoreConfig};
    header(&["capacity", "FSTable ms", "CSTable ms", "FS speedup"]);
    for capacity in [256usize, 1024, 4096] {
        let mut times = Vec::new();
        for leaf_index in [LeafIndex::Fenwick, LeafIndex::CumSum] {
            let store = DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    capacity,
                    leaf_index,
                    ..SamTreeConfig::default()
                },
                ..StoreConfig::default()
            });
            build_graph(&store, &profile, 8);
            let batches = update_batches(&profile, 1 << 14, 8, 3);
            let t = Instant::now();
            for b in &batches {
                store.apply_batch_parallel(b, 1);
            }
            times.push(t.elapsed() / batches.len() as u32);
        }
        row(
            &capacity.to_string(),
            &[
                ms(times[0]),
                ms(times[1]),
                format!("{:.1}x", times[1].as_secs_f64() / times[0].as_secs_f64()),
            ],
        );
    }
    println!(
        "  the CSTable-leaf variant pays O(n_L) per in-place update/delete; the\n\
         \x20 gap widens with leaf occupancy, which is why PlatoD2GL keeps CSTables\n\
         \x20 only in rarely-updated internal nodes (Table V)."
    );
}

/// Mini-batch training pipeline throughput under streaming updates:
/// prefetch on/off x neighbor cache on/off, with a per-call simulated RPC
/// latency on every shard (the paper's deployment talks to 54 remote
/// graph servers; the sleep models that network hop, so overlap and
/// request elision show up as real wall-clock wins).
pub fn pipeline_throughput() {
    use platod2gl::{
        CacheConfig, Cluster, ClusterConfig, Edge, FeatureProvider, HashFeatures, PipelineConfig,
        SageNet, SageNetConfig, TrainingPipeline, UpdateOp, VertexId,
    };
    use std::sync::atomic::{AtomicBool, Ordering};

    println!("\n=== Pipeline: training throughput under streaming updates (batches/s) ===");
    let rpc = Duration::from_micros(100);
    let n: u64 = 800;
    let epochs: u64 = 3;
    let provider = HashFeatures::new(16, 2, 7);
    println!(
        "  {n} vertices, fanouts [5, 5], batch 64, {epochs} epochs, {}us simulated RPC per shard call,\n\
         \x20 concurrent writer streaming 32-op update batches",
        rpc.as_micros()
    );
    header(&["config", "batches/s", "hit rate", "p99 sample", "mean loss"]);

    let build = |cluster: &Cluster| -> (Vec<VertexId>, Vec<usize>) {
        let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
        let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
        let mut state = 0x00c0_ffeeu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ops = Vec::new();
        for &v in &vertices {
            for _ in 0..6 {
                let mut u = VertexId(next() % n);
                for _ in 0..8 {
                    if provider.label(u) == provider.label(v) {
                        break;
                    }
                    u = VertexId(next() % n);
                }
                ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
            }
        }
        cluster.apply_batch_sharded(&ops).expect("bulk load");
        (vertices, labels)
    };

    let mut rates: Vec<(&str, f64)> = Vec::new();
    let mut jsons: Vec<(&str, String)> = Vec::new();
    let grid: [(&str, usize, bool); 4] = [
        ("sync, no cache", 0, false),
        ("sync, cache", 0, true),
        ("prefetch, no cache", 4, false),
        ("prefetch, cache", 4, true),
    ];
    for (name, prefetch_depth, cache_on) in grid {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .num_shards(6)
                .build()
                .expect("valid config"),
        );
        let (vertices, labels) = build(&cluster);
        for shard in 0..cluster.num_shards() {
            cluster.faults().slow_shard(shard, rpc);
        }
        let pipeline = TrainingPipeline::new(
            &cluster,
            PipelineConfig {
                fanouts: vec![5, 5],
                batch_size: 64,
                prefetch_depth,
                workers: 2,
                cache: if cache_on {
                    CacheConfig {
                        capacity: 1 << 14,
                        shards: 8,
                        max_staleness: 256,
                    }
                } else {
                    CacheConfig::disabled()
                },
                seed: 7,
                ..Default::default()
            },
        );
        let mut net = SageNet::new(SageNetConfig {
            feature_dim: provider.dim(),
            fanouts: vec![5, 5],
            lr: 0.1,
            ..Default::default()
        });
        let stop = AtomicBool::new(false);
        let (batches, elapsed, loss) = std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut state = 0x7777u64;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                while !stop.load(Ordering::Relaxed) {
                    let ops: Vec<UpdateOp> = (0..32)
                        .map(|_| {
                            UpdateOp::Insert(Edge::new(
                                VertexId(next() % n),
                                VertexId(next() % n),
                                1.0,
                            ))
                        })
                        .collect();
                    let _ = cluster.apply_batch_sharded(&ops);
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
            let mut batches = 0u64;
            let mut elapsed = Duration::ZERO;
            let mut loss = 0.0;
            for epoch in 0..epochs {
                let r = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
                batches += r.batches;
                elapsed += r.elapsed;
                loss = r.mean_loss;
            }
            stop.store(true, Ordering::Relaxed);
            (batches, elapsed, loss)
        });
        let rate = batches as f64 / elapsed.as_secs_f64().max(1e-9);
        let stats = pipeline.stats();
        row(
            name,
            &[
                format!("{rate:.1}"),
                format!("{:.1}%", stats.cache.hit_rate() * 100.0),
                ms(Duration::from_nanos(stats.sample.p99_ns)),
                format!("{loss:.4}"),
            ],
        );
        rates.push((name, rate));
        jsons.push((name, stats.to_json()));
    }
    let rate_of = |label: &str| rates.iter().find(|r| r.0 == label).expect("ran").1;
    println!(
        "  prefetch overlap: {:.2}x over sync (no cache); cache elision: {:.2}x over no-cache \
         (prefetch); combined {:.2}x",
        rate_of("prefetch, no cache") / rate_of("sync, no cache"),
        rate_of("prefetch, cache") / rate_of("prefetch, no cache"),
        rate_of("prefetch, cache") / rate_of("sync, no cache"),
    );
    for (name, json) in &jsons {
        println!("  json[{name}]: {json}");
    }
}

/// Observability report: run a full-stack training session — sharded
/// cluster, WAL-backed durability sidecar, mini-batch pipeline — all
/// recording into one shared registry, then print a per-subsystem digest
/// followed by both exposition formats.
pub fn obs_report() {
    use platod2gl::{
        Cluster, ClusterConfig, DurableGraphStore, Edge, FeatureProvider, HashFeatures,
        PipelineConfig, Registry, SageNet, SageNetConfig, StoreConfig, TrainingPipeline, UpdateOp,
        VertexId,
    };
    use std::sync::Arc;

    println!("\n=== Observability: unified registry snapshot for one training run ===");
    let registry = Arc::new(Registry::new());
    let cluster = Cluster::with_registry(
        ClusterConfig::builder()
            .num_shards(4)
            .build()
            .expect("valid config"),
        Arc::clone(&registry),
    );
    let dir = std::env::temp_dir().join(format!("platod2gl-report-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (durable, _) =
        DurableGraphStore::open_with_registry(&dir, StoreConfig::default(), Arc::clone(&registry))
            .expect("open durable store");

    let n: u64 = 600;
    let provider = HashFeatures::new(16, 2, 7);
    let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
    let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
    let mut state = 0x00c0_ffeeu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for &v in &vertices {
        for _ in 0..6 {
            let mut u = VertexId(next() % n);
            for _ in 0..8 {
                if provider.label(u) == provider.label(v) {
                    break;
                }
                u = VertexId(next() % n);
            }
            ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
        }
    }
    cluster.apply_batch_sharded(&ops).expect("bulk load");
    durable.try_apply_batch(&ops, 2).expect("wal apply");
    durable.checkpoint().expect("wal checkpoint");

    let pipeline = TrainingPipeline::new(
        &cluster,
        PipelineConfig::builder()
            .fanouts(vec![5, 5])
            .batch_size(64)
            .seed(7)
            .build()
            .expect("valid pipeline config"),
    );
    let mut net = SageNet::new(SageNetConfig {
        feature_dim: provider.dim(),
        fanouts: vec![5, 5],
        lr: 0.1,
        ..Default::default()
    });
    for epoch in 0..2 {
        let r = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
        println!(
            "  epoch {epoch}: loss {:.4}, accuracy {:.3}, {:.1} batches/s",
            r.mean_loss,
            r.mean_accuracy,
            r.batches as f64 / r.elapsed.as_secs_f64().max(1e-9)
        );
    }

    let snap = registry.snapshot();
    header(&["subsystem", "counters", "events", "histograms"]);
    for prefix in ["samtree.", "storage.", "wal.", "cluster.", "pipeline."] {
        let counters = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .count();
        let events: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| v)
            .sum();
        let hists = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .count();
        row(
            prefix.trim_end_matches('.'),
            &[counters.to_string(), events.to_string(), hists.to_string()],
        );
    }
    println!("\n  hot-path latency (p50 / p99, ms):");
    for (name, h) in &snap.histograms {
        println!(
            "    {name:<28} {} / {}  (n={})",
            ms(Duration::from_nanos(h.p50_ns)),
            ms(Duration::from_nanos(h.p99_ns)),
            h.count
        );
    }
    println!("\n  spans captured: {}", snap.spans.len());
    println!("\n--- Prometheus exposition ---");
    print!("{}", snap.to_prometheus());
    println!("--- JSON exposition ---");
    println!("{}", snap.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transactional write plane: txn apply throughput vs the raw sharded
/// batch path, across batch sizes. The gap is the price of phase-1
/// validation + the ledger/journal bookkeeping; it should stay a small
/// constant factor. Writes the machine-readable trail to `BENCH_6.json`.
pub fn txn_report() {
    use platod2gl::{Cluster, ClusterConfig, Edge, GraphTxn, UpdateOp, VertexId};

    println!("\n=== Txn plane: validated txn apply vs raw apply_batch_sharded (ops/s) ===");
    let rounds: u64 = 24;
    header(&["batch", "raw ops/s", "txn ops/s", "txn/raw"]);

    let fresh_cluster = || {
        let c = Cluster::new(
            ClusterConfig::builder()
                .num_shards(4)
                .build()
                .expect("valid config"),
        );
        for v in 0..2_000u64 {
            c.insert_edge(Edge::new(VertexId(v), VertexId(v + 10_000), 1.0));
        }
        c
    };
    // Fresh, key-disjoint inserts each round: valid under phase 1 and
    // identical work for both paths.
    let batch_ops = |round: u64, batch: u64| -> Vec<UpdateOp> {
        (0..batch)
            .map(|k| {
                let v = 100_000 + round * batch + k;
                UpdateOp::Insert(Edge::new(VertexId(v), VertexId(v + 1_000_000), 1.0))
            })
            .collect()
    };

    let mut json_rows = Vec::new();
    for exp in [8u32, 10, 12, 14] {
        let batch = 1u64 << exp;

        let raw = fresh_cluster();
        let t = Instant::now();
        for round in 0..rounds {
            raw.apply_batch_sharded(&batch_ops(round, batch))
                .expect("raw");
        }
        let raw_ops_per_s = (rounds * batch) as f64 / t.elapsed().as_secs_f64();

        let txn_cluster = fresh_cluster();
        let t = Instant::now();
        for round in 0..rounds {
            let mut txn = GraphTxn::new(round + 1);
            for op in batch_ops(round, batch) {
                if let UpdateOp::Insert(e) = op {
                    txn = txn.insert_edge(e);
                }
            }
            txn_cluster.apply_txn(&txn).expect("txn");
        }
        let txn_ops_per_s = (rounds * batch) as f64 / t.elapsed().as_secs_f64();

        let ratio = txn_ops_per_s / raw_ops_per_s;
        row(
            &batch.to_string(),
            &[
                format!("{raw_ops_per_s:.0}"),
                format!("{txn_ops_per_s:.0}"),
                format!("{ratio:.2}x"),
            ],
        );
        json_rows.push(format!(
            "{{\"batch\":{batch},\"raw_ops_per_s\":{raw_ops_per_s:.0},\
             \"txn_ops_per_s\":{txn_ops_per_s:.0},\"txn_over_raw\":{ratio:.3}}}"
        ));
    }

    let json = format!(
        "{{\"bench\":\"txn_apply_vs_raw\",\"shards\":4,\"rounds\":{rounds},\
         \"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
    println!("  wrote BENCH_6.json ({} rows)", json_rows.len());
}

/// Scale-out: k-hop sampling throughput of a partition-routed fleet at
/// 1/2/3 servers against one remote server holding the whole graph.
///
/// Every shard of every server — including the single-server baseline —
/// carries the same modeled per-request latency, standing in for the
/// storage/NIC service time a production shard pays. What the fleet buys
/// is *overlap*: the client splits each request batch by partition owner
/// and dispatches the per-server frames concurrently, so three servers'
/// service times run in parallel where the single server serializes
/// them. That is the paper's horizontal-scaling claim in miniature, and
/// it holds on a one-core box because waiting, not computing, dominates.
/// Writes the machine-readable trail to `BENCH_7.json`.
pub fn fleet_report() {
    use platod2gl::{
        Cluster, ClusterConfig, Edge, FleetCluster, FleetClusterConfig, FleetNode, GraphService,
        GraphServiceServer, PartitionMap, RemoteCluster, RemoteClusterConfig, SampleRequest,
        ServerEntry, UpdateOp, VertexId,
    };
    use std::sync::Arc;

    const VERTICES: u64 = 1_000;
    const DEGREE: u64 = 4;
    const REQS_PER_ROUND: usize = 2_048;
    const ROUNDS: usize = 4;
    const SHARD_LATENCY: Duration = Duration::from_micros(100);
    const PARTITIONS: u32 = 64;
    const FANOUT: usize = 4;

    println!("\n=== Scale-out: fleet sampling throughput vs one remote server (reqs/s) ===");
    println!(
        "  {} vertices x deg {DEGREE}, {REQS_PER_ROUND} reqs/round x {ROUNDS} rounds, \
         {}us modeled shard latency everywhere",
        VERTICES,
        SHARD_LATENCY.as_micros()
    );
    header(&["deployment", "reqs/s", "vs 1 server"]);

    let ops: Vec<UpdateOp> = (0..VERTICES)
        .flat_map(|v| {
            (1..=DEGREE).map(move |k| {
                UpdateOp::Insert(Edge::new(
                    VertexId(v),
                    VertexId((v + k * 131) % VERTICES),
                    1.0 + k as f64 * 0.5,
                ))
            })
        })
        .collect();
    let reqs: Vec<SampleRequest> = (0..REQS_PER_ROUND)
        .map(|i| SampleRequest::new(VertexId(i as u64 % VERTICES), EdgeType(0), FANOUT))
        .collect();
    let client_cfg = RemoteClusterConfig::default().request_timeout(Duration::from_secs(30));

    let fresh_cluster = || {
        Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ))
    };
    let slow_all = |c: &Cluster| {
        for shard in 0..c.num_shards() {
            c.faults().slow_shard(shard, SHARD_LATENCY);
        }
    };
    let measure = |svc: &dyn GraphService| -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        // Warm-up round: connection pools, samtree caches.
        let _ = svc.sample_many(&reqs, &mut rng);
        let t = Instant::now();
        for _ in 0..ROUNDS {
            let responses = svc.sample_many(&reqs, &mut rng);
            assert_eq!(responses.len(), reqs.len());
        }
        (ROUNDS * REQS_PER_ROUND) as f64 / t.elapsed().as_secs_f64()
    };

    // Baseline: one remote server, whole graph, same modeled latency.
    let single_cluster = fresh_cluster();
    let single_server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&single_cluster))
        .expect("bind baseline");
    let single = RemoteCluster::connect(single_server.local_addr(), client_cfg).expect("connect");
    single.apply_updates(&ops).expect("load baseline");
    slow_all(&single_cluster);
    let single_reqs_per_s = measure(&single);
    row(
        "1 server",
        &[format!("{single_reqs_per_s:.0}"), "1.00x".into()],
    );

    let mut json_rows = Vec::new();
    let mut speedup_3v1 = 0.0;
    for n in [1usize, 2, 3] {
        let clusters: Vec<_> = (0..n).map(|_| fresh_cluster()).collect();
        let nodes: Vec<Arc<FleetNode>> = clusters
            .iter()
            .enumerate()
            .map(|(i, c)| Arc::new(FleetNode::new(Arc::clone(c), i as u64 + 1, client_cfg)))
            .collect();
        let servers: Vec<GraphServiceServer> = nodes
            .iter()
            .map(|node| GraphServiceServer::bind("127.0.0.1:0", Arc::clone(node)).expect("bind"))
            .collect();
        let roster: Vec<ServerEntry> = nodes
            .iter()
            .zip(&servers)
            .map(|(node, server)| ServerEntry {
                id: node.server_id(),
                addr: server.local_addr().to_string(),
            })
            .collect();
        let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
        for node in &nodes {
            node.install(map.clone());
        }
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let fleet = FleetCluster::connect(
            &addrs,
            FleetClusterConfig {
                client: client_cfg,
                num_partitions: PARTITIONS,
            },
        )
        .expect("connect fleet");
        fleet.apply_updates(&ops).expect("load fleet");
        for c in &clusters {
            slow_all(c);
        }
        let reqs_per_s = measure(&fleet);
        let speedup = reqs_per_s / single_reqs_per_s;
        if n == 3 {
            speedup_3v1 = speedup;
        }
        row(
            &format!("fleet x{n}"),
            &[format!("{reqs_per_s:.0}"), format!("{speedup:.2}x")],
        );
        json_rows.push(format!(
            "{{\"servers\":{n},\"reqs_per_s\":{reqs_per_s:.0},\"speedup_vs_single\":{speedup:.3}}}"
        ));
        for server in servers {
            server.shutdown();
        }
    }
    single_server.shutdown();

    let json = format!(
        "{{\"bench\":\"fleet_scaleout\",\"partitions\":{PARTITIONS},\
         \"shard_latency_us\":{},\"requests_per_round\":{REQS_PER_ROUND},\
         \"rounds\":{ROUNDS},\"single_reqs_per_s\":{single_reqs_per_s:.0},\
         \"speedup_3v1\":{speedup_3v1:.3},\"rows\":[{}]}}\n",
        SHARD_LATENCY.as_micros(),
        json_rows.join(",")
    );
    std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
    println!("  wrote BENCH_7.json (speedup_3v1 = {speedup_3v1:.2}x)");
}

/// Serving-core report: connection-churn throughput of the thread-per-
/// connection backend vs the readiness-driven event loop at 64 / 512 /
/// 2048 concurrent connections, plus a 10k-accept endurance phase.
///
/// Each driver session is the life of one short-lived client: connect,
/// pipeline a burst of v2-framed sample requests, drain the replies, and
/// close. The threaded backend pays a thread spawn + teardown per
/// session and schedules one blocked thread per open socket; the event
/// loop serves the same churn from a single poller thread.
pub fn rpc_report() {
    use platod2gl::{Cluster, ClusterConfig, Edge, SampleRequest, VertexId};
    use platod2gl_rpc::codec::{
        encode_frame_v2, encode_sample_batch, read_frame_ex, FrameKind, SampleBatch,
    };
    use platod2gl_rpc::{Backend, GraphServiceServer, ServerConfig};
    use std::io::Write;
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    const DRIVERS: usize = 8;
    const PIPELINE: usize = 8;
    const CONN_GRID: [usize; 3] = [64, 512, 2048];
    const VERTICES: u64 = 256;
    const ACCEPT_TOTAL: usize = 10_000;
    const ACCEPT_WAVE: usize = 500;

    println!("\n=== Serving core: connection churn, threaded vs event loop (reqs/s) ===");
    println!(
        "  {DRIVERS} drivers; session = connect + pipeline {PIPELINE} v2 sample frames + drain + close"
    );
    header(&["backend", "64 conns", "512 conns", "2048 conns"]);

    let cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    for v in 0..VERTICES {
        cluster.insert_edge(Edge::new(VertexId(v), VertexId((v + 1) % VERTICES), 1.0));
    }
    let payload = encode_sample_batch(&SampleBatch {
        deadline_ms: 30_000,
        ctx: None,
        requests: (0..4)
            .map(|i| (SampleRequest::new(VertexId(i), EdgeType(0), 4), 0x5EED + i))
            .collect(),
    });

    // One churn cell: every driver owns `conns / DRIVERS` connection
    // slots, all open at once, so the server genuinely holds `conns`
    // connections. The flood-connect warm-up is paced by a probe round
    // trip per socket (serial per driver, so pending accepts stay under
    // the listener backlog) and is NOT timed; the timed phase serves
    // `ROUNDS` pipelined bursts per slot and closes + reconnects the slot
    // between rounds — the thread-per-connection backend pays a thread
    // spawn and teardown per reconnect, the event loop only an accept.
    const ROUNDS: usize = 2;
    let connect_probed = |addr: SocketAddr| -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).expect("nodelay");
        let probe = encode_frame_v2(FrameKind::HealthProbe, 1, &[]);
        s.write_all(&probe).expect("probe");
        let (header, _) = read_frame_ex(&mut s).expect("probe reply");
        assert_eq!(header.kind, FrameKind::HealthReply);
        s
    };
    let churn = |addr: SocketAddr, conns: usize| -> f64 {
        let connected = Arc::new(Barrier::new(DRIVERS + 1));
        let done = Arc::new(Barrier::new(DRIVERS + 1));
        let handles: Vec<_> = (0..DRIVERS)
            .map(|_| {
                let payload = payload.clone();
                let connected = Arc::clone(&connected);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let sessions = conns / DRIVERS;
                    let mut socks: Vec<TcpStream> =
                        (0..sessions).map(|_| connect_probed(addr)).collect();
                    connected.wait();
                    for round in 0..ROUNDS {
                        for (i, sock) in socks.iter_mut().enumerate() {
                            for req in 0..PIPELINE {
                                let frame = encode_frame_v2(
                                    FrameKind::SampleBatch,
                                    (i * PIPELINE + req) as u64 + 1,
                                    &payload,
                                );
                                sock.write_all(&frame).expect("send");
                            }
                            for _ in 0..PIPELINE {
                                let (header, _) = read_frame_ex(sock).expect("reply");
                                assert_eq!(header.kind, FrameKind::SampleReply);
                            }
                            if round + 1 < ROUNDS {
                                // Churn the slot: close and redial.
                                let fresh = TcpStream::connect(addr).expect("reconnect");
                                fresh.set_nodelay(true).expect("nodelay");
                                *sock = fresh;
                            }
                        }
                    }
                    done.wait();
                })
            })
            .collect();
        connected.wait();
        let t = Instant::now();
        done.wait();
        let elapsed = t.elapsed().as_secs_f64();
        for h in handles {
            h.join().expect("driver clean");
        }
        (conns * PIPELINE * ROUNDS) as f64 / elapsed
    };

    let mut rates = std::collections::HashMap::new();
    for backend in [Backend::Threaded, Backend::EventLoop] {
        let name = match backend {
            Backend::Threaded => "threaded",
            Backend::EventLoop => "event-loop",
        };
        let server = GraphServiceServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&cluster),
            ServerConfig::builder()
                .backend(backend)
                .max_connections(4096)
                .build()
                .expect("valid config"),
        )
        .expect("bind");
        let addr = server.local_addr();
        // Warm-up: fault in lazy paths on both sides.
        churn(addr, DRIVERS);
        let mut cells = Vec::new();
        for conns in CONN_GRID {
            let reqs_per_s = churn(addr, conns);
            rates.insert((name, conns), reqs_per_s);
            cells.push(format!("{reqs_per_s:.0}"));
        }
        row(name, &cells);
        server.shutdown();
    }

    // Endurance: 10k accepts against the event loop, in bounded waves so
    // client-side ephemeral ports stay within ulimit.
    let server = GraphServiceServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&cluster),
        ServerConfig::builder()
            .max_connections(4096)
            .build()
            .expect("valid config"),
    )
    .expect("bind");
    let addr = server.local_addr();
    let accept_errors = Arc::new(AtomicU64::new(0));
    let mut accepted = 0usize;
    while accepted < ACCEPT_TOTAL {
        let wave = ACCEPT_WAVE.min(ACCEPT_TOTAL - accepted);
        let per_driver = wave / DRIVERS;
        let handles: Vec<_> = (0..DRIVERS)
            .map(|_| {
                let errors = Arc::clone(&accept_errors);
                std::thread::spawn(move || {
                    for _ in 0..per_driver {
                        match TcpStream::connect(addr) {
                            Ok(mut s) => {
                                let probe = encode_frame_v2(FrameKind::HealthProbe, 1, &[]);
                                let served = s.write_all(&probe).is_ok()
                                    && matches!(
                                        read_frame_ex(&mut s),
                                        Ok((h, _)) if h.kind == FrameKind::HealthReply
                                    );
                                if !served {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("accept driver clean");
        }
        accepted += per_driver * DRIVERS;
    }
    let accept_errors = accept_errors.load(Ordering::Relaxed);
    server.shutdown();
    println!("  {accepted} accepts, {accept_errors} errors");

    let speedup =
        |conns: usize| rates[&("event-loop", conns)] / rates[&("threaded", conns)].max(1e-9);
    let (s64, s512, s2048) = (speedup(64), speedup(512), speedup(2048));
    println!("  event loop vs threaded: {s64:.2}x @64, {s512:.2}x @512, {s2048:.2}x @2048 conns");

    let mut json_rows = Vec::new();
    for name in ["threaded", "event-loop"] {
        for conns in CONN_GRID {
            json_rows.push(format!(
                "{{\"backend\":\"{name}\",\"conns\":{conns},\"reqs_per_s\":{:.0}}}",
                rates[&(name, conns)]
            ));
        }
    }
    let json = format!(
        "{{\"bench\":\"rpc_serving\",\"pipeline\":{PIPELINE},\"drivers\":{DRIVERS},\
         \"speedup_64\":{s64:.3},\"speedup_512\":{s512:.3},\"speedup_2048\":{s2048:.3},\
         \"accepts\":{accepted},\"accept_errors\":{accept_errors},\"rows\":[{}]}}\n",
        json_rows.join(",")
    );
    std::fs::write("BENCH_8.json", &json).expect("write BENCH_8.json");
    println!("  wrote BENCH_8.json (speedup_512 = {s512:.2}x)");
}

/// Tracing-overhead gate: the same pipelined sampling workload served by
/// the event-loop backend twice — once with untraced batches (no trace
/// context on the wire, so the server opens no per-request spans) and
/// once with every batch carrying a trace context (the server opens a
/// remote-parented root span per batch and records it into the export
/// ring, exactly what a fleet client induces). Writes BENCH_9.json with
/// both rates and the traced/untraced throughput ratio; verify.sh gates
/// on the ratio staying >= 0.9, i.e. tracing costs at most 10%.
pub fn obs_overhead_report() {
    use platod2gl::{Cluster, ClusterConfig, Edge, SampleRequest, TraceContext, VertexId};
    use platod2gl_rpc::codec::{
        encode_frame_v2, encode_sample_batch, read_frame_ex, FrameKind, SampleBatch,
    };
    use platod2gl_rpc::{GraphServiceServer, ServerConfig};
    use std::io::Write;
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    const DRIVERS: usize = 4;
    const PIPELINE: usize = 16;
    const BURSTS: usize = 200;
    const TRIALS: usize = 3;
    const VERTICES: u64 = 256;

    println!("\n=== Observability overhead: traced vs untraced serving (reqs/s) ===");
    println!(
        "  {DRIVERS} drivers x {BURSTS} bursts of {PIPELINE} pipelined v2 sample frames; \
         best of {TRIALS} interleaved trials per mode"
    );
    header(&["mode", "reqs/s"]);

    let cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    for v in 0..VERTICES {
        cluster.insert_edge(Edge::new(VertexId(v), VertexId((v + 1) % VERTICES), 1.0));
    }
    let batch = |ctx: Option<TraceContext>| -> Arc<Vec<u8>> {
        Arc::new(encode_sample_batch(&SampleBatch {
            deadline_ms: 30_000,
            ctx,
            requests: (0..4)
                .map(|i| (SampleRequest::new(VertexId(i), EdgeType(0), 4), 0x5EED + i))
                .collect(),
        }))
    };
    let untraced_payload = batch(None);
    let traced_payload = batch(Some(TraceContext {
        trace_id: 0x0B5_0B5,
        parent_span: 1,
    }));

    let server = GraphServiceServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&cluster),
        ServerConfig::builder()
            .max_connections(64)
            .build()
            .expect("valid config"),
    )
    .expect("bind");
    let addr = server.local_addr();

    // One trial: every driver keeps a persistent probed connection and
    // pushes pipelined bursts — persistent sockets keep the accept path
    // out of the measurement, so the delta is handler-side tracing only.
    let trial = |payload: &Arc<Vec<u8>>| -> f64 {
        let start = Arc::new(Barrier::new(DRIVERS + 1));
        let done = Arc::new(Barrier::new(DRIVERS + 1));
        let handles: Vec<_> = (0..DRIVERS)
            .map(|d| {
                let payload = Arc::clone(payload);
                let start = Arc::clone(&start);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut sock = TcpStream::connect(addr).expect("connect");
                    sock.set_nodelay(true).expect("nodelay");
                    let probe = encode_frame_v2(FrameKind::HealthProbe, 1, &[]);
                    sock.write_all(&probe).expect("probe");
                    let (head, _) = read_frame_ex(&mut sock).expect("probe reply");
                    assert_eq!(head.kind, FrameKind::HealthReply);
                    start.wait();
                    for burst in 0..BURSTS {
                        for req in 0..PIPELINE {
                            let id = ((d * BURSTS + burst) * PIPELINE + req) as u64 + 1;
                            let frame = encode_frame_v2(FrameKind::SampleBatch, id, &payload);
                            sock.write_all(&frame).expect("send");
                        }
                        for _ in 0..PIPELINE {
                            let (head, _) = read_frame_ex(&mut sock).expect("reply");
                            assert_eq!(head.kind, FrameKind::SampleReply);
                        }
                    }
                    done.wait();
                })
            })
            .collect();
        start.wait();
        let t = Instant::now();
        done.wait();
        let elapsed = t.elapsed().as_secs_f64();
        for h in handles {
            h.join().expect("driver clean");
        }
        (DRIVERS * BURSTS * PIPELINE) as f64 / elapsed
    };

    // Warm both paths, then interleave trials so drift (thermal, page
    // cache) hits the two modes evenly; keep each mode's best rate.
    trial(&untraced_payload);
    trial(&traced_payload);
    let (mut untraced, mut traced) = (0.0f64, 0.0f64);
    for _ in 0..TRIALS {
        untraced = untraced.max(trial(&untraced_payload));
        traced = traced.max(trial(&traced_payload));
    }
    server.shutdown();

    row("tracing off", &[format!("{untraced:.0}")]);
    row("tracing on", &[format!("{traced:.0}")]);
    let ratio = traced / untraced.max(1e-9);
    println!(
        "  tracing keeps {:.1}% of untraced throughput (gate: >= 90%)",
        ratio * 100.0
    );

    let json = format!(
        "{{\"bench\":\"obs_overhead\",\"drivers\":{DRIVERS},\"pipeline\":{PIPELINE},\
         \"bursts\":{BURSTS},\"trials\":{TRIALS},\
         \"untraced_reqs_per_s\":{untraced:.0},\"traced_reqs_per_s\":{traced:.0},\
         \"overhead_ratio\":{ratio:.3}}}\n"
    );
    std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");
    println!("  wrote BENCH_9.json (overhead_ratio = {ratio:.3})");
}

/// Temporal plane: windowed k-hop sampling throughput vs the unwindowed
/// baseline at three window selectivities, plus the recency-decay
/// maintenance sweep rate. The acceptance bar (gated in `verify.sh`) is
/// that windowed sampling stays within 2x of unwindowed throughput — the
/// rejection-with-retry fast path has to be doing its job, not falling
/// back to full neighborhood scans. Writes `BENCH_10.json`.
pub fn temporal_report() {
    use platod2gl::{
        CacheConfig, Cluster, ClusterConfig, DecayConfig, DynamicGraphStore, Edge, KHopSampler,
        NeighborCache, RecencyDecay, Registry, TimeWindow, VertexId,
    };

    const V: u64 = 5_000;
    const DEGREE: u64 = 12;
    const MAX_TS: u64 = 1_000;
    const ROUNDS: usize = 20;
    const BATCH: usize = 512;

    println!("\n=== Temporal plane: windowed vs unwindowed k-hop sampling (seeds/s) ===");
    header(&["window", "seeds/s", "vs unwindowed"]);

    let stamp = |s: u64, d: u64| (s * 31 + d * 17) % MAX_TS + 1;
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    );
    for s in 0..V {
        for k in 1..=DEGREE {
            let d = (s + k * 131) % V;
            if d != s {
                cluster.insert_edge(Edge::new(VertexId(s), VertexId(d), 1.0).at(stamp(s, d)));
            }
        }
    }

    let sampler = KHopSampler::new(EdgeType::DEFAULT, vec![10, 10]);
    let cache = NeighborCache::new(CacheConfig::disabled());
    let seeds: Vec<VertexId> = (0..BATCH as u64).map(|i| VertexId(i * 7 % V)).collect();
    let run = |windows: &[Option<TimeWindow>]| -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Instant::now();
        for _ in 0..ROUNDS {
            let out = sampler.sample_block_windowed(&cluster, &cache, &seeds, windows, &mut rng);
            assert_eq!(out.degraded_samples, 0);
        }
        (ROUNDS * BATCH) as f64 / t.elapsed().as_secs_f64()
    };

    let unwindowed = run(&[]);
    row("none", &[format!("{unwindowed:.0}"), "1.00x".into()]);
    let mut json_rows = vec![format!(
        "{{\"window\":\"none\",\"seeds_per_s\":{unwindowed:.0},\"slowdown\":1.0}}"
    )];
    let mut worst_slowdown: f64 = 1.0;
    for (name, max_ts) in [("broad", 900u64), ("half", 500), ("narrow", 150)] {
        // Per-seed windows, as training issues them: each seed bounded at
        // its own (deterministic) event time near the selectivity point.
        let windows: Vec<Option<TimeWindow>> = seeds
            .iter()
            .map(|v| Some(TimeWindow::until(max_ts + v.raw() % 100)))
            .collect();
        let windowed = run(&windows);
        let slowdown = unwindowed / windowed;
        worst_slowdown = worst_slowdown.max(slowdown);
        row(name, &[format!("{windowed:.0}"), format!("{slowdown:.2}x")]);
        json_rows.push(format!(
            "{{\"window\":\"{name}\",\"seeds_per_s\":{windowed:.0},\"slowdown\":{slowdown:.3}}}"
        ));
    }

    // The maintenance half: a full recency-decay sweep over the same
    // stamped topology, measured as scanned edges per second.
    let store = DynamicGraphStore::with_defaults();
    for s in 0..V {
        for k in 1..=DEGREE {
            let d = (s + k * 131) % V;
            if d != s {
                store.insert_edge(Edge::new(VertexId(s), VertexId(d), 1.0).at(stamp(s, d)));
            }
        }
    }
    let registry = Registry::new();
    let mut decay = RecencyDecay::new(
        DecayConfig {
            lambda: 1e-3,
            floor: 1e-6,
            batch_sources: 256,
        },
        &registry,
    )
    .expect("valid policy");
    let t = Instant::now();
    let tick = decay.run_sweep(&store, MAX_TS + 500);
    let decay_edges_per_s = tick.scanned as f64 / t.elapsed().as_secs_f64();
    println!(
        "  decay sweep: {} edges scanned, {} decayed, {:.0} edges/s",
        tick.scanned, tick.decayed, decay_edges_per_s
    );

    let json = format!(
        "{{\"bench\":\"temporal_sampling\",\"vertices\":{V},\"degree\":{DEGREE},\
         \"fanouts\":[10,10],\"rows\":[{}],\
         \"worst_slowdown\":{worst_slowdown:.3},\
         \"decay_edges_per_s\":{decay_edges_per_s:.0}}}\n",
        json_rows.join(",")
    );
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    println!("  wrote BENCH_10.json (worst windowed slowdown = {worst_slowdown:.2}x)");
}

/// Run the whole evaluation in paper order.
pub fn run_all() {
    println!(
        "PlatoD2GL evaluation reproduction (scale: {} directed edges/dataset; \
         set PLATOD2GL_SCALE_EDGES to change)",
        scale_edges()
    );
    fig08_build();
    fig09_updates();
    table02_complexity();
    table04_memory();
    table05_distribution();
    fig10_sampling();
    fig11_sensitivity();
    ablations();
    pipeline_throughput();
    txn_report();
    obs_report();
    fleet_report();
    rpc_report();
    obs_overhead_report();
    temporal_report();
}
