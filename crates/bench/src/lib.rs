//! Shared harness for the paper's evaluation (Sec. VII).
//!
//! Every table and figure has two artifacts:
//!
//! * a **Criterion bench** (`benches/<exp>.rs`) giving statistically sound
//!   timings of the underlying operation at a reduced, stable scale, and
//! * a **report binary** (`src/bin/report_<exp>.rs`) that runs the full
//!   experiment grid and prints the same rows/series the paper reports.
//!
//! Scale control: report binaries read `PLATOD2GL_SCALE_EDGES` (default
//! 200 000 directed edges per dataset before bi-directing) so the grid can
//! be rerun larger on beefier machines. Absolute numbers will not match the
//! paper's 54-server cluster; the comparisons (who wins, by what factor,
//! where curves bend) are the reproduction target — see EXPERIMENTS.md.

pub mod experiments;

use platod2gl::{
    AliGraphStore, DatasetProfile, DynamicGraphStore, GraphStore, LeafIndex, PlatoGlStore,
    SamTreeConfig, StoreConfig, UpdateOp,
};
use std::time::{Duration, Instant};

/// Engines compared across the evaluation, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    AliGraph,
    PlatoGl,
    PlatoD2Gl,
    /// PlatoD2GL with CP-ID compression disabled (the "w/o CP" ablation).
    PlatoD2GlNoCp,
}

impl Engine {
    /// All four rows of Fig. 8 / Table IV.
    pub const ALL: [Engine; 4] = [
        Engine::AliGraph,
        Engine::PlatoGl,
        Engine::PlatoD2Gl,
        Engine::PlatoD2GlNoCp,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Engine::AliGraph => "AliGraph",
            Engine::PlatoGl => "PlatoGL",
            Engine::PlatoD2Gl => "PlatoD2GL",
            Engine::PlatoD2GlNoCp => "w/o CP",
        }
    }

    /// Instantiate a fresh store.
    pub fn build(self) -> Box<dyn GraphStore> {
        match self {
            Engine::AliGraph => Box::new(AliGraphStore::new()),
            Engine::PlatoGl => Box::new(PlatoGlStore::with_defaults()),
            Engine::PlatoD2Gl => Box::new(DynamicGraphStore::with_defaults()),
            Engine::PlatoD2GlNoCp => Box::new(DynamicGraphStore::new(StoreConfig {
                tree: SamTreeConfig {
                    compression: false,
                    ..SamTreeConfig::default()
                },
                ..StoreConfig::default()
            })),
        }
    }
}

/// A PlatoD2GL store with explicit samtree parameters (sensitivity sweeps).
pub fn d2gl_with(capacity: usize, alpha: usize, compression: bool) -> DynamicGraphStore {
    DynamicGraphStore::new(StoreConfig {
        tree: SamTreeConfig {
            capacity,
            alpha,
            compression,
            leaf_index: LeafIndex::Fenwick,
        },
        ..StoreConfig::default()
    })
}

/// The three evaluation datasets (Table III), scaled for one machine.
pub fn datasets(target_edges: u64) -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::ogbn().scaled_to_edges(target_edges),
        DatasetProfile::reddit().scaled_to_edges(target_edges),
        DatasetProfile::wechat().scaled_to_edges(target_edges),
    ]
}

/// Default per-dataset directed edge budget; override with
/// `PLATOD2GL_SCALE_EDGES`.
pub fn scale_edges() -> u64 {
    std::env::var("PLATOD2GL_SCALE_EDGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000)
}

/// Ingest a full profile (bi-directed stream) and return wall-clock time.
pub fn build_graph(store: &dyn GraphStore, profile: &DatasetProfile, seed: u64) -> Duration {
    let start = Instant::now();
    let mut batch: Vec<UpdateOp> = Vec::with_capacity(4096);
    for e in profile.edge_stream(seed) {
        batch.push(UpdateOp::Insert(e));
        if batch.len() == 4096 {
            store.apply_batch(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        store.apply_batch(&batch);
    }
    start.elapsed()
}

/// Pre-generate mixed update batches (insert/update/delete per the default
/// mix) of the given size.
pub fn update_batches(
    profile: &DatasetProfile,
    batch_size: usize,
    num_batches: usize,
    seed: u64,
) -> Vec<Vec<UpdateOp>> {
    let mut stream = profile.update_stream(seed);
    (0..num_batches)
        .map(|_| stream.next_batch(batch_size))
        .collect()
}

/// Time applying each batch; returns mean per-batch latency.
pub fn time_batches(store: &dyn GraphStore, batches: &[Vec<UpdateOp>]) -> Duration {
    let start = Instant::now();
    for b in batches {
        store.apply_batch(b);
    }
    start.elapsed() / batches.len() as u32
}

/// Format a duration in the paper's milliseconds-with-decimals style.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Print one table row.
pub fn row(label: &str, cells: &[String]) {
    let mut line = format!("{label:>14}");
    for c in cells {
        line.push_str(&format!(" {c:>14}"));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_instantiate_and_ingest() {
        let profile = DatasetProfile::tiny();
        for engine in Engine::ALL {
            let store = engine.build();
            let t = build_graph(store.as_ref(), &profile, 1);
            assert!(store.num_edges() > 0, "{}", engine.name());
            assert!(t.as_nanos() > 0);
        }
    }

    #[test]
    fn update_batches_are_sized() {
        let profile = DatasetProfile::tiny();
        let batches = update_batches(&profile, 128, 5, 2);
        assert_eq!(batches.len(), 5);
        assert!(batches.iter().all(|b| b.len() == 128));
    }

    #[test]
    fn datasets_cover_table3() {
        let ds = datasets(10_000);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0].name, "OGBN");
        assert_eq!(ds[1].name, "Reddit");
        assert_eq!(ds[2].name, "WeChat");
        for d in &ds {
            let total = d.total_edges();
            assert!((total as i64 - 10_000).abs() < 500, "{}: {total}", d.name);
        }
    }

    #[test]
    fn scale_env_default() {
        assert_eq!(scale_edges(), 200_000);
    }
}
