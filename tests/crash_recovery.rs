//! Acceptance tests for the durability and fault-tolerance tentpole:
//! kill-restart recovery through snapshot + WAL, torn-tail truncation at
//! arbitrary byte offsets, and cluster-level shard fault injection with
//! graceful degradation (DESIGN.md "Durability & failure model").

use platod2gl::{
    DatasetProfile, DurableGraphStore, DynamicGraphStore, Edge, EdgeType, GraphStore, PlatoD2GL,
    ShardHealth, StoreConfig, UpdateOp, VertexId,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, empty scratch directory unique to this process + call site.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("platod2gl-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The two stores must agree edge-for-edge: identical (src, etype, dst)
/// sets, weights equal to within Fenwick reconstruction noise. Leaf weights
/// are stored as prefix sums (FSTable), so reading an individual weight
/// back subtracts accumulated sums and its last few ULPs depend on the
/// order ops were applied in — exact `f64` equality across the batch-apply
/// and replay paths is not a property even of a store that never crashed.
fn assert_same_graph(recovered: &DynamicGraphStore, reference: &DynamicGraphStore) {
    assert_eq!(recovered.num_edges(), reference.num_edges());
    let mut a = recovered.export_adjacency();
    let mut b = reference.export_adjacency();
    for entry in a.iter_mut().chain(b.iter_mut()) {
        entry.1.sort_by_key(|x| x.0);
    }
    a.sort_by_key(|e| e.0);
    b.sort_by_key(|e| e.0);
    assert_eq!(a.len(), b.len(), "source/relation sets differ");
    for (ea, eb) in a.iter().zip(&b) {
        assert_eq!(ea.0, eb.0, "tree key sets differ");
        assert_eq!(ea.1.len(), eb.1.len(), "degree differs at {:?}", ea.0);
        for (&(da, wa, ta), &(db, wb, tb)) in ea.1.iter().zip(&eb.1) {
            assert_eq!(da, db, "neighbor sets differ at {:?}", ea.0);
            assert!(
                (wa - wb).abs() <= 1e-9 * (1.0 + wa.abs()),
                "weight differs at {:?}->{da}: {wa} vs {wb}",
                ea.0
            );
            assert_eq!(ta, tb, "edge timestamp differs at {:?}->{da}", ea.0);
        }
    }
}

/// Kill-restart: batched updates go through a WAL-enabled store, the
/// process "dies" (drop without a final checkpoint), and recovery replays
/// snapshot + WAL to the exact state of a store that never crashed.
#[test]
fn kill_restart_recovers_every_durable_update() {
    let dir = scratch_dir("kill-restart");
    let profile = DatasetProfile::tiny();
    let ops = profile.update_stream(11).next_batch(4_000);

    {
        let (durable, report) =
            DurableGraphStore::open(&dir, StoreConfig::default()).expect("open fresh");
        assert!(!report.restored_snapshot);
        assert_eq!(report.wal_records, 0);
        let (first_half, second_half) = ops.split_at(ops.len() / 2);
        for chunk in first_half.chunks(256) {
            durable.try_apply_batch(chunk, 2).expect("apply");
        }
        // A checkpoint mid-stream: recovery must stack WAL on snapshot.
        durable.checkpoint().expect("checkpoint");
        for chunk in second_half.chunks(256) {
            durable.try_apply_batch(chunk, 2).expect("apply");
        }
        assert!(durable.wal_records() > 0, "post-checkpoint ops hit the WAL");
        // Crash: dropped with a non-empty WAL and a stale snapshot.
    }

    let (recovered, report) =
        DurableGraphStore::open(&dir, StoreConfig::default()).expect("recover");
    assert!(report.restored_snapshot, "snapshot restored");
    assert!(report.wal_records > 0, "WAL replayed on top");
    assert_eq!(report.torn_tail, None, "clean shutdown leaves no torn tail");

    let reference = DynamicGraphStore::new(StoreConfig::default());
    for chunk in ops.chunks(256) {
        reference.apply_batch_parallel(chunk, 2);
    }
    assert_same_graph(recovered.store(), &reference);
    recovered.store().check_invariants().expect("invariants");

    // The recovered store keeps working: further updates + checkpoint.
    recovered
        .try_apply(&UpdateOp::Insert(Edge::new(VertexId(1), VertexId(2), 9.0)))
        .expect("post-recovery apply");
    recovered.checkpoint().expect("post-recovery checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Build a WAL of single-op records, remembering the byte offset at which
/// each record ends. Returns (dir, ops, end offsets aligned with ops).
fn build_walled_store(tag: &str, n_ops: usize, seed: u64) -> (PathBuf, Vec<UpdateOp>, Vec<u64>) {
    let dir = scratch_dir(tag);
    let profile = DatasetProfile::tiny();
    let ops = profile.update_stream(seed).next_batch(n_ops);
    let (durable, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("open");
    let mut ends = Vec::with_capacity(ops.len());
    for op in &ops {
        durable.try_apply(op).expect("apply");
        ends.push(durable.wal_bytes());
    }
    drop(durable);
    (dir, ops, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cut the WAL at an arbitrary byte: recovery must yield exactly the
    /// ops whose records fit in the durable prefix, flag the torn tail iff
    /// the cut is mid-record, and leave a structurally valid store.
    #[test]
    fn wal_cut_at_any_byte_recovers_exactly_the_durable_prefix(
        n_ops in 1usize..120,
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let (dir, ops, ends) = build_walled_store("proptest-cut", n_ops, seed);
        let wal_path = dir.join("wal.log");
        let total = *ends.last().expect("at least one record");
        // Cut anywhere from just after the magic to the full length.
        let cut = 8 + ((total - 8) as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .expect("open wal")
            .set_len(cut)
            .expect("truncate");

        let (recovered, report) =
            DurableGraphStore::open(&dir, StoreConfig::default()).expect("recover");
        let durable_ops = ends.iter().take_while(|&&e| e <= cut).count();
        prop_assert_eq!(report.wal_records, durable_ops as u64);
        let cut_mid_record = ends.iter().all(|&e| e != cut);
        prop_assert_eq!(report.torn_tail.is_some(), cut_mid_record);

        let reference = DynamicGraphStore::new(StoreConfig::default());
        for op in &ops[..durable_ops] {
            reference.apply(op);
        }
        assert_same_graph(recovered.store(), &reference);
        recovered.store().check_invariants().expect("invariants");
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Checkpoints racing concurrent writers must never lose an acknowledged
/// op: the WAL lock is held across append + in-memory apply, and
/// `checkpoint()` takes the same lock, so a snapshot can never be cut
/// between an op's append (acked) and its apply (visible to the snapshot).
#[test]
fn checkpoint_concurrent_with_writers_loses_nothing() {
    let dir = scratch_dir("ckpt-race");
    let n_threads = 4usize;
    let per_thread = 250usize;
    {
        let (durable, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("open");
        let durable = &durable;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        let src = VertexId((t * per_thread + i) as u64);
                        durable
                            .try_apply(&UpdateOp::Insert(Edge::new(src, VertexId(1_000_000), 1.0)))
                            .expect("apply");
                        if i % 64 == 0 {
                            durable
                                .try_apply_batch(
                                    &[UpdateOp::Insert(Edge::new(src, VertexId(2_000_000), 0.5))],
                                    2,
                                )
                                .expect("batch apply");
                        }
                    }
                });
            }
            s.spawn(move || {
                for _ in 0..16 {
                    durable.checkpoint().expect("checkpoint");
                    std::thread::yield_now();
                }
            });
        });
        // Crash: drop without a final checkpoint or sync.
    }
    let (recovered, _) = DurableGraphStore::open(&dir, StoreConfig::default()).expect("recover");
    for t in 0..n_threads {
        for i in 0..per_thread {
            let src = VertexId((t * per_thread + i) as u64);
            assert!(
                recovered
                    .store()
                    .edge_weight(src, VertexId(1_000_000), EdgeType::DEFAULT)
                    .is_some(),
                "acked op for source {src:?} lost across checkpoint race"
            );
            if i % 64 == 0 {
                assert!(
                    recovered
                        .store()
                        .edge_weight(src, VertexId(2_000_000), EdgeType::DEFAULT)
                        .is_some(),
                    "acked batch op for source {src:?} lost across checkpoint race"
                );
            }
        }
    }
    recovered.store().check_invariants().expect("invariants");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One failed shard out of four must not take down the cluster: healthy
/// shards serve at full fidelity, the failed shard degrades explicitly,
/// queued updates drain on heal, and the traffic stats record all of it.
#[test]
fn one_failed_shard_degrades_gracefully_end_to_end() {
    let system = PlatoD2GL::builder().num_shards(4).build();
    let cluster = system.store();
    let profile = DatasetProfile::tiny();
    for e in profile.edge_stream(3) {
        cluster.insert_edge(e);
    }
    let edges_before = cluster.num_edges();

    let dead_shard = 2;
    cluster.faults().fail_shard(dead_shard);

    // Sampling still serves: vertices on live shards answer normally,
    // vertices on the dead shard return explicit degraded (empty) samples
    // instead of panicking.
    let sources = profile.sample_sources(128, 5);
    let mut live_answers = 0usize;
    let mut dead_answers = 0usize;
    for &v in &sources {
        let batch = system.neighbor_sample(&[v], EdgeType::DEFAULT, 8, 42);
        if cluster.route(v) == dead_shard {
            assert!(batch[0].is_empty(), "dead shard must not fabricate samples");
            dead_answers += 1;
        } else if !batch[0].is_empty() {
            live_answers += 1;
        }
    }
    assert!(live_answers > 0, "healthy shards must keep serving");
    assert!(dead_answers > 0, "the profile must exercise the dead shard");
    assert_eq!(cluster.shard_health(dead_shard), ShardHealth::Failed);

    // Updates routed to the failed shard queue instead of applying.
    let dead_vertex = (0..)
        .map(VertexId)
        .find(|v| cluster.route(*v) == dead_shard)
        .expect("every shard owns vertices");
    let update = vec![UpdateOp::Insert(Edge::new(
        dead_vertex,
        VertexId(7_777_777),
        1.5,
    ))];
    system.apply_updates(&update);
    assert_eq!(cluster.pending_ops(dead_shard), 1);
    assert_eq!(cluster.degree(dead_vertex, EdgeType::DEFAULT), 0);

    // Heal: the queue drains and the shard serves again.
    let drained = cluster.heal_shard(dead_shard);
    assert_eq!(drained, 1);
    assert_eq!(cluster.shard_health(dead_shard), ShardHealth::Healthy);
    assert_eq!(cluster.num_edges(), edges_before + 1);
    let samples = system.neighbor_sample(&[dead_vertex], EdgeType::DEFAULT, 4, 7);
    assert_eq!(samples[0].len(), 4, "healed shard samples at full fidelity");

    let t = cluster.traffic();
    assert!(t.failed_requests > 0, "failed requests are counted");
    assert!(t.degraded_responses > 0, "degraded responses are counted");
    assert_eq!(t.queued_ops, 1, "queued updates are counted");
}
