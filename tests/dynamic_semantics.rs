//! Dynamic-graph semantics under churn and concurrency: the properties that
//! make PlatoD2GL usable for online training.

use platod2gl::{
    DatasetProfile, DynamicGraphStore, Edge, EdgeType, GraphStore, LeafIndex, PlatoD2GL,
    SamTreeConfig, StoreConfig, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Heavy mixed churn against a reference map; the store must track exactly.
#[test]
fn churn_matches_reference_model() {
    let store = DynamicGraphStore::new(StoreConfig {
        tree: SamTreeConfig {
            capacity: 8,
            alpha: 1,
            compression: true,
            leaf_index: LeafIndex::Fenwick,
        },
        ..StoreConfig::default()
    });
    let profile = DatasetProfile::tiny();
    let mut reference: HashMap<(u64, u64), f64> = HashMap::new();
    let mut stream = profile.update_stream(71);
    for _ in 0..40_000 {
        let op = stream.next_op();
        store.apply(&op);
        match op {
            UpdateOp::Insert(e) => {
                reference.insert((e.src.raw(), e.dst.raw()), e.weight);
            }
            UpdateOp::UpdateWeight(e) => {
                if let Some(w) = reference.get_mut(&(e.src.raw(), e.dst.raw())) {
                    *w = e.weight;
                }
            }
            UpdateOp::Delete { src, dst, .. } => {
                reference.remove(&(src.raw(), dst.raw()));
            }
        }
    }
    assert_eq!(store.num_edges(), reference.len());
    store
        .check_invariants()
        .expect("samtree invariants under churn");
    for (&(src, dst), &w) in reference.iter().take(2_000) {
        let got = store
            .edge_weight(VertexId(src), VertexId(dst), EdgeType(0))
            .unwrap_or_else(|| panic!("missing edge {src}->{dst}"));
        assert!((got - w).abs() < 1e-6);
    }
}

/// Sampling freshness: every update is visible to the next sampling call.
#[test]
fn sampling_sees_every_update_immediately() {
    let system = PlatoD2GL::builder().num_shards(2).capacity(8).build();
    let store = system.store();
    let src = VertexId(7);
    let mut live = Vec::new();
    let mut rng_seed = 0u64;
    for round in 0..50u64 {
        // Add a vertex, delete the oldest once we have 10.
        let v = VertexId(1_000 + round);
        store.insert_edge(Edge::new(src, v, 1.0));
        live.push(v);
        if live.len() > 10 {
            let gone = live.remove(0);
            assert!(store.delete_edge(src, gone, EdgeType::DEFAULT));
        }
        rng_seed += 1;
        let samples = system.neighbor_sample(&[src], EdgeType::DEFAULT, 64, rng_seed);
        for s in &samples[0] {
            assert!(live.contains(s), "round {round}: stale sample {s:?}");
        }
        // The newest vertex must be reachable (weights are uniform, 64
        // draws over <= 10 neighbors miss one with prob (9/10)^64 ~ 0.1%).
        let newest_seen = samples[0].contains(&v);
        if !newest_seen {
            // Allow the rare statistical miss but verify it is samplable.
            assert!(store.edge_weight(src, v, EdgeType::DEFAULT).is_some());
        }
    }
}

/// Concurrent mixed readers/writers across shards stay consistent.
#[test]
fn concurrent_updates_and_sampling_are_consistent() {
    let system = PlatoD2GL::builder()
        .num_shards(2)
        .capacity(16)
        .threads_per_shard(2)
        .build();
    let profile = DatasetProfile::tiny();
    system.ingest_profile(&profile, 1);
    let sources = profile.sample_sources(32, 3);
    crossbeam::scope(|s| {
        // Writers: 4 threads of batched updates.
        for t in 0..4u64 {
            let system = &system;
            let profile = &profile;
            s.spawn(move |_| {
                let mut stream = profile.update_stream(100 + t);
                for _ in 0..20 {
                    let batch = stream.next_batch(256);
                    system.apply_updates(&batch);
                }
            });
        }
        // Readers: sampling must never return a vertex that was never a
        // neighbor candidate (i.e. outside the profile's dst space) and
        // never panic.
        for t in 0..4u64 {
            let system = &system;
            let sources = &sources;
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(t);
                for round in 0..200 {
                    let src = sources[(round + t as usize) % sources.len()];
                    let out = system
                        .store()
                        .sample_neighbors(src, EdgeType(0), 20, &mut rng);
                    for v in out {
                        assert!(v.index() < 400, "impossible vertex {v:?}");
                    }
                }
            });
        }
    })
    .expect("threads join");
    for server in system.store().servers() {
        server.topology().check_invariants().expect("invariants");
    }
}

/// Weight updates adjust both the edge and all aggregate views.
#[test]
fn aggregates_track_weight_updates() {
    let store = DynamicGraphStore::with_defaults();
    let src = VertexId(1);
    for i in 0..300u64 {
        store.insert_edge(Edge::new(src, VertexId(100 + i), 1.0));
    }
    assert!((store.weight_sum(src, EdgeType::DEFAULT) - 300.0).abs() < 1e-6);
    // Double every tenth edge's weight via a batch.
    let ops: Vec<UpdateOp> = (0..30u64)
        .map(|i| UpdateOp::UpdateWeight(Edge::new(src, VertexId(100 + i * 10), 2.0)))
        .collect();
    store.apply_batch(&ops);
    assert!(
        (store.weight_sum(src, EdgeType::DEFAULT) - 330.0).abs() < 1e-4,
        "got {}",
        store.weight_sum(src, EdgeType::DEFAULT)
    );
    // Deleting them removes their mass.
    let dels: Vec<UpdateOp> = (0..30u64)
        .map(|i| UpdateOp::Delete {
            src,
            dst: VertexId(100 + i * 10),
            etype: EdgeType::DEFAULT,
        })
        .collect();
    store.apply_batch(&dels);
    assert_eq!(store.degree(src, EdgeType::DEFAULT), 270);
    assert!((store.weight_sum(src, EdgeType::DEFAULT) - 270.0).abs() < 1e-4);
    store.check_invariants().expect("invariants");
}

/// Re-inserting after deletion must behave like a fresh edge (regression
/// guard for swap-delete index bookkeeping).
#[test]
fn delete_then_reinsert_cycles() {
    let store = DynamicGraphStore::new(StoreConfig {
        tree: SamTreeConfig {
            capacity: 4,
            alpha: 0,
            compression: false,
            leaf_index: LeafIndex::Fenwick,
        },
        ..StoreConfig::default()
    });
    let src = VertexId(9);
    for cycle in 0..20 {
        for i in 0..50u64 {
            store.insert_edge(Edge::new(src, VertexId(i), (i + 1) as f64));
        }
        assert_eq!(store.degree(src, EdgeType::DEFAULT), 50, "cycle {cycle}");
        for i in 0..50u64 {
            assert!(store.delete_edge(src, VertexId(i), EdgeType::DEFAULT));
        }
        assert_eq!(store.degree(src, EdgeType::DEFAULT), 0, "cycle {cycle}");
    }
    store.check_invariants().expect("invariants");
}
