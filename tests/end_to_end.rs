//! End-to-end integration: profile ingest -> sharded storage -> sampling
//! operators -> GNN training, all through the public facade.

use platod2gl::{
    DatasetProfile, Edge, EdgeType, GraphStore, HashFeatures, MetapathSampler, NodeSampler,
    PlatoD2GL, SageNet, SageNetConfig, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ingest_sample_train_pipeline() {
    let system = PlatoD2GL::builder()
        .num_shards(3)
        .capacity(32)
        .threads_per_shard(2)
        .build();
    let profile = DatasetProfile::ogbn().scaled_to_edges(30_000);
    let report = system.ingest_profile(&profile, 5);
    assert!(report.edges_stored > 10_000);
    assert_eq!(report.edges_stored, system.store().num_edges());

    // Every shard's samtrees remain structurally valid after ingest.
    for server in system.store().servers() {
        server.topology().check_invariants().expect("invariants");
    }

    // Sampling operators over the cluster.
    let seeds = profile.sample_sources(32, 9);
    let neighbor_lists = system.neighbor_sample(&seeds, EdgeType(0), 50, 1);
    assert_eq!(neighbor_lists.len(), 32);
    let non_empty = neighbor_lists.iter().filter(|l| !l.is_empty()).count();
    assert!(non_empty > 16, "most Zipf-drawn sources have out-edges");
    for (seed, list) in seeds.iter().zip(&neighbor_lists) {
        for u in list {
            assert!(
                system.store().edge_weight(*seed, *u, EdgeType(0)).is_some(),
                "sampled non-neighbor"
            );
        }
    }

    let sg = system.subgraph_sample(&seeds[..4], EdgeType(0), &[10, 10], 2);
    assert_eq!(sg.layers.len(), 3);
    assert!(sg.num_vertices() > 4);

    // Train a small GraphSAGE model against the live cluster.
    let provider = HashFeatures::new(8, 2, 33);
    let node_sampler = NodeSampler::new(seeds.clone());
    let mut net = SageNet::new(SageNetConfig {
        feature_dim: 8,
        hidden_dim: 8,
        num_classes: 2,
        fanouts: vec![3, 3],
        lr: 0.05,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(3);
    let mut last_loss = f64::INFINITY;
    for _ in 0..5 {
        let batch = node_sampler.sample(16, &mut rng);
        let labels: Vec<usize> = batch.iter().map(|v| provider.label(*v)).collect();
        let stats = net.train_step(system.store(), &provider, &batch, &labels, &mut rng);
        assert!(stats.loss.is_finite());
        last_loss = stats.loss;
    }
    assert!(last_loss.is_finite());
}

#[test]
fn heterogeneous_metapath_pipeline() {
    let system = PlatoD2GL::builder().num_shards(2).build();
    let profile = DatasetProfile::wechat().scaled_to_edges(40_000);
    system.ingest_profile(&profile, 11);

    // User-Live (etype 0) then Live-Tag (etype 3): layers must respect
    // vertex types.
    let users = profile.sample_sources(16, 4);
    let metapath = MetapathSampler::new(vec![(EdgeType(0), 10), (EdgeType(3), 10)]);
    let mut rng = StdRng::seed_from_u64(6);
    let layers = metapath.sample(system.store(), &users, &mut rng);
    assert_eq!(layers.len(), 3);
    // All hop-1 vertices that came from the User-Live relation are Lives
    // (type 1) — some sources may be Lives themselves because the dataset
    // is bi-directed, which can surface Users at hop 1 too; every hop-2
    // vertex reached over Live-Tag must be a Tag (type 3).
    for v in &layers[2] {
        assert_eq!(v.vtype().0, 3, "Live-Tag hop must land on tags: {v:?}");
    }
}

#[test]
fn updates_flow_through_all_layers() {
    let system = PlatoD2GL::builder().num_shards(2).build();
    let user = VertexId::compose(platod2gl::VertexType(0), 1);
    let items: Vec<VertexId> = (0..8)
        .map(|i| VertexId::compose(platod2gl::VertexType(1), i))
        .collect();
    let ops: Vec<UpdateOp> = items
        .iter()
        .map(|&item| UpdateOp::Insert(Edge::new(user, item, 1.0)))
        .collect();
    system.apply_updates(&ops);
    assert_eq!(system.store().degree(user, EdgeType::DEFAULT), 8);

    // Deleting half through a batch leaves exactly the other half samplable.
    let deletes: Vec<UpdateOp> = items[..4]
        .iter()
        .map(|&item| UpdateOp::Delete {
            src: user,
            dst: item,
            etype: EdgeType::DEFAULT,
        })
        .collect();
    system.apply_updates(&deletes);
    assert_eq!(system.store().degree(user, EdgeType::DEFAULT), 4);
    let samples = system.neighbor_sample(&[user], EdgeType::DEFAULT, 500, 7);
    for v in &samples[0] {
        assert!(items[4..].contains(v), "deleted item sampled: {v:?}");
    }
    // Traffic accounting observed the work.
    let traffic = system.store().traffic();
    assert!(traffic.requests > 0);
    assert!(traffic.request_bytes > 0);
}
