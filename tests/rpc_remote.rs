//! Acceptance tests for the distributed mode: the full training pipeline
//! over a TCP `RemoteCluster` must be bit-identical to the in-process
//! path under a shared seed, and a server-side shard fault must surface to
//! the remote trainer as degraded batches — never client errors — with the
//! client's trace ids findable in the *server's* `GET /debug/slow`.

use platod2gl::{
    route_for, AdminServer, Cluster, ClusterConfig, DegradedPolicy, Edge, EdgeType, GraphService,
    GraphServiceServer, GraphStore, HashFeatures, PipelineConfig, RemoteCluster,
    RemoteClusterConfig, SageNet, SageNetConfig, SampleRequest, TrainingPipeline, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 120;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Deterministically built cluster: calling this twice yields two clusters
/// in identical state (same shards, same edges in the same order).
fn built_cluster(num_shards: usize) -> Arc<Cluster> {
    let config = ClusterConfig::builder()
        .num_shards(num_shards)
        .slow_op_threshold(Duration::ZERO)
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..N {
        for k in 1..=5u64 {
            // Deterministically stamped: the windowed-epoch leg below needs
            // real event times. Unwindowed sampling ignores them.
            let dst = (v + k * 7) % N;
            cluster.insert_edge(
                Edge::new(VertexId(v), VertexId(dst), 1.0).at((v + dst * 13) % 90 + 1),
            );
        }
    }
    cluster
}

fn pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .etype(ET)
        .fanouts(vec![3, 3])
        .batch_size(24)
        // Sequential production: block order (and therefore the order SGD
        // consumes them in) is deterministic, which the bit-equality
        // comparison below needs.
        .prefetch_depth(0)
        .workers(0)
        .seed(seed)
        .build()
        .expect("valid pipeline config")
}

fn fresh_net() -> SageNet {
    SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        seed: 17,
        ..Default::default()
    })
}

/// The headline equivalence claim: a trainer with a fixed seed produces
/// the same mini-batches — and therefore the same losses, accuracies, and
/// parameter trajectory — whether its `GraphService` is the in-process
/// `Cluster` or a `RemoteCluster` talking to an identical server over TCP.
#[test]
fn training_pipeline_is_bit_identical_local_vs_remote() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();

    let local_cluster = built_cluster(3);
    let served_cluster = built_cluster(3);
    let server =
        GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&served_cluster)).expect("bind");
    let remote = RemoteCluster::connect(
        server.local_addr(),
        // A small max_batch forces pipelined multi-frame exchanges, the
        // interesting wire path.
        RemoteClusterConfig::default().max_batch(32),
    )
    .expect("connect");

    let local_pipe = TrainingPipeline::new(&*local_cluster, pipeline_config(42));
    let remote_pipe = TrainingPipeline::new(&remote, pipeline_config(42));
    let mut local_net = fresh_net();
    let mut remote_net = fresh_net();

    for epoch in 0..2 {
        let a = local_pipe.run_epoch(&mut local_net, &provider, &seeds, &labels, epoch);
        let b = remote_pipe.run_epoch(&mut remote_net, &provider, &seeds, &labels, epoch);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.degraded_batches, 0);
        assert_eq!(b.degraded_batches, 0);
        assert_eq!(
            a.mean_loss.to_bits(),
            b.mean_loss.to_bits(),
            "epoch {epoch}: losses must be bit-identical across the wire"
        );
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }

    // The temporal leg: a windowed epoch (each seed sampling only edges no
    // newer than its event time) must also cross the wire bit-identically —
    // the time-window trailer block reaches the server and is enforced
    // there with the same derived RNG as the in-process path.
    let seed_times: Vec<u64> = seeds.iter().map(|v| v.raw() * 13 % 70 + 20).collect();
    let a =
        local_pipe.run_epoch_windowed(&mut local_net, &provider, &seeds, &labels, &seed_times, 2);
    let b =
        remote_pipe.run_epoch_windowed(&mut remote_net, &provider, &seeds, &labels, &seed_times, 2);
    assert_eq!(a.batches, b.batches);
    assert_eq!(
        a.mean_loss.to_bits(),
        b.mean_loss.to_bits(),
        "windowed epoch: losses must be bit-identical across the wire"
    );
    assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());

    // Both sides issued the same cluster requests (dedup + cache
    // interplay included) — the wire changed nothing about the workload.
    let a = local_pipe.stats();
    let b = remote_pipe.stats();
    assert_eq!(a.cluster_requests, b.cluster_requests);
    assert_eq!(a.distinct_sampled, b.distinct_sampled);

    server.shutdown();
}

/// A server-side shard fault mid-training degrades the remote trainer's
/// batches (it keeps training) instead of erroring, and the trace ids the
/// client stamps on its requests are visible in the server's
/// `/debug/slow` — end-to-end, over two separate TCP planes.
#[test]
fn server_fault_degrades_remote_batches_and_traces_cross_the_wire() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();

    let cluster = built_cluster(3);
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind admin");
    let remote = RemoteCluster::connect(server.local_addr(), RemoteClusterConfig::default())
        .expect("connect");

    // Kill a shard on the server side, then train remotely: batches
    // touching the dead shard come back degraded, none of them error.
    let shard = 1;
    cluster.faults().fail_shard(shard);
    let pipe = TrainingPipeline::new(&remote, pipeline_config(7));
    let mut net = fresh_net();
    let report = pipe.run_epoch(&mut net, &provider, &seeds, &labels, 0);
    assert!(report.batches > 0);
    assert!(
        report.degraded_batches > 0,
        "a dead shard must show up as degraded batches"
    );

    // A traced request to the dead shard: the trace id must land in the
    // server's slow-op log and be served by the server's admin plane.
    let trace_id: u64 = 0xFEED_0BEE;
    let victim = (0..N)
        .map(VertexId)
        .find(|&v| route_for(v, 3) == shard)
        .expect("a vertex on the dead shard");
    let req = SampleRequest::new(victim, ET, 4)
        .on_degraded(DegradedPolicy::SelfLoop)
        .with_trace_id(trace_id);
    let resp = remote.sample_one(&req, &mut StdRng::seed_from_u64(5));
    assert!(resp.degraded, "dead shard degrades, never errors");
    assert_eq!(resp.neighbors, vec![victim; 4]);

    let (status, body) = http_get(admin.local_addr(), "/debug/slow");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"trace_id\":{trace_id}")),
        "client trace id must be findable in the server's /debug/slow: {body}"
    );

    // The traffic endpoint reflects the degradation with wire-true sizes.
    let (status, body) = http_get(admin.local_addr(), "/debug/traffic");
    assert_eq!(status, 200);
    assert!(!body.contains("\"degraded_responses\":0"), "{body}");

    // Healing over the wire restores clean training.
    remote.heal(shard);
    cluster.faults().clear(shard);
    let report = pipe.run_epoch(&mut net, &provider, &seeds, &labels, 1);
    assert_eq!(report.degraded_batches, 0, "healed cluster trains clean");

    admin.shutdown();
    server.shutdown();
}
