//! End-to-end observability: one pipeline-training run over a cluster with
//! a WAL sidecar must land counters and histograms from every layer —
//! samtree, storage/WAL, server, pipeline — in a single registry snapshot,
//! and both exposition formats must carry them.

use platod2gl::{
    Cluster, ClusterConfig, DurableGraphStore, Edge, EdgeType, FeatureProvider, GraphStore,
    HashFeatures, PipelineConfig, Registry, SageNet, SageNetConfig, StoreConfig, TrainingPipeline,
    UpdateOp, VertexId,
};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("platod2gl-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a small two-community graph as update ops.
fn community_ops(n: u64, provider: &HashFeatures) -> Vec<UpdateOp> {
    let mut state = 0x5eedu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for v in (0..n).map(VertexId) {
        for _ in 0..5 {
            let mut u = VertexId(next() % n);
            for _ in 0..8 {
                if provider.label(u) == provider.label(v) {
                    break;
                }
                u = VertexId(next() % n);
            }
            ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
        }
    }
    ops
}

#[test]
fn one_snapshot_covers_samtree_storage_wal_server_and_pipeline() {
    let registry = Arc::new(Registry::new());
    let config = ClusterConfig::builder()
        .num_shards(3)
        .build()
        .expect("valid config");
    let cluster = Cluster::with_registry(config, Arc::clone(&registry));

    let dir = temp_dir("e2e");
    let (durable, _) =
        DurableGraphStore::open_with_registry(&dir, StoreConfig::default(), Arc::clone(&registry))
            .expect("open durable store");

    let n = 300u64;
    let provider = HashFeatures::new(8, 2, 7);
    let ops = community_ops(n, &provider);
    cluster.apply_batch_sharded(&ops).expect("bulk load");
    durable.try_apply_batch(&ops, 2).expect("wal apply");
    durable.checkpoint().expect("wal checkpoint");

    let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
    let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
    let cfg = PipelineConfig::builder()
        .fanouts(vec![3, 3])
        .batch_size(32)
        .seed(5)
        .build()
        .expect("valid pipeline config");
    let pipeline = TrainingPipeline::new(&cluster, cfg);
    let mut net = SageNet::new(SageNetConfig {
        feature_dim: provider.dim(),
        fanouts: vec![3, 3],
        lr: 0.1,
        ..Default::default()
    });
    let report = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, 0);
    assert!(report.batches > 0);

    let snap = registry.snapshot();

    // Samtree layer: inserts went through leaves; sampling issued draws.
    assert!(snap.counter("samtree.leaf_ops").unwrap() > 0);
    assert!(snap.counter("samtree.sample_requests").unwrap() > 0);
    // Storage layer: batch application timed, edge gauge live.
    assert!(snap.counter("storage.batches").unwrap() > 0);
    assert!(snap.gauge("storage.edges").unwrap() > 0);
    // WAL layer: appends and the checkpoint observed.
    assert!(snap.counter("wal.appends").unwrap() > 0);
    assert_eq!(snap.counter("wal.checkpoints"), Some(1));
    // Server layer: RPC accounting and serving latency.
    assert!(snap.counter("cluster.requests").unwrap() > 0);
    let (_, sample_hist) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "cluster.sample_latency_ns")
        .expect("cluster sample latency registered");
    assert!(sample_hist.count > 0);
    // Pipeline layer: stage histograms and cache counters.
    assert_eq!(snap.counter("pipeline.batches"), Some(report.batches));
    assert!(snap.counter("pipeline.cluster_requests").unwrap() > 0);
    let (_, train_hist) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "pipeline.train_ns")
        .expect("train-stage histogram registered");
    assert_eq!(train_hist.count, report.batches);
    let cache_lookups = snap.counter("pipeline.cache.hits").unwrap()
        + snap.counter("pipeline.cache.misses").unwrap()
        + snap.counter("pipeline.cache.stale_hits").unwrap();
    assert!(cache_lookups > 0);

    // The typed views stay consistent with the registry.
    assert_eq!(
        cluster.traffic().requests,
        snap.counter("cluster.requests").unwrap()
    );
    assert_eq!(
        pipeline.stats().cluster_requests,
        snap.counter("pipeline.cluster_requests").unwrap()
    );

    // Both exposition formats carry all layers.
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    for name in [
        "samtree.leaf_ops",
        "storage.batches",
        "wal.appends",
        "cluster.requests",
        "pipeline.batches",
    ] {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "{name} missing in JSON"
        );
    }
    for name in [
        "plato_samtree_leaf_ops_total",
        "plato_storage_batches_total",
        "plato_wal_appends_total",
        "plato_cluster_requests_total",
        "plato_pipeline_batches_total",
        "plato_cluster_sample_latency_seconds_bucket",
        "plato_storage_edges",
    ] {
        assert!(prom.contains(name), "{name} missing in Prometheus text");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn facade_exposes_the_cluster_registry() {
    let sys = platod2gl::PlatoD2GL::builder().num_shards(2).build();
    sys.store()
        .insert_edge(Edge::new(VertexId(1), VertexId(2), 1.0));
    let snap = sys.obs().snapshot();
    assert!(snap.counter("cluster.requests").unwrap() >= 1);
    assert!(snap.counter("samtree.leaf_ops").unwrap() >= 1);
    // The deprecated-free unified sample API is reachable from the facade
    // re-exports.
    use platod2gl::{DegradedPolicy, SampleRequest};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let resp = sys.store().sample(
        &SampleRequest::new(VertexId(1), EdgeType::DEFAULT, 4)
            .on_degraded(DegradedPolicy::SelfLoop),
        &mut rng,
    );
    assert!(!resp.degraded);
    assert_eq!(resp.neighbors.len(), 4);
}
