//! Acceptance tests for the temporal plane: windowed sampling never
//! returns an edge outside the requested time window — proptested locally
//! against the storage engine, and through the full k-hop sampler over a
//! TCP `RemoteCluster` and a 3-server partition-routed `FleetCluster`,
//! where the two deployments must also stay bit-identical to each other.

use platod2gl::{
    CacheConfig, Cluster, ClusterConfig, DynamicGraphStore, Edge, EdgeType, FleetCluster,
    FleetClusterConfig, FleetNode, GraphService, GraphServiceServer, GraphStore, KHopSampler,
    NeighborCache, PartitionMap, RemoteCluster, RemoteClusterConfig, ServerEntry, TimeWindow,
    UpdateOp, VertexId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 60;
const PARTITIONS: u32 = 64;

/// The deterministic event time of edge `(src, dst)` in the wire-rig
/// graph: derivable from the endpoint ids alone, so the invariant is
/// checkable from sampled vertex ids without asking the servers.
fn event_ts(src: u64, dst: u64) -> u64 {
    (src * 31 + dst * 17) % 97 + 1
}

/// The stamped graph both deployments load: ~6 out-edges per vertex, no
/// self-edges, every edge stamped with `event_ts`.
fn stamped_ops() -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for s in 0..N {
        for k in 1..=6u64 {
            let d = (s + k * 11) % N;
            if d == s {
                continue;
            }
            ops.push(UpdateOp::Insert(
                Edge::new(VertexId(s), VertexId(d), 1.0 + k as f64 * 0.1).at(event_ts(s, d)),
            ));
        }
    }
    ops
}

fn client_cfg() -> RemoteClusterConfig {
    RemoteClusterConfig::default()
        .max_retries(0)
        .request_timeout(Duration::from_millis(500))
}

/// One remote server with the whole graph plus a 3-server fleet with
/// hash-routed partitions of it, both loaded with `stamped_ops`. Built
/// once per process: every proptest case reuses the live sockets.
struct WireRig {
    remote: RemoteCluster,
    fleet: FleetCluster,
    _nodes: Vec<Arc<FleetNode>>,
    _servers: Vec<GraphServiceServer>,
}

fn wire_rig() -> &'static WireRig {
    static RIG: OnceLock<WireRig> = OnceLock::new();
    RIG.get_or_init(|| {
        let ops = stamped_ops();
        let mut servers = Vec::new();

        let single = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&single)).expect("bind");
        let remote = RemoteCluster::connect(server.local_addr(), client_cfg()).expect("connect");
        remote.apply_updates(&ops).expect("loads");
        servers.push(server);

        let mut nodes = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..3 {
            let cluster = Arc::new(Cluster::new(
                ClusterConfig::builder()
                    .num_shards(2)
                    .build()
                    .expect("valid config"),
            ));
            let node = Arc::new(FleetNode::new(cluster, i + 1, client_cfg()));
            let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&node)).expect("bind");
            addrs.push(server.local_addr().to_string());
            nodes.push(node);
            servers.push(server);
        }
        let roster: Vec<ServerEntry> = nodes
            .iter()
            .zip(&addrs)
            .map(|(node, addr)| ServerEntry {
                id: node.server_id(),
                addr: addr.clone(),
            })
            .collect();
        let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
        for node in &nodes {
            node.install(map.clone());
        }
        let fleet = FleetCluster::connect(
            &addrs,
            FleetClusterConfig {
                client: client_cfg(),
                num_partitions: PARTITIONS,
            },
        )
        .expect("connect");
        fleet.apply_updates(&ops).expect("loads");

        WireRig {
            remote,
            fleet,
            _nodes: nodes,
            _servers: servers,
        }
    })
}

/// Every level-`d+1` slot of a windowed k-hop block is either self-loop
/// padding or reached over an edge whose event time is inside the seed's
/// window — the time-respecting invariant, checked per hop.
fn assert_time_respecting(levels: &[Vec<VertexId>], fanouts: &[usize], win: TimeWindow) {
    for d in 0..fanouts.len() {
        for (j, &child) in levels[d + 1].iter().enumerate() {
            let parent = levels[d][j / fanouts[d]];
            if child == parent {
                continue; // self-loop padding (the graph has no self-edges)
            }
            let ts = event_ts(parent.raw(), child.raw());
            assert!(
                win.contains(ts),
                "hop {}: edge {}->{} at t={} leaked into window [{}, {}]",
                d + 1,
                parent.raw(),
                child.raw(),
                ts,
                win.min_ts,
                win.max_ts,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// Storage-level monotonicity: for an arbitrary stamped neighborhood
    /// and an arbitrary window, every windowed draw is in-window (timeless
    /// edges always qualify), and the sampler fills all requested slots
    /// whenever anything is drawable.
    #[test]
    fn windowed_draws_never_leave_the_window_locally(
        edges in proptest::collection::vec((1u32..100, 0u64..1_000), 1..40),
        bounds in (0u64..1_100, 0u64..1_100),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let store = DynamicGraphStore::with_defaults();
        let mut ts_of = std::collections::HashMap::new();
        for (i, &(w, ts)) in edges.iter().enumerate() {
            let dst = 1_000 + i as u64;
            store.insert_edge(
                Edge::new(VertexId(0), VertexId(dst), w as f64 / 10.0).at(ts),
            );
            ts_of.insert(dst, ts);
        }
        let win = TimeWindow::new(bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let mut rng = StdRng::seed_from_u64(seed);
        let picks =
            store.sample_neighbors_windowed(VertexId(0), ET, 16, Some(win), &mut rng);
        for p in &picks {
            let ts = ts_of[&p.raw()];
            prop_assert!(
                win.contains(ts),
                "draw {} at t={} outside [{}, {}]",
                p.raw(), ts, win.min_ts, win.max_ts
            );
        }
        // If anything qualifies, every slot must be filled.
        let drawable = ts_of.values().any(|&ts| win.contains(ts));
        prop_assert_eq!(picks.len(), if drawable { 16 } else { 0 });
    }

    /// Wire-level monotonicity and parity: the same windowed k-hop block,
    /// rooted at arbitrary seeds under an arbitrary `until` window, is
    /// time-respecting through a remote server AND through a 3-server
    /// fleet — and the two deployments return bit-identical levels.
    #[test]
    fn windowed_khop_is_time_respecting_over_remote_and_fleet(
        seeds in proptest::collection::vec(0u64..N, 1..5),
        max_ts in 1u64..120,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let rig = wire_rig();
        let seeds: Vec<VertexId> = seeds.into_iter().map(VertexId).collect();
        let win = TimeWindow::until(max_ts);
        let windows = vec![Some(win); seeds.len()];
        let fanouts = vec![4usize, 3];
        let sampler = KHopSampler::new(ET, fanouts.clone());

        let remote_cache = NeighborCache::new(CacheConfig::disabled());
        let fleet_cache = NeighborCache::new(CacheConfig::disabled());
        let remote_out = sampler.sample_block_windowed(
            &rig.remote,
            &remote_cache,
            &seeds,
            &windows,
            &mut StdRng::seed_from_u64(seed),
        );
        let fleet_out = sampler.sample_block_windowed(
            &rig.fleet,
            &fleet_cache,
            &seeds,
            &windows,
            &mut StdRng::seed_from_u64(seed),
        );

        prop_assert_eq!(remote_out.degraded_samples, 0);
        prop_assert_eq!(fleet_out.degraded_samples, 0);
        assert_time_respecting(&remote_out.levels, &fanouts, win);
        assert_time_respecting(&fleet_out.levels, &fanouts, win);
        prop_assert_eq!(
            remote_out.levels, fleet_out.levels,
            "remote and fleet must answer the same windowed block bit-identically"
        );
    }
}
