//! Integration tests for the mini-batch training pipeline: end-to-end
//! learning under concurrent updates, fault-path degradation and healing,
//! and statistical correctness of composed k-hop sampling.

use platod2gl::{
    CacheConfig, Cluster, ClusterConfig, Edge, EdgeType, GraphStore, HashFeatures, KHopSampler,
    NeighborCache, PipelineConfig, SageNet, SageNetConfig, TrainingPipeline, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

const ET: EdgeType = EdgeType::DEFAULT;

/// Two-community graph: same-label vertices connect densely, cross-label
/// edges are rare. Learnable by GraphSAGE from hash features alone.
fn community_cluster(
    provider: &HashFeatures,
    n: u64,
    num_shards: usize,
) -> (Cluster, Vec<VertexId>, Vec<usize>) {
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(num_shards)
            .build()
            .expect("valid config"),
    );
    let vertices: Vec<VertexId> = (0..n).map(VertexId).collect();
    let labels: Vec<usize> = vertices.iter().map(|&v| provider.label(v)).collect();
    let by_label: Vec<Vec<VertexId>> = (0..2)
        .map(|c| {
            vertices
                .iter()
                .copied()
                .filter(|&v| provider.label(v) == c)
                .collect()
        })
        .collect();
    let mut state = 0xdead_beefu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ops = Vec::new();
    for &v in &vertices {
        let c = provider.label(v);
        for _ in 0..6 {
            let peers = &by_label[c];
            let u = peers[next() as usize % peers.len()];
            ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
        }
        // One rare cross-community edge in ten.
        if next() % 10 == 0 {
            let peers = &by_label[1 - c];
            let u = peers[next() as usize % peers.len()];
            ops.push(UpdateOp::Insert(Edge::new(v, u, 0.25)));
        }
    }
    cluster.apply_batch_sharded(&ops).expect("bulk load");
    (cluster, vertices, labels)
}

#[test]
fn loss_decreases_under_concurrent_updates() {
    let provider = HashFeatures::new(16, 2, 7);
    let (cluster, vertices, labels) = community_cluster(&provider, 300, 4);
    let cfg = PipelineConfig {
        etype: ET,
        fanouts: vec![4, 4],
        batch_size: 64,
        prefetch_depth: 4,
        workers: 2,
        cache: CacheConfig {
            capacity: 1 << 14,
            shards: 4,
            max_staleness: 64,
        },
        seed: 11,
    };
    let pipeline = TrainingPipeline::new(&cluster, cfg);
    let mut net = SageNet::new(SageNetConfig {
        fanouts: vec![4, 4],
        lr: 0.1,
        ..Default::default()
    });

    let stop = AtomicBool::new(false);
    let (first, last) = std::thread::scope(|scope| {
        // Writer streams label-preserving edges while training runs: the
        // pipeline must keep learning on the mutating graph.
        scope.spawn(|| {
            let mut state = 0x5eedu64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            while !stop.load(Ordering::Relaxed) {
                let mut ops = Vec::with_capacity(16);
                for _ in 0..16 {
                    let v = VertexId(next() % 300);
                    let mut u = VertexId(next() % 300);
                    // Keep the stream label-preserving so the task the
                    // model is learning does not drift mid-test.
                    for _ in 0..8 {
                        if provider.label(u) == provider.label(v) {
                            break;
                        }
                        u = VertexId(next() % 300);
                    }
                    ops.push(UpdateOp::Insert(Edge::new(v, u, 1.0)));
                }
                let _ = cluster.apply_batch_sharded(&ops);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });

        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for epoch in 0..12 {
            let report = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
            assert!(report.mean_loss.is_finite());
            if epoch == 0 {
                first = report.mean_loss;
            }
            last = report.mean_loss;
        }
        stop.store(true, Ordering::Relaxed);
        (first, last)
    });

    assert!(
        last < first * 0.7,
        "loss did not drop under concurrent updates: {first} -> {last}"
    );
    let stats = pipeline.stats();
    assert!(stats.cache.lookups() > 0);
    assert!(
        stats.cache.hit_rate() > 0.1,
        "cache never served: {:?}",
        stats.cache
    );
    // Dedup must have collapsed repeated frontier vertices.
    assert!(stats.distinct_sampled < stats.frontier_slots);
    // The JSON snapshot is well-formed enough to embed in bench output.
    let json = stats.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"sample\"") && json.contains("\"hit_rate\""));
}

#[test]
fn shard_failure_mid_epoch_degrades_then_heals() {
    let provider = HashFeatures::new(16, 2, 7);
    let (cluster, vertices, labels) = community_cluster(&provider, 240, 4);
    // Cache disabled so degradation is visible on every sample, not
    // masked by entries cached before the failure.
    let cfg = PipelineConfig {
        etype: ET,
        fanouts: vec![3, 3],
        batch_size: 48,
        prefetch_depth: 2,
        workers: 2,
        cache: CacheConfig::disabled(),
        seed: 23,
    };
    let pipeline = TrainingPipeline::new(&cluster, cfg);
    let mut net = SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        ..Default::default()
    });

    let batches: Vec<(Vec<VertexId>, Vec<usize>)> = vertices
        .chunks(48)
        .zip(labels.chunks(48))
        .map(|(s, l)| (s.to_vec(), l.to_vec()))
        .collect();
    let half = batches.len() / 2;

    // First half of the epoch: healthy cluster.
    let healthy = pipeline.run_batches(&mut net, &provider, batches[..half].to_vec(), 0);
    assert_eq!(healthy.batches as usize, half);
    assert_eq!(healthy.degraded_batches, 0);

    // A shard dies mid-epoch; training must complete, counting the
    // affected batches as degraded instead of failing.
    cluster.faults().fail_shard(1);
    let degraded = pipeline.run_batches(&mut net, &provider, batches[half..].to_vec(), 0);
    assert_eq!(degraded.batches as usize, batches.len() - half);
    assert!(
        degraded.degraded_batches > 0,
        "a failed shard must surface as degraded batches"
    );
    assert!(degraded.mean_loss.is_finite());

    // Heal: queued state drains and the next epoch is clean again.
    cluster.heal_shard(1);
    let healed = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, 1);
    assert_eq!(healed.batches as usize, batches.len());
    assert_eq!(healed.degraded_batches, 0, "healed shard still degrading");
}

/// Upper-tail chi-square critical values at significance 0.001. A false
/// failure rate of 1e-3 per draw keeps the test stable in CI while still
/// detecting real distributional bugs.
fn chi2_crit(df: usize) -> f64 {
    match df {
        2 => 13.816,
        3 => 16.266,
        _ => panic!("no critical value tabulated for df={df}"),
    }
}

#[test]
fn two_hop_frequencies_match_composed_single_hop_marginals() {
    // Weighted two-level graph. Every mid vertex has out-edges, so no
    // self-padding pollutes the hop-2 support.
    //
    //   0 -> 1 (w 1), 2 (w 2), 3 (w 3)
    //   1 -> 10 (w 1), 11 (w 2)
    //   2 -> 10 (w 3), 12 (w 1)
    //   3 -> 11 (w 1), 12 (w 1), 13 (w 2)
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .num_shards(3)
            .build()
            .expect("valid config"),
    );
    let edges = [
        (0u64, 1u64, 1.0f64),
        (0, 2, 2.0),
        (0, 3, 3.0),
        (1, 10, 1.0),
        (1, 11, 2.0),
        (2, 10, 3.0),
        (2, 12, 1.0),
        (3, 11, 1.0),
        (3, 12, 1.0),
        (3, 13, 2.0),
    ];
    for &(s, d, w) in &edges {
        cluster.insert_edge(Edge::new(VertexId(s), VertexId(d), w));
    }
    // Single-hop marginals straight from the edge weights.
    let p1 = [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0]; // mids 1, 2, 3
    let cond: [&[(u64, f64)]; 3] = [
        &[(10, 1.0 / 3.0), (11, 2.0 / 3.0)],
        &[(10, 3.0 / 4.0), (12, 1.0 / 4.0)],
        &[(11, 1.0 / 4.0), (12, 1.0 / 4.0), (13, 2.0 / 4.0)],
    ];
    // Composed two-hop marginal: P2(x) = sum_m P1(m) * P(x | m).
    let mut p2: HashMap<u64, f64> = HashMap::new();
    for (m, &pm) in p1.iter().enumerate() {
        for &(x, px) in cond[m] {
            *p2.entry(x).or_insert(0.0) += pm * px;
        }
    }

    // Sample N independent 2-hop chains with fanout [1, 1]. The cache
    // must be off: cached draws would freeze the chain and destroy
    // independence across blocks.
    let sampler = KHopSampler::new(ET, vec![1, 1]);
    let cache = NeighborCache::new(CacheConfig::disabled());
    let mut rng = StdRng::seed_from_u64(42);
    let n = 30_000u64;
    let mut hop1: HashMap<u64, u64> = HashMap::new();
    let mut hop2: HashMap<u64, u64> = HashMap::new();
    for _ in 0..n {
        let out = sampler.sample_block(&cluster, &cache, &[VertexId(0)], &mut rng);
        assert_eq!(out.degraded_samples, 0);
        *hop1.entry(out.levels[1][0].raw()).or_insert(0) += 1;
        *hop2.entry(out.levels[2][0].raw()).or_insert(0) += 1;
    }

    // Hop 1 must match the FTS marginal (df = 3 - 1).
    let mut chi1 = 0.0;
    for (m, &pm) in p1.iter().enumerate() {
        let observed = *hop1.get(&(m as u64 + 1)).unwrap_or(&0) as f64;
        let expected = pm * n as f64;
        chi1 += (observed - expected).powi(2) / expected;
    }
    assert!(hop1.len() == 3, "unexpected hop-1 support: {hop1:?}");
    assert!(chi1 < chi2_crit(2), "hop-1 chi2 {chi1} (counts {hop1:?})");

    // Hop 2 must match the composition (support {10..13}, df = 4 - 1).
    let mut chi2 = 0.0;
    for (&x, &px) in &p2 {
        let observed = *hop2.get(&x).unwrap_or(&0) as f64;
        let expected = px * n as f64;
        chi2 += (observed - expected).powi(2) / expected;
    }
    assert!(hop2.len() == 4, "unexpected hop-2 support: {hop2:?}");
    assert!(chi2 < chi2_crit(3), "hop-2 chi2 {chi2} (counts {hop2:?})");
}

#[test]
fn prefetch_and_sync_paths_train_equivalently() {
    // Same data, same model init: the sync path and the prefetch path
    // must both learn — block order differs but the math is the same.
    let provider = HashFeatures::new(16, 2, 7);
    let (cluster, vertices, labels) = community_cluster(&provider, 200, 3);
    for (depth, workers) in [(0usize, 0usize), (3, 2)] {
        let cfg = PipelineConfig {
            etype: ET,
            fanouts: vec![4, 4],
            batch_size: 50,
            prefetch_depth: depth,
            workers,
            cache: CacheConfig::default(),
            seed: 31,
        };
        let pipeline = TrainingPipeline::new(&cluster, cfg);
        let mut net = SageNet::new(SageNetConfig {
            fanouts: vec![4, 4],
            lr: 0.1,
            ..Default::default()
        });
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for epoch in 0..10 {
            let r = pipeline.run_epoch(&mut net, &provider, &vertices, &labels, epoch);
            assert_eq!(r.batches, 4);
            if epoch == 0 {
                first = r.mean_loss;
            }
            last = r.mean_loss;
        }
        assert!(
            last < first * 0.7,
            "depth={depth}: loss did not drop ({first} -> {last})"
        );
    }
}
