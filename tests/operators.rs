//! The full operator stack (node / neighbor / subgraph / metapath / walk /
//! negative sampling and both trainers) driven through the sharded cluster
//! facade — the integration surface a training job actually touches.

use platod2gl::{
    DatasetProfile, DeepWalkConfig, DeepWalkTrainer, Edge, EdgeType, GraphStore, HashFeatures,
    MetapathSampler, NegativeSampler, NeighborSampler, Node2VecWalker, NodeSampler, PlatoD2GL,
    RandomWalkSampler, SageNet, SageNetConfig, SubgraphSampler, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn booted_system() -> (PlatoD2GL, DatasetProfile) {
    let system = PlatoD2GL::builder().num_shards(3).capacity(32).build();
    let profile = DatasetProfile::ogbn().scaled_to_edges(20_000);
    system.ingest_profile(&profile, 7);
    (system, profile)
}

#[test]
fn every_sampler_runs_against_the_cluster() {
    let (system, profile) = booted_system();
    let store = system.store();
    let seeds = profile.sample_sources(16, 1);
    let mut rng = StdRng::seed_from_u64(2);

    // Node sampling.
    let node_sampler = NodeSampler::new(seeds.clone());
    assert_eq!(node_sampler.sample(8, &mut rng).len(), 8);

    // Neighbor sampling, with and without replacement.
    let ns = NeighborSampler::new(EdgeType(0), 10);
    let with = ns.sample(store, &seeds, &mut rng);
    assert_eq!(with.len(), seeds.len());
    let unique = ns.sample_unique(store, &seeds, &mut rng);
    for (v, list) in seeds.iter().zip(&unique) {
        let mut ids: Vec<u64> = list.iter().map(|x| x.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), list.len(), "duplicates for {v:?}");
    }

    // Subgraph + metapath.
    let sg = SubgraphSampler::new(EdgeType(0), vec![5, 5]).sample(store, &seeds[..4], &mut rng);
    assert_eq!(sg.layers.len(), 3);
    let mp = MetapathSampler::new(vec![(EdgeType(0), 5), (EdgeType(0), 5)]).sample(
        store,
        &seeds[..4],
        &mut rng,
    );
    assert_eq!(mp.len(), 3);

    // Walks: first-order, restarting, and node2vec.
    for walk in RandomWalkSampler::new(EdgeType(0), 8).sample(store, &seeds[..4], &mut rng) {
        for pair in walk.windows(2) {
            assert!(store.edge_weight(pair[0], pair[1], EdgeType(0)).is_some());
        }
    }
    let _ = RandomWalkSampler::new(EdgeType(0), 8)
        .with_restart(0.3)
        .sample(store, &seeds[..4], &mut rng);
    for walk in Node2VecWalker::new(EdgeType(0), 8, 4.0, 0.5).sample(store, &seeds[..4], &mut rng) {
        for pair in walk.windows(2) {
            assert!(store.edge_weight(pair[0], pair[1], EdgeType(0)).is_some());
        }
    }

    // Negative sampling.
    let neg = NegativeSampler::new(EdgeType(0), seeds.clone());
    for n in neg.sample(store, seeds[0], 4, &mut rng) {
        assert!(store.edge_weight(seeds[0], n, EdgeType(0)).is_none());
    }
}

#[test]
fn both_trainer_families_run_against_the_cluster() {
    let (system, profile) = booted_system();
    let store = system.store();
    let seeds = profile.sample_sources(48, 3);
    let provider = HashFeatures::new(8, 2, 11);
    let mut rng = StdRng::seed_from_u64(4);

    // GraphSAGE supervised steps.
    let mut sage = SageNet::new(SageNetConfig {
        feature_dim: 8,
        hidden_dim: 8,
        fanouts: vec![3, 3],
        lr: 0.05,
        ..Default::default()
    });
    let labels: Vec<usize> = seeds.iter().map(|v| provider.label(*v)).collect();
    let s1 = sage.train_step(store, &provider, &seeds, &labels, &mut rng);
    let s2 = sage.train_step(store, &provider, &seeds, &labels, &mut rng);
    assert!(s1.loss.is_finite() && s2.loss.is_finite());
    let emb = sage.embed(store, &provider, &seeds[..4], &mut rng);
    assert_eq!(emb.rows(), 4);

    // DeepWalk unsupervised epochs.
    let dw = DeepWalkTrainer::new(
        DeepWalkConfig {
            dim: 8,
            walk_length: 6,
            ..Default::default()
        },
        seeds.clone(),
    );
    let l1 = dw.train_epoch(store, &seeds, &mut rng);
    let mut last = l1;
    for _ in 0..5 {
        last = dw.train_epoch(store, &seeds, &mut rng);
    }
    assert!(last.is_finite() && last <= l1 * 1.5);
    assert!(!dw.embeddings.is_empty());
}

#[test]
fn decay_and_topk_flow_through_the_cluster() {
    let system = PlatoD2GL::builder().num_shards(2).build();
    let store = system.store();
    let user = VertexId(42);
    for i in 0..30u64 {
        store.insert_edge(Edge::new(user, VertexId(100 + i), (i % 5) as f64 + 1.0));
    }
    let top = store.top_k_neighbors(user, EdgeType(0), 3);
    assert_eq!(top.len(), 3);
    assert!((top[0].1 - 5.0).abs() < 1e-9);
    let before = store.weight_sum(user, EdgeType(0));
    store.decay_weights(0.5);
    assert!((store.weight_sum(user, EdgeType(0)) - before * 0.5).abs() < 1e-6);
    // Per-shard latency telemetry saw the sampling traffic.
    let mut rng = StdRng::seed_from_u64(5);
    let _ = store.sample_neighbors(user, EdgeType(0), 10, &mut rng);
    assert!(store.sample_latency().count() >= 1);
    // Account deletion wipes the neighborhood.
    assert_eq!(store.delete_source(user, EdgeType(0)), 30);
    assert!(store.top_k_neighbors(user, EdgeType(0), 3).is_empty());
}
