//! Acceptance tests for the transactional batch-op plane: two-phase
//! validated apply on the cluster (all-or-nothing, version bump on commit
//! only), txn-id idempotence through the dedupe ledger, scripted admission
//! aborts, the same semantics over the TCP `GraphService` wire, and the
//! admin plane's `/debug/txns` + storage-health views of it all.

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, GraphService, GraphServiceServer,
    GraphStore, GraphTxn, RemoteCluster, RemoteClusterConfig, TxnError, VertexId, ViolationKind,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const ET: EdgeType = EdgeType::DEFAULT;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn cluster(num_shards: usize) -> Arc<Cluster> {
    let config = ClusterConfig::builder()
        .num_shards(num_shards)
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..30u64 {
        cluster.insert_edge(Edge::new(VertexId(v), VertexId(v + 100), 1.0));
    }
    cluster
}

fn edge(src: u64, dst: u64, w: f64) -> Edge {
    Edge::new(VertexId(src), VertexId(dst), w)
}

/// A committed txn is all-or-nothing across shards, bumps the graph
/// version exactly once, and lands in the journal; a rejected txn changes
/// nothing — not even the version — and reports every violation at once.
#[test]
fn cluster_txns_commit_atomically_and_abort_cleanly() {
    let c = cluster(3);
    let v0 = c.graph_version();
    let e0 = c.num_edges();

    // Multi-shard commit: inserts routed to different shards plus a
    // weight patch on a pre-existing edge.
    let txn = GraphTxn::new(1)
        .insert_edge(edge(1000, 2000, 1.0))
        .insert_edge(edge(1001, 2001, 2.0))
        .patch_weight(edge(0, 100, 9.0));
    let receipt = c.apply_txn(&txn).expect("commit");
    assert_eq!(receipt.ops_applied, 3);
    assert!(!receipt.deduped);
    assert_eq!(c.graph_version(), v0 + 1, "one bump per committed txn");
    assert_eq!(c.num_edges(), e0 + 2);
    assert_eq!(c.edge_weight(VertexId(0), VertexId(100), ET), Some(9.0));

    // Phase-1 abort: one dangling delete poisons the whole batch — the
    // valid insert in the same txn must NOT be applied, and the version
    // must not move (caches stay valid).
    let v1 = c.graph_version();
    let bad = GraphTxn::new(2)
        .insert_edge(edge(3000, 4000, 1.0))
        .delete_edge(VertexId(7777), VertexId(8888), ET);
    let err = c.apply_txn(&bad).expect_err("must reject");
    assert!(err.is_rejected());
    let violations = err.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, ViolationKind::DanglingDelete);
    assert_eq!(violations[0].op_index, 1);
    assert_eq!(c.graph_version(), v1, "rejected txn must not bump");
    assert_eq!(c.edge_weight(VertexId(3000), VertexId(4000), ET), None);

    // All violations are collected in one pass, not first-error-wins.
    let multi = GraphTxn::new(3)
        .delete_edge(VertexId(7777), VertexId(8888), ET)
        .insert_edge(edge(1, 2, f64::NAN))
        .insert_edge(edge(5, 6, 1.0))
        .insert_edge(edge(5, 6, 2.0));
    let err = c.apply_txn(&multi).expect_err("must reject");
    assert_eq!(err.violations().len(), 3);

    // The journal saw all of it, newest first or oldest first — just
    // check membership and outcomes.
    let journal = c.txn_journal();
    let outcome = |id: u64| {
        journal
            .iter()
            .find(|e| e.txn_id == id)
            .map(|e| e.outcome)
            .expect("journal entry")
    };
    assert_eq!(outcome(1), "committed");
    assert_eq!(outcome(2), "rejected");
    assert_eq!(outcome(3), "rejected");
    assert_eq!(c.txn_abort_streak(), 2);
}

/// Replaying a committed txn id returns the original receipt flagged
/// `deduped` and applies nothing — the at-most-once contract retries
/// lean on.
#[test]
fn txn_ids_are_idempotent_through_the_ledger() {
    let c = cluster(2);
    let txn = GraphTxn::new(77).insert_edge(edge(500, 600, 1.0));
    let first = c.apply_txn(&txn).expect("commit");
    let v = c.graph_version();
    let e = c.num_edges();

    let replay = c.apply_txn(&txn).expect("dedupe");
    assert!(replay.deduped);
    assert_eq!(replay.txn_id, first.txn_id);
    assert_eq!(replay.ops_applied, first.ops_applied);
    assert_eq!(c.graph_version(), v, "dedupe must not re-apply");
    assert_eq!(c.num_edges(), e);
}

/// A scripted `AbortNextTxn` fault aborts exactly one txn at admission —
/// no shard state changes, no health mutation, no version bump — and the
/// next txn sails through.
#[test]
fn scripted_admission_abort_is_clean_and_one_shot() {
    use platod2gl::{route_for, Error, ShardHealth};
    let c = cluster(2);
    let v = c.graph_version();
    let victim = (0..64)
        .map(VertexId)
        .find(|&x| route_for(x, 2) == 0)
        .expect("a vertex routed to shard 0");
    c.faults().abort_next_txn(0);

    let txn = GraphTxn::new(10).insert_edge(Edge::new(victim, VertexId(9000), 1.0));
    let err = c.apply_txn(&txn).expect_err("scripted abort");
    match err {
        TxnError::Store(Error::ShardUnavailable { shard }) => assert_eq!(shard, 0),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert_eq!(c.graph_version(), v, "admission abort must not bump");
    assert_eq!(c.edge_weight(victim, VertexId(9000), ET), None);
    assert_eq!(
        c.shard_health(0),
        ShardHealth::Healthy,
        "admission aborts never poison shard health"
    );

    // One-shot: a fresh id commits.
    let retry = GraphTxn::new(11).insert_edge(Edge::new(victim, VertexId(9000), 1.0));
    assert!(c.apply_txn(&retry).is_ok());
    assert_eq!(c.edge_weight(victim, VertexId(9000), ET), Some(1.0));
}

/// The full txn contract crosses the TCP wire: `RemoteCluster::apply_txn`
/// commits, rejections arrive with their structured violation list, and a
/// client-side resend of the same txn id is absorbed by the server's
/// ledger as a dedupe — the remote idempotent-retry story end to end.
#[test]
fn remote_txns_match_local_semantics_and_retries_dedupe() {
    let served = cluster(3);
    let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&served)).expect("bind");
    let remote = RemoteCluster::connect(server.local_addr(), RemoteClusterConfig::default())
        .expect("connect");

    let txn = GraphTxn::new(42)
        .insert_edge(edge(800, 900, 1.5))
        .patch_weight(edge(0, 100, 3.0));
    let receipt = remote.apply_txn(&txn).expect("remote commit");
    assert_eq!(receipt.ops_applied, 2);
    assert!(!receipt.deduped);
    assert_eq!(
        served.edge_weight(VertexId(800), VertexId(900), ET),
        Some(1.5)
    );

    // The wire carries the full violation list, not a flattened error.
    let bad = GraphTxn::new(43).delete_edge(VertexId(7777), VertexId(8888), ET);
    let err = remote.apply_txn(&bad).expect_err("remote reject");
    let violations = err.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, ViolationKind::DanglingDelete);
    assert_eq!(served.edge_weight(VertexId(7777), VertexId(8888), ET), None);

    // Simulated retry: same txn id resent (e.g. after a timeout whose
    // first attempt actually landed) — the server's ledger absorbs it.
    let replay = remote.apply_txn(&txn).expect("deduped");
    assert!(replay.deduped);
    assert_eq!(replay.ops_applied, 2);

    server.shutdown();
}

/// The admin plane exposes the txn ledger at `/debug/txns` and a distinct
/// storage axis in `/healthz` that degrades on an abort streak without
/// ever flipping the shard-liveness probe to 503.
#[test]
fn admin_plane_reports_txn_activity_and_storage_health() {
    let c = cluster(2);
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&c)).expect("bind admin");

    c.apply_txn(&GraphTxn::new(1).insert_edge(edge(600, 700, 1.0)))
        .expect("commit");
    for id in 2..=4 {
        let bad = GraphTxn::new(id).delete_edge(VertexId(9990), VertexId(9991), ET);
        assert!(c.apply_txn(&bad).is_err());
    }

    let (status, body) = http_get(admin.local_addr(), "/debug/txns");
    assert_eq!(status, 200);
    assert!(body.contains("\"committed\":1"), "{body}");
    assert!(body.contains("\"aborted\":3"), "{body}");
    assert!(body.contains("\"abort_streak\":3"), "{body}");
    assert!(body.contains("\"outcome\":\"rejected\""), "{body}");

    // Three aborts in a row degrade the storage axis; the probe itself
    // stays 200 because every shard is alive.
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "storage sickness never 503s the probe");
    assert!(
        body.contains("\"storage\":{\"status\":\"degraded\""),
        "{body}"
    );

    // A commit clears the streak and the storage axis heals.
    c.apply_txn(&GraphTxn::new(5).insert_edge(edge(601, 701, 1.0)))
        .expect("commit");
    let (_, body) = http_get(admin.local_addr(), "/healthz");
    assert!(body.contains("\"storage\":{\"status\":\"ok\""), "{body}");

    admin.shutdown();
}
