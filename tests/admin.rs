//! End-to-end admin plane: start the introspection server on an ephemeral
//! port, drive a real cluster workload (including an injected shard
//! fault), and assert each endpoint over a plain `TcpStream` — the same
//! path an operator's scraper takes, sockets and all.

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, GraphStore, SampleRequest, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn loaded_cluster() -> Arc<Cluster> {
    let config = ClusterConfig::builder()
        .num_shards(3)
        // Zero threshold: every sampled request lands in the slow-op log,
        // so the test needs no injected latency (keeps it fast and
        // timing-independent).
        .slow_op_threshold(Duration::ZERO)
        .build()
        .expect("valid config");
    let cluster = Arc::new(Cluster::new(config));
    for v in 0..120u64 {
        for k in 1..=3u64 {
            cluster.insert_edge(Edge::new(
                VertexId(v),
                VertexId((v * 11 + k * 17) % 120),
                1.0,
            ));
        }
    }
    cluster
}

#[test]
fn admin_endpoints_reflect_a_live_workload_and_fault() {
    let cluster = loaded_cluster();
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");
    let addr = admin.local_addr();

    // Workload: a traced sample request (captured, threshold is zero).
    let mut rng = StdRng::seed_from_u64(9);
    let req = SampleRequest::new(VertexId(0), EdgeType::DEFAULT, 6).with_trace_id(0xBEEF);
    let resp = cluster.sample(&req, &mut rng);
    assert_eq!(resp.neighbors.len(), 6);

    // /debug/slow carries the trace id and the full span chain of the
    // request: router -> shard -> samtree -> Fenwick draw.
    let (status, slow) = http_get(addr, "/debug/slow");
    assert_eq!(status, 200);
    assert!(slow.contains("\"trace_id\":48879"), "{slow}");
    for span in [
        "cluster.sample",
        "shard.sample",
        "samtree.sample",
        "samtree.fts_draw",
    ] {
        assert!(slow.contains(&format!("\"name\":\"{span}\"")), "{slow}");
    }

    // /metrics is Prometheus text with the memory gauges refreshed by the
    // scrape itself and the serving histogram in seconds.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("plato_graph_mem_samtree_bytes"),
        "{metrics}"
    );
    assert!(
        metrics.contains("plato_cluster_sample_latency_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# HELP plato_cluster_requests_total"),
        "{metrics}"
    );

    // /debug/memory splits the samtree bytes and sums per shard.
    let (status, memory) = http_get(addr, "/debug/memory");
    assert_eq!(status, 200);
    assert!(memory.contains("\"samtree_leaf_bytes\""), "{memory}");
    assert!(memory.contains("\"per_shard\":[{\"shard\":0"), "{memory}");

    // Injected fault: /healthz flips to 503 once a request has hit the
    // failed shard, and recovers to 200 after heal.
    let shard = cluster.route(VertexId(0));
    cluster.faults().fail_shard(shard);
    let degraded = cluster.sample(
        &SampleRequest::new(VertexId(0), EdgeType::DEFAULT, 4),
        &mut rng,
    );
    assert!(degraded.degraded);
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"health\":\"failed\""), "{body}");
    cluster.heal_shard(shard);
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // /debug/spans exposes tracer accounting; unknown paths 404.
    let (status, spans) = http_get(addr, "/debug/spans");
    assert_eq!(status, 200);
    assert!(spans.contains("\"started\":"), "{spans}");
    let (status, _) = http_get(addr, "/missing");
    assert_eq!(status, 404);

    admin.shutdown();
}
