//! Acceptance tests for the scale-out mode: a full training pipeline over
//! a 3-server partition-routed fleet must be bit-identical to the same
//! run against one remote server; a live shard migration under a running
//! epoch must lose zero batches; a dead leader must fail over to its
//! replica bit-identically; and the fleet admin plane must render the
//! routing table and distinguish degraded from unowned.

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, FleetCluster, FleetClusterConfig,
    FleetNode, GraphService, GraphServiceServer, GraphStore, GraphTxn, HashFeatures, PartitionMap,
    PipelineConfig, RemoteCluster, RemoteClusterConfig, SageNet, SageNetConfig, SampleRequest,
    ServerEntry, TrainingPipeline, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 120;
const PARTITIONS: u32 = 64;

/// The deterministic edge stream both deployments load, as service-level
/// ops so the fleet partitions it by owner exactly like production
/// ingest.
fn edge_ops() -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for v in 0..N {
        for k in 1..=5u64 {
            // Deterministically stamped: the windowed-epoch parity leg
            // needs real event times. Unwindowed sampling ignores them.
            let dst = (v + k * 7) % N;
            ops.push(UpdateOp::Insert(
                Edge::new(VertexId(v), VertexId(dst), 1.0 + (k as f64) * 0.25)
                    .at((v + dst * 13) % 90 + 1),
            ));
        }
    }
    ops
}

fn client_cfg() -> RemoteClusterConfig {
    RemoteClusterConfig::default()
        .max_retries(0)
        .request_timeout(Duration::from_millis(500))
}

fn fleet_cfg() -> FleetClusterConfig {
    FleetClusterConfig {
        client: client_cfg(),
        num_partitions: PARTITIONS,
    }
}

struct Fleet {
    nodes: Vec<Arc<FleetNode>>,
    servers: Vec<Option<GraphServiceServer>>,
    addrs: Vec<SocketAddr>,
}

/// Start `n` empty fleet members on ephemeral ports and install the
/// epoch-1 map on each.
fn start_fleet(n: usize) -> Fleet {
    let mut nodes = Vec::with_capacity(n);
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        let node = Arc::new(FleetNode::new(cluster, i as u64 + 1, client_cfg()));
        let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&node)).expect("bind");
        addrs.push(server.local_addr());
        nodes.push(node);
        servers.push(Some(server));
    }
    let roster: Vec<ServerEntry> = nodes
        .iter()
        .zip(&addrs)
        .map(|(node, addr)| ServerEntry {
            id: node.server_id(),
            addr: addr.to_string(),
        })
        .collect();
    let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
    for node in &nodes {
        node.install(map.clone());
    }
    Fleet {
        nodes,
        servers,
        addrs,
    }
}

impl Fleet {
    fn addr_strings(&self) -> Vec<String> {
        self.addrs.iter().map(|a| a.to_string()).collect()
    }

    fn shutdown(mut self) {
        for server in self.servers.iter_mut().filter_map(Option::take) {
            server.shutdown();
        }
    }
}

fn pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .etype(ET)
        .fanouts(vec![3, 3])
        .batch_size(24)
        .prefetch_depth(0)
        .workers(0)
        .seed(seed)
        .build()
        .expect("valid pipeline config")
}

fn fresh_net() -> SageNet {
    SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        seed: 17,
        ..Default::default()
    })
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The scale-out headline: a fixed-seed trainer produces bit-identical
/// losses whether its `GraphService` is one remote server holding the
/// whole graph or a 3-server fleet holding hash-routed partitions of it.
#[test]
fn fleet_training_is_bit_identical_to_single_server_remote() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let ops = edge_ops();

    // Single server, whole graph — loaded through the service interface.
    let single_cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    let single_server =
        GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&single_cluster)).expect("bind");
    let single = RemoteCluster::connect(single_server.local_addr(), client_cfg()).expect("connect");
    single.apply_updates(&ops).expect("loads");

    // 3-server fleet — the same op stream, partition-routed.
    let fleet_servers = start_fleet(3);
    let fleet = FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect");
    let report = fleet.apply_updates(&ops).expect("loads");
    assert_eq!(report.applied_ops, ops.len());

    // Every server holds a strict subset; the fleet holds the whole graph
    // exactly twice (each partition lives on its owner and one replica).
    let per_server: Vec<usize> = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .collect();
    assert_eq!(
        per_server.iter().sum::<usize>(),
        2 * single_cluster.num_edges()
    );
    assert!(
        per_server.iter().all(|&e| e < single_cluster.num_edges()),
        "data must actually be partitioned: {per_server:?}"
    );

    let single_pipe = TrainingPipeline::new(&single, pipeline_config(42));
    let fleet_pipe = TrainingPipeline::new(&fleet, pipeline_config(42));
    let mut single_net = fresh_net();
    let mut fleet_net = fresh_net();
    for epoch in 0..2 {
        let a = single_pipe.run_epoch(&mut single_net, &provider, &seeds, &labels, epoch);
        let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, epoch);
        assert_eq!(a.batches, b.batches);
        assert_eq!(b.degraded_batches, 0);
        assert_eq!(
            a.mean_loss.to_bits(),
            b.mean_loss.to_bits(),
            "epoch {epoch}: losses must be bit-identical across deployments"
        );
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }

    // The temporal leg: a windowed epoch (each seed sampling only edges no
    // newer than its event time) must be bit-identical across deployments
    // too — the time-window trailer rides partition-routed batches exactly
    // as it rides single-server ones.
    let seed_times: Vec<u64> = seeds.iter().map(|v| v.raw() * 13 % 70 + 20).collect();
    let a =
        single_pipe.run_epoch_windowed(&mut single_net, &provider, &seeds, &labels, &seed_times, 2);
    let b =
        fleet_pipe.run_epoch_windowed(&mut fleet_net, &provider, &seeds, &labels, &seed_times, 2);
    assert_eq!(a.batches, b.batches);
    assert_eq!(b.degraded_batches, 0);
    assert_eq!(
        a.mean_loss.to_bits(),
        b.mean_loss.to_bits(),
        "windowed epoch: losses must be bit-identical across deployments"
    );
    assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());

    single_server.shutdown();
    fleet_servers.shutdown();
}

/// A new server joins mid-epoch and partitions live-migrate onto it while
/// the trainer keeps running: zero degraded/failed batches, and the run's
/// losses are bit-identical to an undisturbed fleet's.
#[test]
fn live_migration_during_epoch_two_loses_zero_batches() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let ops = edge_ops();

    // Control fleet: identical data, no migration.
    let control_servers = start_fleet(3);
    let control =
        FleetCluster::connect(&control_servers.addr_strings(), fleet_cfg()).expect("connect");
    control.apply_updates(&ops).expect("loads");

    // Fleet under test, plus a fourth empty server not yet in the roster.
    let fleet_servers = start_fleet(3);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let joiner_cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    let joiner_node = Arc::new(FleetNode::new(
        Arc::clone(&joiner_cluster),
        99,
        client_cfg(),
    ));
    let joiner_server =
        GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&joiner_node)).expect("bind");
    let joiner_addr = joiner_server.local_addr().to_string();

    let control_pipe = TrainingPipeline::new(&control, pipeline_config(91));
    let fleet_pipe = TrainingPipeline::new(&*fleet, pipeline_config(91));
    let mut control_net = fresh_net();
    let mut fleet_net = fresh_net();

    // Epoch 1: identical, undisturbed.
    let a = control_pipe.run_epoch(&mut control_net, &provider, &seeds, &labels, 0);
    let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, 0);
    assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());

    // Epoch 2 with the join + live migration racing the batches.
    let epoch_before = fleet.map_epoch();
    let migrator = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            // Land inside the epoch, not before it.
            std::thread::sleep(Duration::from_millis(20));
            fleet
                .join_and_migrate(&joiner_addr, 99)
                .expect("joins live")
        })
    };
    let a = control_pipe.run_epoch(&mut control_net, &provider, &seeds, &labels, 1);
    let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, 1);
    let joined = migrator.join().expect("migration thread");

    assert_eq!(b.degraded_batches, 0, "migration must lose zero batches");
    assert_eq!(a.batches, b.batches);
    assert_eq!(
        a.mean_loss.to_bits(),
        b.mean_loss.to_bits(),
        "a live migration must not perturb training"
    );

    // The migration really happened: ownership moved, the epoch advanced
    // (join + one promote per moved partition), data landed on the joiner.
    assert!(
        !joined.moved.is_empty(),
        "the joiner must attract partitions"
    );
    assert_eq!(
        fleet.map_epoch(),
        epoch_before + 1 + joined.moved.len() as u64
    );
    assert!(joiner_cluster.num_edges() > 0);
    let map = fleet.map_snapshot();
    for report in &joined.moved {
        let owner = map.servers()[map.owner_index(report.partition) as usize].id;
        assert_eq!(owner, joined.server_id);
    }

    // A brand-new client bootstrapping from any incumbent learns the
    // post-migration roster (including the joiner's address) and samples
    // identically to the incumbent client.
    let late = FleetCluster::join(&fleet_servers.addrs[0].to_string(), fleet_cfg()).expect("join");
    assert_eq!(late.map_epoch(), fleet.map_epoch());
    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4))
        .collect();
    let mut rng_a = StdRng::seed_from_u64(1234);
    let mut rng_b = StdRng::seed_from_u64(1234);
    let via_fleet = fleet.sample_many(&reqs, &mut rng_a);
    let via_late = late.sample_many(&reqs, &mut rng_b);
    for (x, y) in via_fleet.iter().zip(&via_late) {
        assert_eq!(x.neighbors, y.neighbors);
        assert!(!x.degraded);
    }

    joiner_server.shutdown();
    fleet_servers.shutdown();
    control_servers.shutdown();
}

/// A txn shipped whole to one server first-hand (a client routing on no
/// map, or a stale one) lands every op on its owning server: the
/// receiver applies only its own subset locally and relays the foreign
/// subsets per owner, so no server accumulates a stray copy of a
/// partition it neither owns nor replicates — and a retry of the same
/// txn id dedupes on every leg instead of re-applying or bouncing.
#[test]
fn stale_routed_txn_relays_subsets_without_polluting_foreign_stores() {
    let fleet_servers = start_fleet(3);
    let map = fleet_servers.nodes[0]
        .map_snapshot()
        .expect("map installed");

    // One insert per roster member: a vertex owned by each of the three.
    let picks: Vec<VertexId> = (0..3u32)
        .map(|idx| {
            (0..N)
                .map(VertexId)
                .find(|&v| map.owner_of(v) == idx)
                .expect("every server owns vertices")
        })
        .collect();
    let mut txn = GraphTxn::new(0x4242_4242);
    for &v in &picks {
        txn = txn.insert_edge(Edge::new(v, VertexId(v.raw() + 1000), 2.0));
    }

    // Ship the whole txn to server 0 — two thirds of it are stale-routed.
    let direct = RemoteCluster::connect(fleet_servers.addrs[0], client_cfg()).expect("connect");
    let receipt = direct.apply_txn(&txn).expect("commits");
    assert_eq!(
        receipt.ops_applied, 3,
        "relay legs aggregate into the receipt"
    );
    assert!(!receipt.deduped);

    // Each op lives exactly on its partition's owner and replica; the
    // relaying server holds nothing it is not assigned.
    for (i, node) in fleet_servers.nodes.iter().enumerate() {
        for &v in &picks {
            let p = map.partition_of(v);
            let assigned = map.owner_index(p) == i as u32 || map.replica_index(p) == Some(i as u32);
            let held = node.cluster().degree(v, ET) > 0;
            assert_eq!(
                held,
                assigned,
                "server {i} vs vertex {}: a store must hold a partition iff assigned to it",
                v.raw()
            );
        }
    }
    let total: usize = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .sum();
    assert_eq!(total, 6, "one owner copy + one replica copy per edge");

    // The retry dedupes end to end: same receipt, no new copies.
    let retry = direct.apply_txn(&txn).expect("dedupes");
    assert!(retry.deduped);
    assert_eq!(retry.ops_applied, 3);
    let total_after: usize = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .sum();
    assert_eq!(total_after, total);

    fleet_servers.shutdown();
}

/// Kill a partition's leader: reads retry on the replica with the same
/// pinned seed, so the answers are bit-identical to the pre-failure ones
/// and nothing degrades.
#[test]
fn leader_failure_fails_over_to_replica_bit_identically() {
    let ops = edge_ops();
    let mut fleet_servers = start_fleet(2);
    let fleet = FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect");
    fleet.apply_updates(&ops).expect("loads");

    // With two servers every partition's replica is the other server, so
    // the write fan-out must have left each holding the full edge set.
    for node in &fleet_servers.nodes {
        assert_eq!(node.cluster().num_edges(), ops.len());
    }

    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4))
        .collect();
    let mut rng = StdRng::seed_from_u64(77);
    let before = fleet.sample_many(&reqs, &mut rng);
    assert!(before.iter().all(|r| !r.degraded));

    // Kill server 1 (roster index 0). Its partitions' leader is gone.
    fleet_servers.servers[0].take().expect("running").shutdown();

    let mut rng = StdRng::seed_from_u64(77);
    let after = fleet.sample_many(&reqs, &mut rng);
    for (x, y) in before.iter().zip(&after) {
        assert!(!y.degraded, "replica failover must not degrade");
        assert_eq!(
            x.neighbors, y.neighbors,
            "same seed + same adjacency on the replica = same draws"
        );
    }
    let replica_reads = fleet
        .registry()
        .snapshot()
        .counter("fleet.client.replica_reads")
        .unwrap_or(0);
    assert!(replica_reads > 0, "failover must be visible in metrics");

    fleet_servers.shutdown();
}

/// The distributed-tracing headline, over real sockets on a 3-server
/// fleet: a traced sample fan-out produces ONE stitched tree at
/// `/debug/trace/<id>` — client root at the top, per-owner fan-out spans
/// under it, and each server's `rpc.server.sample` span (recorded in a
/// different process, pulled back via `SpanExport`) nested under the
/// client span that caused it. After a leader kill, the replica
/// failover's server span nests under the client's `fleet.replica_retry`
/// span, so an operator can see the retry in the tree.
#[test]
fn debug_trace_stitches_one_tree_across_fleet_processes() {
    let ops = edge_ops();
    let mut fleet_servers = start_fleet(3);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let admin = AdminServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind admin");

    // A traced fan-out: the trace id rides the request into sample_many,
    // names the client root span, and crosses the wire in the v2 ctx.
    const TRACE: u64 = 0xDEC0DE;
    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4).with_trace_id(TRACE))
        .collect();
    let mut rng = StdRng::seed_from_u64(77);
    let responses = fleet.sample_many(&reqs, &mut rng);
    assert!(responses.iter().all(|r| !r.degraded));

    let (status, body) = http_get(admin.local_addr(), &format!("/debug/trace/{TRACE}"));
    assert_eq!(status, 200, "{body}");
    assert!(
        body.starts_with(&format!("{{\"trace_id\":{TRACE},")),
        "{body}"
    );
    // Spans from at least two distinct processes: the client plus a
    // server-side root per owner actually hit.
    let processes = body
        .split_once("\"processes\":[")
        .map(|(_, rest)| rest.split(']').next().unwrap_or(""))
        .unwrap_or("");
    assert!(processes.contains("\"client\""), "{body}");
    assert!(processes.contains("\"server-"), "{body}");
    assert!(
        processes.matches('"').count() >= 4,
        "spans from >= 2 processes: {processes}"
    );
    // ONE tree: a single root — the client's fleet.sample span — and no
    // orphaned server roots beside it.
    let roots = body.split_once("\"roots\":[").expect("roots").1;
    assert!(
        roots.starts_with("{\"member\":\"client\",\"name\":\"fleet.sample\""),
        "{body}"
    );
    assert_eq!(
        body.matches("\"name\":\"fleet.sample\"").count(),
        1,
        "{body}"
    );
    // Server-side spans made it into the stitched tree, each anchored to
    // the client span that caused it.
    assert!(body.contains("\"name\":\"rpc.server.sample\""), "{body}");
    let tree_roots = roots
        .matches("\"member\":\"client\",\"name\":\"fleet.sample\"")
        .count();
    assert_eq!(tree_roots, 1, "one stitched tree, not per-process forests");

    // Kill a leader and re-sample under a fresh trace: the failover leg
    // must appear as fleet.replica_retry with the replica's server span
    // nested under it.
    fleet_servers.servers[0].take().expect("running").shutdown();
    const TRACE2: u64 = 0xFA11;
    let reqs2: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4).with_trace_id(TRACE2))
        .collect();
    let mut rng = StdRng::seed_from_u64(77);
    let after = fleet.sample_many(&reqs2, &mut rng);
    assert!(after.iter().all(|r| !r.degraded), "replicas cover");

    let (status, body) = http_get(admin.local_addr(), &format!("/debug/trace/{TRACE2}"));
    assert_eq!(status, 200, "{body}");
    let retry_at = body
        .find("\"name\":\"fleet.replica_retry\"")
        .expect("retry span in the tree");
    // The retry span's children array holds the replica's server span:
    // the next rpc.server.sample after the retry span opens inside it
    // (children are inlined before the object closes).
    let after_retry = &body[retry_at..];
    let child = after_retry
        .find("\"name\":\"rpc.server.sample\"")
        .expect("replica server span nested under the retry");
    let retry_children = after_retry.find("\"children\":[").expect("children");
    assert!(child > retry_children, "{body}");

    admin.shutdown();
    fleet_servers.shutdown();
}

/// `/fleet/metrics` over real sockets: one exposition carrying every
/// member's series under `server="..."` labels plus the merged
/// `server="fleet"` aggregate, including the event-loop latency-anatomy
/// histograms scraped out of each server process.
#[test]
fn fleet_metrics_endpoint_merges_every_member() {
    let ops = edge_ops();
    let fleet_servers = start_fleet(2);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4))
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let _ = fleet.sample_many(&reqs, &mut rng);
    let admin = AdminServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind admin");

    let (status, body) = http_get(admin.local_addr(), "/fleet/metrics");
    assert_eq!(status, 200);
    // Per-member labels for both servers plus the client, and the merged
    // fleet aggregate, in one exposition.
    for label in ["{server=\"client\"}", "{server=\"fleet\"}"] {
        assert!(body.contains(label), "{label} missing:\n{body}");
    }
    for server in ["server-1", "server-2"] {
        assert!(
            body.contains(&format!(
                "plato_cluster_requests_total{{server=\"{server}\"}}"
            )),
            "{server} missing:\n{body}"
        );
    }
    // The latency-anatomy histograms cross the wire with exact buckets:
    // the fleet service-time count equals the sum of the members'.
    let count_of = |needle: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or(0)
    };
    let s1 = count_of("plato_rpc_server_service_seconds_count{server=\"server-1\"}");
    let s2 = count_of("plato_rpc_server_service_seconds_count{server=\"server-2\"}");
    let merged = count_of("plato_rpc_server_service_seconds_count{server=\"fleet\"}");
    assert!(s1 > 0 && s2 > 0, "both servers served requests:\n{body}");
    assert_eq!(merged, s1 + s2, "histogram merge is sum-preserving");

    admin.shutdown();
    fleet_servers.shutdown();
}

/// The fleet admin plane over real sockets: `/debug/partitions` renders
/// the live routing table, `/healthz` is 200-degraded with one server
/// down (replicas cover) and 503-unowned when a partition loses both
/// copies.
#[test]
fn fleet_admin_endpoints_track_partition_coverage() {
    let ops = edge_ops();
    let mut fleet_servers = start_fleet(3);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let admin = AdminServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind admin");

    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"servers_reachable\":3"), "{body}");

    let (status, body) = http_get(admin.local_addr(), "/debug/partitions");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"num_partitions\":{PARTITIONS}")),
        "{body}"
    );
    assert!(body.contains("\"owner_up\":true"), "{body}");
    // Key counts are live: the sum over partitions equals the loaded
    // (src, etype) keys — N distinct sources, one relation.
    let keys_total: u64 = body
        .split("\"keys\":")
        .skip(1)
        .filter_map(|chunk| chunk.split(['}', ',']).next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(keys_total, N);

    // One server down: everything it owned fails over to replicas —
    // degraded, still serving, still 200.
    fleet_servers.servers[2].take().expect("running").shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"unowned_partitions\":[]"), "{body}");

    // Two servers down: some partition has neither owner nor replica —
    // unowned, 503.
    fleet_servers.servers[1].take().expect("running").shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"status\":\"unowned\""), "{body}");

    admin.shutdown();
    fleet_servers.shutdown();
}
