//! Acceptance tests for the scale-out mode: a full training pipeline over
//! a 3-server partition-routed fleet must be bit-identical to the same
//! run against one remote server; a live shard migration under a running
//! epoch must lose zero batches; a dead leader must fail over to its
//! replica bit-identically; and the fleet admin plane must render the
//! routing table and distinguish degraded from unowned.

use platod2gl::{
    AdminServer, Cluster, ClusterConfig, Edge, EdgeType, FleetCluster, FleetClusterConfig,
    FleetNode, GraphService, GraphServiceServer, GraphStore, GraphTxn, HashFeatures, PartitionMap,
    PipelineConfig, RemoteCluster, RemoteClusterConfig, SageNet, SageNetConfig, SampleRequest,
    ServerEntry, TrainingPipeline, UpdateOp, VertexId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;
const N: u64 = 120;
const PARTITIONS: u32 = 64;

/// The deterministic edge stream both deployments load, as service-level
/// ops so the fleet partitions it by owner exactly like production
/// ingest.
fn edge_ops() -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for v in 0..N {
        for k in 1..=5u64 {
            ops.push(UpdateOp::Insert(Edge::new(
                VertexId(v),
                VertexId((v + k * 7) % N),
                1.0 + (k as f64) * 0.25,
            )));
        }
    }
    ops
}

fn client_cfg() -> RemoteClusterConfig {
    RemoteClusterConfig::default()
        .max_retries(0)
        .request_timeout(Duration::from_millis(500))
}

fn fleet_cfg() -> FleetClusterConfig {
    FleetClusterConfig {
        client: client_cfg(),
        num_partitions: PARTITIONS,
    }
}

struct Fleet {
    nodes: Vec<Arc<FleetNode>>,
    servers: Vec<Option<GraphServiceServer>>,
    addrs: Vec<SocketAddr>,
}

/// Start `n` empty fleet members on ephemeral ports and install the
/// epoch-1 map on each.
fn start_fleet(n: usize) -> Fleet {
    let mut nodes = Vec::with_capacity(n);
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder()
                .num_shards(2)
                .build()
                .expect("valid config"),
        ));
        let node = Arc::new(FleetNode::new(cluster, i as u64 + 1, client_cfg()));
        let server = GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&node)).expect("bind");
        addrs.push(server.local_addr());
        nodes.push(node);
        servers.push(Some(server));
    }
    let roster: Vec<ServerEntry> = nodes
        .iter()
        .zip(&addrs)
        .map(|(node, addr)| ServerEntry {
            id: node.server_id(),
            addr: addr.to_string(),
        })
        .collect();
    let map = PartitionMap::build(roster, PARTITIONS).expect("valid roster");
    for node in &nodes {
        node.install(map.clone());
    }
    Fleet {
        nodes,
        servers,
        addrs,
    }
}

impl Fleet {
    fn addr_strings(&self) -> Vec<String> {
        self.addrs.iter().map(|a| a.to_string()).collect()
    }

    fn shutdown(mut self) {
        for server in self.servers.iter_mut().filter_map(Option::take) {
            server.shutdown();
        }
    }
}

fn pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .etype(ET)
        .fanouts(vec![3, 3])
        .batch_size(24)
        .prefetch_depth(0)
        .workers(0)
        .seed(seed)
        .build()
        .expect("valid pipeline config")
}

fn fresh_net() -> SageNet {
    SageNet::new(SageNetConfig {
        fanouts: vec![3, 3],
        lr: 0.05,
        seed: 17,
        ..Default::default()
    })
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The scale-out headline: a fixed-seed trainer produces bit-identical
/// losses whether its `GraphService` is one remote server holding the
/// whole graph or a 3-server fleet holding hash-routed partitions of it.
#[test]
fn fleet_training_is_bit_identical_to_single_server_remote() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let ops = edge_ops();

    // Single server, whole graph — loaded through the service interface.
    let single_cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    let single_server =
        GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&single_cluster)).expect("bind");
    let single = RemoteCluster::connect(single_server.local_addr(), client_cfg()).expect("connect");
    single.apply_updates(&ops).expect("loads");

    // 3-server fleet — the same op stream, partition-routed.
    let fleet_servers = start_fleet(3);
    let fleet = FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect");
    let report = fleet.apply_updates(&ops).expect("loads");
    assert_eq!(report.applied_ops, ops.len());

    // Every server holds a strict subset; the fleet holds the whole graph
    // exactly twice (each partition lives on its owner and one replica).
    let per_server: Vec<usize> = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .collect();
    assert_eq!(
        per_server.iter().sum::<usize>(),
        2 * single_cluster.num_edges()
    );
    assert!(
        per_server.iter().all(|&e| e < single_cluster.num_edges()),
        "data must actually be partitioned: {per_server:?}"
    );

    let single_pipe = TrainingPipeline::new(&single, pipeline_config(42));
    let fleet_pipe = TrainingPipeline::new(&fleet, pipeline_config(42));
    let mut single_net = fresh_net();
    let mut fleet_net = fresh_net();
    for epoch in 0..2 {
        let a = single_pipe.run_epoch(&mut single_net, &provider, &seeds, &labels, epoch);
        let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, epoch);
        assert_eq!(a.batches, b.batches);
        assert_eq!(b.degraded_batches, 0);
        assert_eq!(
            a.mean_loss.to_bits(),
            b.mean_loss.to_bits(),
            "epoch {epoch}: losses must be bit-identical across deployments"
        );
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }

    single_server.shutdown();
    fleet_servers.shutdown();
}

/// A new server joins mid-epoch and partitions live-migrate onto it while
/// the trainer keeps running: zero degraded/failed batches, and the run's
/// losses are bit-identical to an undisturbed fleet's.
#[test]
fn live_migration_during_epoch_two_loses_zero_batches() {
    let provider = HashFeatures::new(16, 2, 7);
    let seeds: Vec<VertexId> = (0..N).map(VertexId).collect();
    let labels: Vec<usize> = seeds.iter().map(|&v| provider.label(v)).collect();
    let ops = edge_ops();

    // Control fleet: identical data, no migration.
    let control_servers = start_fleet(3);
    let control =
        FleetCluster::connect(&control_servers.addr_strings(), fleet_cfg()).expect("connect");
    control.apply_updates(&ops).expect("loads");

    // Fleet under test, plus a fourth empty server not yet in the roster.
    let fleet_servers = start_fleet(3);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let joiner_cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    let joiner_node = Arc::new(FleetNode::new(
        Arc::clone(&joiner_cluster),
        99,
        client_cfg(),
    ));
    let joiner_server =
        GraphServiceServer::bind("127.0.0.1:0", Arc::clone(&joiner_node)).expect("bind");
    let joiner_addr = joiner_server.local_addr().to_string();

    let control_pipe = TrainingPipeline::new(&control, pipeline_config(91));
    let fleet_pipe = TrainingPipeline::new(&*fleet, pipeline_config(91));
    let mut control_net = fresh_net();
    let mut fleet_net = fresh_net();

    // Epoch 1: identical, undisturbed.
    let a = control_pipe.run_epoch(&mut control_net, &provider, &seeds, &labels, 0);
    let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, 0);
    assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());

    // Epoch 2 with the join + live migration racing the batches.
    let epoch_before = fleet.map_epoch();
    let migrator = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            // Land inside the epoch, not before it.
            std::thread::sleep(Duration::from_millis(20));
            fleet
                .join_and_migrate(&joiner_addr, 99)
                .expect("joins live")
        })
    };
    let a = control_pipe.run_epoch(&mut control_net, &provider, &seeds, &labels, 1);
    let b = fleet_pipe.run_epoch(&mut fleet_net, &provider, &seeds, &labels, 1);
    let joined = migrator.join().expect("migration thread");

    assert_eq!(b.degraded_batches, 0, "migration must lose zero batches");
    assert_eq!(a.batches, b.batches);
    assert_eq!(
        a.mean_loss.to_bits(),
        b.mean_loss.to_bits(),
        "a live migration must not perturb training"
    );

    // The migration really happened: ownership moved, the epoch advanced
    // (join + one promote per moved partition), data landed on the joiner.
    assert!(
        !joined.moved.is_empty(),
        "the joiner must attract partitions"
    );
    assert_eq!(
        fleet.map_epoch(),
        epoch_before + 1 + joined.moved.len() as u64
    );
    assert!(joiner_cluster.num_edges() > 0);
    let map = fleet.map_snapshot();
    for report in &joined.moved {
        let owner = map.servers()[map.owner_index(report.partition) as usize].id;
        assert_eq!(owner, joined.server_id);
    }

    // A brand-new client bootstrapping from any incumbent learns the
    // post-migration roster (including the joiner's address) and samples
    // identically to the incumbent client.
    let late = FleetCluster::join(&fleet_servers.addrs[0].to_string(), fleet_cfg()).expect("join");
    assert_eq!(late.map_epoch(), fleet.map_epoch());
    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4))
        .collect();
    let mut rng_a = StdRng::seed_from_u64(1234);
    let mut rng_b = StdRng::seed_from_u64(1234);
    let via_fleet = fleet.sample_many(&reqs, &mut rng_a);
    let via_late = late.sample_many(&reqs, &mut rng_b);
    for (x, y) in via_fleet.iter().zip(&via_late) {
        assert_eq!(x.neighbors, y.neighbors);
        assert!(!x.degraded);
    }

    joiner_server.shutdown();
    fleet_servers.shutdown();
    control_servers.shutdown();
}

/// A txn shipped whole to one server first-hand (a client routing on no
/// map, or a stale one) lands every op on its owning server: the
/// receiver applies only its own subset locally and relays the foreign
/// subsets per owner, so no server accumulates a stray copy of a
/// partition it neither owns nor replicates — and a retry of the same
/// txn id dedupes on every leg instead of re-applying or bouncing.
#[test]
fn stale_routed_txn_relays_subsets_without_polluting_foreign_stores() {
    let fleet_servers = start_fleet(3);
    let map = fleet_servers.nodes[0]
        .map_snapshot()
        .expect("map installed");

    // One insert per roster member: a vertex owned by each of the three.
    let picks: Vec<VertexId> = (0..3u32)
        .map(|idx| {
            (0..N)
                .map(VertexId)
                .find(|&v| map.owner_of(v) == idx)
                .expect("every server owns vertices")
        })
        .collect();
    let mut txn = GraphTxn::new(0x4242_4242);
    for &v in &picks {
        txn = txn.insert_edge(Edge::new(v, VertexId(v.raw() + 1000), 2.0));
    }

    // Ship the whole txn to server 0 — two thirds of it are stale-routed.
    let direct = RemoteCluster::connect(fleet_servers.addrs[0], client_cfg()).expect("connect");
    let receipt = direct.apply_txn(&txn).expect("commits");
    assert_eq!(
        receipt.ops_applied, 3,
        "relay legs aggregate into the receipt"
    );
    assert!(!receipt.deduped);

    // Each op lives exactly on its partition's owner and replica; the
    // relaying server holds nothing it is not assigned.
    for (i, node) in fleet_servers.nodes.iter().enumerate() {
        for &v in &picks {
            let p = map.partition_of(v);
            let assigned = map.owner_index(p) == i as u32 || map.replica_index(p) == Some(i as u32);
            let held = node.cluster().degree(v, ET) > 0;
            assert_eq!(
                held,
                assigned,
                "server {i} vs vertex {}: a store must hold a partition iff assigned to it",
                v.raw()
            );
        }
    }
    let total: usize = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .sum();
    assert_eq!(total, 6, "one owner copy + one replica copy per edge");

    // The retry dedupes end to end: same receipt, no new copies.
    let retry = direct.apply_txn(&txn).expect("dedupes");
    assert!(retry.deduped);
    assert_eq!(retry.ops_applied, 3);
    let total_after: usize = fleet_servers
        .nodes
        .iter()
        .map(|n| n.cluster().num_edges())
        .sum();
    assert_eq!(total_after, total);

    fleet_servers.shutdown();
}

/// Kill a partition's leader: reads retry on the replica with the same
/// pinned seed, so the answers are bit-identical to the pre-failure ones
/// and nothing degrades.
#[test]
fn leader_failure_fails_over_to_replica_bit_identically() {
    let ops = edge_ops();
    let mut fleet_servers = start_fleet(2);
    let fleet = FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect");
    fleet.apply_updates(&ops).expect("loads");

    // With two servers every partition's replica is the other server, so
    // the write fan-out must have left each holding the full edge set.
    for node in &fleet_servers.nodes {
        assert_eq!(node.cluster().num_edges(), ops.len());
    }

    let reqs: Vec<SampleRequest> = (0..N)
        .map(|v| SampleRequest::new(VertexId(v), ET, 4))
        .collect();
    let mut rng = StdRng::seed_from_u64(77);
    let before = fleet.sample_many(&reqs, &mut rng);
    assert!(before.iter().all(|r| !r.degraded));

    // Kill server 1 (roster index 0). Its partitions' leader is gone.
    fleet_servers.servers[0].take().expect("running").shutdown();

    let mut rng = StdRng::seed_from_u64(77);
    let after = fleet.sample_many(&reqs, &mut rng);
    for (x, y) in before.iter().zip(&after) {
        assert!(!y.degraded, "replica failover must not degrade");
        assert_eq!(
            x.neighbors, y.neighbors,
            "same seed + same adjacency on the replica = same draws"
        );
    }
    let replica_reads = fleet
        .registry()
        .snapshot()
        .counter("fleet.client.replica_reads")
        .unwrap_or(0);
    assert!(replica_reads > 0, "failover must be visible in metrics");

    fleet_servers.shutdown();
}

/// The fleet admin plane over real sockets: `/debug/partitions` renders
/// the live routing table, `/healthz` is 200-degraded with one server
/// down (replicas cover) and 503-unowned when a partition loses both
/// copies.
#[test]
fn fleet_admin_endpoints_track_partition_coverage() {
    let ops = edge_ops();
    let mut fleet_servers = start_fleet(3);
    let fleet = Arc::new(
        FleetCluster::connect(&fleet_servers.addr_strings(), fleet_cfg()).expect("connect"),
    );
    fleet.apply_updates(&ops).expect("loads");
    let admin = AdminServer::bind_fleet("127.0.0.1:0", Arc::clone(&fleet)).expect("bind admin");

    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"servers_reachable\":3"), "{body}");

    let (status, body) = http_get(admin.local_addr(), "/debug/partitions");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"num_partitions\":{PARTITIONS}")),
        "{body}"
    );
    assert!(body.contains("\"owner_up\":true"), "{body}");
    // Key counts are live: the sum over partitions equals the loaded
    // (src, etype) keys — N distinct sources, one relation.
    let keys_total: u64 = body
        .split("\"keys\":")
        .skip(1)
        .filter_map(|chunk| chunk.split(['}', ',']).next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(keys_total, N);

    // One server down: everything it owned fails over to replicas —
    // degraded, still serving, still 200.
    fleet_servers.servers[2].take().expect("running").shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"unowned_partitions\":[]"), "{body}");

    // Two servers down: some partition has neither owner nor replica —
    // unowned, 503.
    fleet_servers.servers[1].take().expect("running").shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"status\":\"unowned\""), "{body}");

    admin.shutdown();
    fleet_servers.shutdown();
}
