//! Soak and compatibility tests for the event-loop serving core.
//!
//! The soak drives one event-loop server (dispatch workers on, so
//! completions genuinely race) from over a thousand concurrently open
//! connections, each pipelining a randomized interleaving of protocol-v1
//! and protocol-v2 frames. Every request targets a vertex whose single
//! out-edge encodes the request's identity, so each reply proves by its
//! payload which request it answers: a lost, misrouted, or (for v1)
//! reordered reply cannot go unnoticed.
//!
//! The compat test speaks pure v1 — the PR-5 wire format, no `req_id` —
//! at a default-configured new server and checks the old contract
//! verbatim: replies come back in v1 framing, strictly in request order,
//! even when the server dispatches on a worker pool that finishes them
//! out of order.

use platod2gl::{Cluster, ClusterConfig, Edge, EdgeType, GraphStore, SampleRequest, VertexId};
use platod2gl_rpc::codec::{
    decode_sample_reply, encode_frame_v1, encode_frame_v2, encode_sample_batch, read_frame_ex,
    take_timing_echo, FrameKind, SampleBatch, PROTOCOL_V1, PROTOCOL_V2,
};
use platod2gl_rpc::{GraphServiceServer, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const ET: EdgeType = EdgeType::DEFAULT;

const DRIVERS: usize = 64;
const CONNS_PER_DRIVER: usize = 16;
const REQUESTS_PER_CONN: usize = 8;

/// The vertex a given (driver, conn, seq) request asks about. Its single
/// out-edge points at `raw() + 1`, so the expected reply is fully
/// determined by — and unique to — the request.
fn request_vertex(driver: usize, conn: usize, seq: usize) -> VertexId {
    VertexId((driver as u64) << 32 | (conn as u64) << 16 | seq as u64)
}

/// A cluster holding exactly one out-edge per soak vertex.
fn soak_cluster() -> Arc<Cluster> {
    let cluster = Arc::new(Cluster::new(
        ClusterConfig::builder()
            .num_shards(2)
            .build()
            .expect("valid config"),
    ));
    for driver in 0..DRIVERS {
        for conn in 0..CONNS_PER_DRIVER {
            for seq in 0..REQUESTS_PER_CONN {
                let v = request_vertex(driver, conn, seq);
                cluster.insert_edge(Edge::new(v, VertexId(v.raw() + 1), 1.0));
            }
        }
    }
    cluster
}

/// One sample request for `v`, encoded as a single-request batch payload.
fn sample_payload(v: VertexId) -> Vec<u8> {
    let req = SampleRequest::new(v, ET, 2);
    encode_sample_batch(&SampleBatch {
        deadline_ms: 30_000,
        ctx: None,
        requests: vec![(req, 0x5EED)],
    })
}

/// Assert a sample-reply payload answers the request for `v`: two slots
/// (with-replacement fanout over the one edge), both naming `v + 1`.
fn assert_answers(payload: &[u8], v: VertexId, what: &str) {
    let responses = decode_sample_reply(payload).expect("decodable reply");
    assert_eq!(responses.len(), 1, "{what}: one response per request");
    assert!(!responses[0].degraded, "{what}: healthy server");
    assert_eq!(
        responses[0].neighbors,
        vec![VertexId(v.raw() + 1); 2],
        "{what}: reply payload must identify the request it answers"
    );
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Over a thousand concurrently open connections, mixed v1/v2 framing,
/// randomized write interleavings, dispatch workers racing completions:
/// no reply is lost, misrouted, or — within a v1 stream — reordered.
#[test]
fn soak_thousand_connections_mixed_protocols() {
    let cluster = soak_cluster();
    let server = GraphServiceServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&cluster),
        ServerConfig::builder()
            .workers(2)
            .max_connections(4096)
            .build()
            .expect("valid config"),
    )
    .expect("bind");
    let addr = server.local_addr();

    // +1 party: the main thread audits the server while everything is
    // connected, before any driver starts closing.
    let all_connected = Arc::new(Barrier::new(DRIVERS + 1));
    let may_close = Arc::new(Barrier::new(DRIVERS + 1));

    let drivers: Vec<_> = (0..DRIVERS)
        .map(|driver| {
            let all_connected = Arc::clone(&all_connected);
            let may_close = Arc::clone(&may_close);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xA5A5 + driver as u64);
                // Even conns speak v1, odd conns speak v2. Each connection
                // round-trips a health probe immediately: the reply proves
                // the server *accepted* it (a TCP handshake alone only
                // proves the kernel queued it), and the serial probes pace
                // the thousand-connection flood below the listener backlog.
                let mut conns: Vec<TcpStream> = (0..CONNS_PER_DRIVER)
                    .map(|conn| {
                        let mut stream = connect(addr);
                        let frame = if conn.is_multiple_of(2) {
                            encode_frame_v1(FrameKind::HealthProbe, &[])
                        } else {
                            encode_frame_v2(FrameKind::HealthProbe, 7, &[])
                        };
                        stream.write_all(&frame).expect("probe");
                        let (header, _) = read_frame_ex(&mut stream).expect("probe reply");
                        assert_eq!(header.kind, FrameKind::HealthReply);
                        stream
                    })
                    .collect();
                all_connected.wait();

                // Write phase: each conn has a queue of requests; send them
                // one frame at a time across conns in random order.
                let mut next_seq = [0usize; CONNS_PER_DRIVER];
                let mut live: Vec<usize> = (0..CONNS_PER_DRIVER).collect();
                while !live.is_empty() {
                    let pick = rng.random_range(0..live.len());
                    let conn = live[pick];
                    let seq = next_seq[conn];
                    let v = request_vertex(driver, conn, seq);
                    let payload = sample_payload(v);
                    let frame = if conn.is_multiple_of(2) {
                        encode_frame_v1(FrameKind::SampleBatch, &payload)
                    } else {
                        // v2 correlation ids are arbitrary; encode the
                        // request identity so the reply check is direct.
                        encode_frame_v2(FrameKind::SampleBatch, v.raw(), &payload)
                    };
                    conns[conn].write_all(&frame).expect("send");
                    next_seq[conn] += 1;
                    if next_seq[conn] == REQUESTS_PER_CONN {
                        live.swap_remove(pick);
                    }
                }

                // Read phase, conns drained in a fresh random order.
                let mut order: Vec<usize> = (0..CONNS_PER_DRIVER).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
                for conn in order {
                    if conn.is_multiple_of(2) {
                        // v1: no ids on the wire — replies must arrive in
                        // exactly the order the requests were written.
                        for seq in 0..REQUESTS_PER_CONN {
                            let (header, payload) =
                                read_frame_ex(&mut conns[conn]).expect("v1 reply");
                            assert_eq!(header.version, PROTOCOL_V1, "v1 in, v1 out");
                            assert_eq!(header.req_id, 0);
                            let v = request_vertex(driver, conn, seq);
                            assert_answers(&payload, v, "v1 in-order");
                        }
                    } else {
                        // v2: replies may arrive in any order; the ids must
                        // cover every request exactly once and each payload
                        // must match its id.
                        let mut seen = [false; REQUESTS_PER_CONN];
                        for _ in 0..REQUESTS_PER_CONN {
                            let (header, mut payload) =
                                read_frame_ex(&mut conns[conn]).expect("v2 reply");
                            assert_eq!(header.version, PROTOCOL_V2, "v2 in, v2 out");
                            // v2 replies carry the server timing echo.
                            take_timing_echo(header.version, &mut payload).expect("echo");
                            let v = VertexId(header.req_id);
                            let seq = (v.raw() & 0xFFFF) as usize;
                            assert!(seq < REQUESTS_PER_CONN, "id names a real request");
                            assert_eq!(v, request_vertex(driver, conn, seq), "id routes home");
                            assert!(!seen[seq], "no duplicated replies");
                            seen[seq] = true;
                            assert_answers(&payload, v, "v2 correlated");
                        }
                    }
                }
                may_close.wait();
            })
        })
        .collect();

    all_connected.wait();
    // Every driver connection is open right now; the event loop holds
    // them all concurrently.
    let snapshot = cluster.obs().snapshot();
    let open = snapshot
        .gauges
        .iter()
        .find(|(name, _)| name == "rpc.server.open_connections")
        .map_or(0, |(_, value)| *value);
    assert!(
        open >= (DRIVERS * CONNS_PER_DRIVER) as i64,
        "expected >= 1k concurrently open connections, gauge says {open}"
    );
    may_close.wait();

    for driver in drivers {
        driver.join().expect("driver clean");
    }
    let errors = cluster
        .obs()
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "rpc.server.errors")
        .map_or(0, |(_, value)| *value);
    assert_eq!(errors, 0, "a clean soak serves every frame");
    server.shutdown();
}

/// An old (v1, pre-req-id) client against a new default server: the full
/// exchange works, replies are v1-framed, and a pipelined burst comes
/// back strictly in request order even though the server's worker pool
/// finishes dispatches out of order.
#[test]
fn old_v1_client_interops_with_new_server() {
    let cluster = soak_cluster();
    // Worker pool on: out-of-order completion is exactly what the v1
    // hold-back must mask.
    let server = GraphServiceServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&cluster),
        ServerConfig::builder()
            .workers(2)
            .build()
            .expect("valid config"),
    )
    .expect("bind");
    let mut stream = connect(server.local_addr());

    // Pipeline a burst of v1 frames, then read: order must be preserved.
    for seq in 0..REQUESTS_PER_CONN {
        let v = request_vertex(0, 0, seq);
        let frame = encode_frame_v1(FrameKind::SampleBatch, &sample_payload(v));
        stream.write_all(&frame).expect("send");
    }
    for seq in 0..REQUESTS_PER_CONN {
        let (header, payload) = read_frame_ex(&mut stream).expect("reply");
        assert_eq!(
            header.version, PROTOCOL_V1,
            "a v1 request gets a v1 reply — old decoders keep working"
        );
        assert_eq!(header.req_id, 0, "v1 has no correlation id");
        assert_answers(&payload, request_vertex(0, 0, seq), "v1 compat");
    }

    // A v1 health probe still round-trips on the same connection.
    let frame = encode_frame_v1(FrameKind::HealthProbe, &[]);
    stream.write_all(&frame).expect("send probe");
    let (header, _) = read_frame_ex(&mut stream).expect("health reply");
    assert_eq!(header.version, PROTOCOL_V1);
    assert_eq!(header.kind, FrameKind::HealthReply);

    server.shutdown();
}
