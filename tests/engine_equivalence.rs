//! Cross-engine equivalence: PlatoD2GL, PlatoGL and AliGraph must reach the
//! same final graph state from the same operation stream — the engines
//! differ in cost, never in semantics.

use platod2gl::{
    AliGraphStore, DatasetProfile, DynamicGraphStore, EdgeType, GraphStore, LeafIndex,
    PlatoGlStore, SamTreeConfig, StoreConfig, UpdateOp, WeightedIndex,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn engines() -> Vec<Box<dyn GraphStore>> {
    vec![
        Box::new(DynamicGraphStore::new(StoreConfig {
            tree: SamTreeConfig {
                capacity: 16,
                alpha: 2,
                compression: true,
                leaf_index: LeafIndex::Fenwick,
            },
            ..StoreConfig::default()
        })),
        Box::new(PlatoGlStore::with_defaults()),
        Box::new(AliGraphStore::new()),
    ]
}

fn fingerprint(
    store: &dyn GraphStore,
    sources: &[platod2gl::VertexId],
) -> BTreeMap<u64, Vec<(u64, u64)>> {
    let mut out = BTreeMap::new();
    for &src in sources {
        for et in 0..4u16 {
            let mut n: Vec<(u64, u64)> = store
                .neighbors(src, EdgeType(et))
                .into_iter()
                .map(|(v, w)| (v.raw(), (w * 1e6).round() as u64))
                .collect();
            n.sort_unstable();
            if !n.is_empty() {
                out.insert(src.raw() ^ ((et as u64) << 56), n);
            }
        }
    }
    out
}

#[test]
fn same_stream_same_final_state() {
    let profile = DatasetProfile::wechat().scaled_to_edges(8_000);
    let ops: Vec<UpdateOp> = profile.update_stream(31).next_batch(30_000);
    let sources: Vec<platod2gl::VertexId> = profile.sample_sources(128, 17);

    let stores = engines();
    for store in &stores {
        store.apply_batch(&ops);
    }
    let reference = fingerprint(stores[0].as_ref(), &sources);
    assert!(!reference.is_empty(), "fingerprint must cover real data");
    for store in &stores[1..] {
        let got = fingerprint(store.as_ref(), &sources);
        assert_eq!(
            got,
            reference,
            "{} diverged from {}",
            store.name(),
            stores[0].name()
        );
    }
    let edges0 = stores[0].num_edges();
    for store in &stores[1..] {
        assert_eq!(store.num_edges(), edges0, "{} edge count", store.name());
    }
}

#[test]
fn all_engines_sample_the_same_distribution() {
    // Identical weighted adjacency => statistically identical sampling.
    let stores = engines();
    let src = platod2gl::VertexId(42);
    let weights = [1.0f64, 2.0, 4.0, 8.0];
    for store in &stores {
        for (i, &w) in weights.iter().enumerate() {
            store.insert_edge(platod2gl::Edge::new(
                src,
                platod2gl::VertexId(100 + i as u64),
                w,
            ));
        }
    }
    let total: f64 = weights.iter().sum();
    for store in &stores {
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 30_000;
        let sampled = store.sample_neighbors(src, EdgeType::DEFAULT, draws, &mut rng);
        let mut counts = [0usize; 4];
        for v in sampled {
            counts[(v.raw() - 100) as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / total;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.15,
                "{}: neighbor {i} got {got}, expected {expected}",
                store.name()
            );
        }
    }
}

#[test]
fn index_structures_agree_on_the_sampling_map() {
    // The three index structures (FSTable/FTS, CSTable/ITS, alias) define
    // the same residual-mass -> index mapping up to alias's slot remapping,
    // so identical masses must produce identically distributed indexes.
    use platod2gl::{AliasTable, CsTable, FsTable};
    let weights: Vec<f64> = (1..=257).map(|x| (x % 17) as f64 + 0.5).collect();
    let fs = FsTable::from_weights(&weights);
    let cs = CsTable::from_weights(&weights);
    let alias = AliasTable::from_weights(&weights);
    let total = cs.total();
    // FTS and ITS agree pointwise.
    for k in 0..2_000 {
        let r = total * (k as f64 + 0.5) / 2_000.0;
        assert_eq!(fs.sample_with(r), cs.its_search(r), "r={r}");
    }
    // Alias agrees in distribution.
    let mut rng = StdRng::seed_from_u64(1);
    let mut fs_counts = vec![0u32; weights.len()];
    let mut alias_counts = vec![0u32; weights.len()];
    for _ in 0..200_000 {
        fs_counts[fs.sample(&mut rng).expect("non-empty")] += 1;
        alias_counts[alias.sample(&mut rng).expect("non-empty")] += 1;
    }
    for i in 0..weights.len() {
        let expected = 200_000.0 * weights[i] / total;
        assert!(
            (fs_counts[i] as f64 - expected).abs() < expected * 0.3 + 20.0,
            "fs idx {i}"
        );
        assert!(
            (alias_counts[i] as f64 - expected).abs() < expected * 0.3 + 20.0,
            "alias idx {i}"
        );
    }
}
