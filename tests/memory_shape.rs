//! Memory-cost shape checks mirroring the paper's Table IV: after building
//! the same graph,
//!
//!   PlatoD2GL < PlatoD2GL w/o CP < PlatoGL,  and AliGraph is the largest
//!   per-edge payload store (alias duplication).
//!
//! Absolute bytes differ from the paper's TB-scale numbers; the *ordering*
//! and the direction of every gap is what the design guarantees.

use platod2gl::{
    AliGraphStore, DatasetProfile, DynamicGraphStore, GraphStore, LeafIndex, PlatoGlStore,
    SamTreeConfig, StoreConfig,
};

fn build(store: &dyn GraphStore, profile: &DatasetProfile) {
    for e in profile.edge_stream(1) {
        store.insert_edge(e);
    }
}

fn d2gl(compression: bool) -> DynamicGraphStore {
    DynamicGraphStore::new(StoreConfig {
        tree: SamTreeConfig {
            capacity: 256,
            alpha: 0,
            compression,
            leaf_index: LeafIndex::Fenwick,
        },
        ..StoreConfig::default()
    })
}

#[test]
fn table4_ordering_holds_on_ogbn_like_data() {
    // The scale is calibrated to the vendored StdRng stream (see
    // vendor/README.md): the w/o-CP-vs-PlatoGL gap is only a few percent at
    // test scale, so the edge count matters for the ordering assertion.
    let profile = DatasetProfile::ogbn().scaled_to_edges(200_000);
    let with_cp = d2gl(true);
    let without_cp = d2gl(false);
    let platogl = PlatoGlStore::with_defaults();
    let aligraph = AliGraphStore::new();
    for store in [
        &with_cp as &dyn GraphStore,
        &without_cp,
        &platogl,
        &aligraph,
    ] {
        build(store, &profile);
    }
    let (a, b, c, d) = (
        with_cp.topology_bytes(),
        without_cp.topology_bytes(),
        platogl.topology_bytes(),
        aligraph.topology_bytes(),
    );
    println!("PlatoD2GL {a}, w/o CP {b}, PlatoGL {c}, AliGraph {d}");
    assert!(a < b, "compression must reduce memory: {a} !< {b}");
    assert!(b < c, "samtree must beat block-KV even w/o CP: {b} !< {c}");
    assert!(
        d > b,
        "alias duplication must exceed the uncompressed samtree: {d} !> {b}"
    );
    // Paper claims up to ~79.8% reduction vs the second-best; at our scale
    // demand at least a 30% gap vs PlatoGL.
    assert!(
        (a as f64) < c as f64 * 0.7,
        "expected >=30% savings vs PlatoGL: {a} vs {c}"
    );
}

#[test]
fn compression_gap_grows_with_clustered_ids() {
    // Table IV ablation: w/o CP is 18-48.6% worse. Vertex IDs composed from
    // (type, index) share long prefixes, so CP-ID bites hard.
    let profile = DatasetProfile::wechat().scaled_to_edges(60_000);
    let with_cp = d2gl(true);
    let without_cp = d2gl(false);
    build(&with_cp, &profile);
    build(&without_cp, &profile);
    let saved = 1.0 - with_cp.topology_bytes() as f64 / without_cp.topology_bytes() as f64;
    println!("CP saves {:.1}%", saved * 100.0);
    assert!(
        saved > 0.15,
        "CP-ID should save >15% on type-clustered IDs, saved {:.1}%",
        saved * 100.0
    );
    assert_eq!(with_cp.num_edges(), without_cp.num_edges());
}

#[test]
fn per_edge_footprint_is_sane() {
    // Payload floor: 8B id + 8B weight = 16B/edge. The samtree store must
    // stay within a small constant of it (no per-edge key-value blowup).
    let profile = DatasetProfile::reddit().scaled_to_edges(100_000);
    let store = d2gl(true);
    build(&store, &profile);
    let per_edge = store.topology_bytes() as f64 / store.num_edges() as f64;
    println!("bytes/edge = {per_edge:.1}");
    assert!(per_edge < 64.0, "per-edge footprint blew up: {per_edge}");
    assert!(per_edge >= 9.0, "accounting must at least cover weights");
}
