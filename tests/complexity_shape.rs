//! Empirical complexity shape for the paper's Table II: FSTable maintenance
//! must scale like O(log n) while CSTable in-place maintenance scales like
//! O(n). Rather than fragile wall-clock assertions, the growth test
//! measures how cost *scales* with n: quadrupling n should roughly
//! quadruple CSTable update cost but barely move FSTable update cost.

use platod2gl::{CsTable, FsTable};
use std::time::Instant;

/// Time `iters` executions of `f`, in nanoseconds, best of 3 runs.
fn best_time(iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for i in 0..iters {
            f(i);
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

#[test]
fn inplace_update_scaling_fs_vs_cs() {
    let small = 1 << 10;
    let large = 1 << 16; // 64x larger
    let iters = 4_000;

    let mut fs_small = FsTable::from_weights(&vec![1.0; small]);
    let mut fs_large = FsTable::from_weights(&vec![1.0; large]);
    let mut cs_small = CsTable::from_weights(&vec![1.0; small]);
    let mut cs_large = CsTable::from_weights(&vec![1.0; large]);

    // Update near the front so the CSTable suffix rewrite is ~n long.
    let fs_s = best_time(iters, |i| fs_small.add(i % 16, 0.001));
    let fs_l = best_time(iters, |i| fs_large.add(i % 16, 0.001));
    let cs_s = best_time(iters, |i| cs_small.add(i % 16, 0.001));
    let cs_l = best_time(iters, |i| cs_large.add(i % 16, 0.001));

    let fs_growth = fs_l / fs_s;
    let cs_growth = cs_l / cs_s;
    println!(
        "in-place update ns/op: FS {fs_s:.0} -> {fs_l:.0} (x{fs_growth:.1}), \
         CS {cs_s:.0} -> {cs_l:.0} (x{cs_growth:.1})"
    );
    // O(n) must grow far faster than O(log n) over a 64x size jump.
    assert!(
        cs_growth > fs_growth * 4.0,
        "CSTable should scale much worse: cs x{cs_growth:.1} vs fs x{fs_growth:.1}"
    );
    // And at 64k elements the absolute gap must be wide.
    assert!(
        cs_l > fs_l * 8.0,
        "at n=64k CSTable update should dwarf FSTable: {cs_l:.0} vs {fs_l:.0}"
    );
}

#[test]
fn append_is_cheap_for_both() {
    // Table II: new insertion is O(1) for ITS (append) and O(log n) for
    // FTS; both must stay microseconds at 64k elements.
    let n = 1 << 16;
    let mut fs = FsTable::from_weights(&vec![1.0; n]);
    let mut cs = CsTable::from_weights(&vec![1.0; n]);
    let fs_t = best_time(10_000, |_| fs.push(1.0));
    let cs_t = best_time(10_000, |_| cs.push(1.0));
    println!("append ns/op: FS {fs_t:.0}, CS {cs_t:.0}");
    assert!(fs_t < 3_000.0, "FSTable append too slow: {fs_t}ns");
    assert!(cs_t < 3_000.0, "CSTable append too slow: {cs_t}ns");
}

#[test]
fn sampling_cost_is_logarithmic_for_both() {
    // Table II: sampling is O(log n) for both methods — growth from 1k to
    // 64k elements must be far below the 64x of a linear scan.
    let small = 1 << 10;
    let large = 1 << 16;
    let fs_small = FsTable::from_weights(&vec![1.0; small]);
    let fs_large = FsTable::from_weights(&vec![1.0; large]);
    let cs_small = CsTable::from_weights(&vec![1.0; small]);
    let cs_large = CsTable::from_weights(&vec![1.0; large]);
    let t_fs_s = best_time(20_000, |i| {
        std::hint::black_box(fs_small.sample_with((i % small) as f64 + 0.5));
    });
    let t_fs_l = best_time(20_000, |i| {
        std::hint::black_box(fs_large.sample_with((i % large) as f64 + 0.5));
    });
    let t_cs_s = best_time(20_000, |i| {
        std::hint::black_box(cs_small.its_search((i % small) as f64 + 0.5));
    });
    let t_cs_l = best_time(20_000, |i| {
        std::hint::black_box(cs_large.its_search((i % large) as f64 + 0.5));
    });
    println!("sample ns/op: FS {t_fs_s:.0} -> {t_fs_l:.0}, CS {t_cs_s:.0} -> {t_cs_l:.0}");
    assert!(t_fs_l / t_fs_s < 16.0, "FTS sampling not logarithmic");
    assert!(t_cs_l / t_cs_s < 16.0, "ITS sampling not logarithmic");
}

#[test]
fn deletion_scaling_fs_vs_cs() {
    // Table II deletion: O(log n) vs O(n). Delete from the front repeatedly.
    let n = 1 << 15;
    let mut fs = FsTable::from_weights(&vec![1.0; n]);
    let mut cs = CsTable::from_weights(&vec![1.0; n]);
    let fs_t = best_time(2_000, |_| {
        fs.swap_delete(0);
    });
    let cs_t = best_time(2_000, |_| {
        cs.remove(0);
    });
    println!("delete ns/op: FS {fs_t:.0}, CS {cs_t:.0}");
    assert!(
        cs_t > fs_t * 8.0,
        "CSTable deletion should be much slower: {cs_t:.0} vs {fs_t:.0}"
    );
}
