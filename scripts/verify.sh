#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must pass before merging.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --all-features (warnings are errors)"
# Fail on any compiler warning. The deprecation shims retired in PR 8 took
# the allow-list with them: the tree must build warning-clean.
build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
cargo build --release --all-features 2>&1 | tee "$build_log"
if grep "^warning" "$build_log" >/dev/null; then
    echo "verify: FAIL - compiler warnings:"
    grep "^warning" "$build_log"
    exit 1
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> pipeline smoke test (train_pipeline example, reduced size)"
EPOCHS=2 VERTICES=200 cargo run -p platod2gl --release --example train_pipeline

echo "==> observability smoke test (obs_snapshot example)"
obs_out=$(cargo run -p platod2gl --release --example obs_snapshot 2>/dev/null)
for needle in '"samtree.leaf_ops"' '"wal.appends"' '"cluster.requests"' \
    '"pipeline.batches"' 'plato_cluster_requests_total'; do
    if ! grep -qF "$needle" <<<"$obs_out"; then
        echo "verify: FAIL — obs snapshot missing $needle"
        exit 1
    fi
done

echo "==> admin plane smoke test (admin_serve example, std TcpStream probes)"
admin_out=$(cargo run -p platod2gl --release --example admin_serve 2>/dev/null)
for needle in 'slow-op log captured a traced sample request' \
    'GET /healthz -> 503' 'GET /healthz -> 200 (healed)' \
    'GET /metrics -> 200' 'GET /debug/memory -> 200' \
    'all endpoints probed, server shut down'; do
    if ! grep -qF "$needle" <<<"$admin_out"; then
        echo "verify: FAIL — admin smoke missing: $needle"
        exit 1
    fi
done

echo "==> distributed smoke test (remote_train example: TCP graph server + remote trainer)"
rpc_out=$(cargo run -p platod2gl --release --example remote_train 2>/dev/null)
for needle in 'graph server listening on' \
    'remote sampling bit-identical to local' \
    'remote update batch applied' \
    'trainer survived' \
    'remote heal drained' \
    'server shut down cleanly'; do
    if ! grep -qF "$needle" <<<"$rpc_out"; then
        echo "verify: FAIL — distributed smoke missing: $needle"
        exit 1
    fi
done

echo "==> txn crash-matrix smoke (txn_crash_sweep example: every crash point, fixed workload)"
txn_out=$(cargo run -p platod2gl --release --example txn_crash_sweep 2>/dev/null)
for needle in 'crash at txn-after-ops: recovered pre-txn graph' \
    'crash at txn-after-commit: recovered post-txn graph' \
    'crash matrix: 10/10 crash points verified' \
    'marker-less v5 WAL replayed cleanly'; do
    if ! grep -qF "$needle" <<<"$txn_out"; then
        echo "verify: FAIL — txn crash-matrix smoke missing: $needle"
        exit 1
    fi
done

echo "==> txn throughput trail (report_txn -> BENCH_6.json)"
cargo run -p platod2gl-bench --release --bin report_txn
if ! grep -qF '"bench":"txn_apply_vs_raw"' BENCH_6.json; then
    echo "verify: FAIL — BENCH_6.json missing or malformed"
    exit 1
fi

echo "==> fleet smoke test (fleet_train example: 3-server fleet + live join/migration)"
fleet_out=$(cargo run -p platod2gl --release --example fleet_train 2>/dev/null)
for needle in 'fleet client connected: 3 servers' \
    'partition-routed ingest' \
    'epoch 2 trained through a live migration' \
    '0 degraded' \
    'joiner owns its migrated partitions and serves their data' \
    'fleet admin /debug/trace: one stitched tree spanning' \
    'fleet admin /fleet/metrics: merged exposition' \
    'fleet shut down cleanly'; do
    if ! grep -qF "$needle" <<<"$fleet_out"; then
        echo "verify: FAIL — fleet smoke missing: $needle"
        exit 1
    fi
done

echo "==> fleet scale-out trail (report_fleet -> BENCH_7.json, speedup_3v1 >= 1.5)"
cargo run -p platod2gl-bench --release --bin report_fleet
if ! grep -qF '"bench":"fleet_scaleout"' BENCH_7.json; then
    echo "verify: FAIL — BENCH_7.json missing or malformed"
    exit 1
fi
speedup=$(sed -n 's/.*"speedup_3v1":\([0-9.]*\).*/\1/p' BENCH_7.json)
if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "verify: FAIL — fleet speedup_3v1 = $speedup < 1.5"
    exit 1
fi

echo "==> serving-core trail (report_rpc -> BENCH_8.json, event loop >= 2x threaded @512 conns)"
cargo run -p platod2gl-bench --release --bin report_rpc
if ! grep -qF '"bench":"rpc_serving"' BENCH_8.json; then
    echo "verify: FAIL — BENCH_8.json missing or malformed"
    exit 1
fi
speedup512=$(sed -n 's/.*"speedup_512":\([0-9.]*\).*/\1/p' BENCH_8.json)
if ! awk -v s="$speedup512" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "verify: FAIL — event loop speedup_512 = $speedup512 < 2.0 over threaded"
    exit 1
fi
accept_errors=$(sed -n 's/.*"accept_errors":\([0-9]*\).*/\1/p' BENCH_8.json)
if [ "$accept_errors" != "0" ]; then
    echo "verify: FAIL — $accept_errors errors across 10k accepts"
    exit 1
fi

echo "==> tracing-overhead trail (report_obs_overhead -> BENCH_9.json, overhead_ratio >= 0.9)"
cargo run -p platod2gl-bench --release --bin report_obs_overhead
if ! grep -qF '"bench":"obs_overhead"' BENCH_9.json; then
    echo "verify: FAIL — BENCH_9.json missing or malformed"
    exit 1
fi
obs_ratio=$(sed -n 's/.*"overhead_ratio":\([0-9.]*\).*/\1/p' BENCH_9.json)
if ! awk -v r="$obs_ratio" 'BEGIN { exit !(r >= 0.9) }'; then
    echo "verify: FAIL — tracing overhead_ratio = $obs_ratio < 0.9 (tracing costs > 10%)"
    exit 1
fi

echo "==> temporal smoke test (temporal_link_prediction example: windowed training + fleet parity)"
temporal_out=$(cargo run -p platod2gl --release --example temporal_link_prediction 2>/dev/null)
for needle in 'time-ordered negative redraws' \
    'time-respecting k-hop: 0 future-edge leaks' \
    'temporal training beats shuffled-time ablation' \
    'fleet windowed epochs bit-identical to local' \
    'recency decay:' \
    'temporal link prediction complete'; do
    if ! grep -qF "$needle" <<<"$temporal_out"; then
        echo "verify: FAIL — temporal smoke missing: $needle"
        exit 1
    fi
done

echo "==> temporal sampling trail (report_temporal -> BENCH_10.json, windowed within 2x of unwindowed)"
cargo run -p platod2gl-bench --release --bin report_temporal
if ! grep -qF '"bench":"temporal_sampling"' BENCH_10.json; then
    echo "verify: FAIL — BENCH_10.json missing or malformed"
    exit 1
fi
slowdown=$(sed -n 's/.*"worst_slowdown":\([0-9.]*\).*/\1/p' BENCH_10.json)
if ! awk -v s="$slowdown" 'BEGIN { exit !(s <= 2.0) }'; then
    echo "verify: FAIL — windowed sampling worst_slowdown = $slowdown > 2.0x unwindowed"
    exit 1
fi

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
