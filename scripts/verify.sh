#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must pass before merging.
# Run from the repository root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> pipeline smoke test (train_pipeline example, reduced size)"
EPOCHS=2 VERTICES=200 cargo run -p platod2gl --release --example train_pipeline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
